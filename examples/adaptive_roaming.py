#!/usr/bin/env python3
"""Adaptive roaming: the Section 6 future work, running.

The paper's closing agenda: (1) "techniques for determining when to switch
between networks" and (2) an API to "inform upper-layer network protocols
and some applications" of quality-of-service changes "so they can adjust
their behaviors accordingly".  This demo runs both extensions together:

* a **ConnectivityManager** probes the Ethernet and the radio, prefers the
  faster network, and hot-switches automatically with hysteresis;
* an **adaptive application** (a telemetry uploader) subscribes to the
  notification API with a bandwidth-change threshold and halves or
  restores its send rate when the attachment's bandwidth shifts;
* we then pull the Ethernet cable and, later, plug it back in.

Run:  python examples/adaptive_roaming.py
"""

from repro.core.autoswitch import AttachmentOption, ConnectivityManager
from repro.core.notify import EventKind
from repro.net.packet import AppData
from repro.sim import Simulator, ms, ns_to_s, s
from repro.testbed import build_testbed


class TelemetryUploader:
    """Sends readings to the correspondent, adapting rate to the link."""

    FAST_INTERVAL = ms(100)
    SLOW_INTERVAL = ms(1000)

    def __init__(self, testbed) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.interval = self.FAST_INTERVAL
        self.sent = 0
        self.rate_changes = []
        self._socket = testbed.mobile.udp.open(0)
        received = self.received = []
        testbed.correspondent.udp.open(9999).on_datagram(
            lambda data, src, sp, dst: received.append(data.content))
        # Subscribe: only bandwidth shifts of 50%+ matter to this app.
        testbed.mobile.notifier.subscribe(self._on_network_change,
                                          kinds=[EventKind.ATTACHMENT_CHANGED,
                                                 EventKind.QUALITY_CHANGED],
                                          min_bandwidth_change=0.5)

    def _on_network_change(self, event) -> None:
        if event.bandwidth_ratio < 1.0:
            self.interval = self.SLOW_INTERVAL
            verdict = "slowing down"
        else:
            self.interval = self.FAST_INTERVAL
            verdict = "speeding up"
        self.rate_changes.append((self.sim.now, verdict))
        print(f"  [app @ t={ns_to_s(self.sim.now):.1f}s] {event.kind.value}: "
              f"{event.new.describe()} -> {verdict}")

    def start(self) -> None:
        self._tick()

    def _tick(self) -> None:
        reading = AppData(("reading", self.sent), 64)
        self._socket.sendto(reading, self.testbed.addresses.ch_dept, 9999)
        self.sent += 1
        self.sim.call_later(self.interval, self._tick)


def main() -> None:
    sim = Simulator(seed=61)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses

    # Start on the department Ethernet with the radio also powered up.
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    sim.run_for(s(1))

    manager = ConnectivityManager(testbed.mobile, probe_interval=ms(300),
                                  probe_timeout=ms(600))
    manager.add_option(AttachmentOption(
        name="ethernet", interface=testbed.mh_eth,
        care_of=addresses.mh_dept_care_of, subnet=addresses.dept_net,
        gateway=addresses.router_dept))
    manager.add_option(AttachmentOption(
        name="radio", interface=testbed.mh_radio,
        care_of=addresses.mh_radio, subnet=addresses.radio_net,
        gateway=addresses.router_radio, score=1.0))
    manager.on_switch = lambda timeline: print(
        f"  [manager @ t={ns_to_s(sim.now):.1f}s] hot-switched in "
        f"{timeline.total / 1e6:.0f} ms")
    manager.start()

    app = TelemetryUploader(testbed)
    app.start()

    print("t=0s   on Ethernet, uploading at 10 readings/s")
    sim.run_for(s(4))

    print(f"\nt=5s   pulling the Ethernet cable...")
    testbed.mh_eth.detach()
    sim.run_for(s(6))
    print(f"       manager state: attached via "
          f"{manager.current_option().name}; home agent binding -> "
          f"{testbed.home_agent.current_care_of(addresses.mh_home)}")

    print(f"\nt=11s  plugging the Ethernet back in...")
    testbed.mh_eth.attach(testbed.dept_segment)
    sim.run_for(s(6))
    print(f"       manager state: attached via "
          f"{manager.current_option().name}")

    sim.run_for(s(1))
    delivery = len(app.received) / app.sent
    print(f"\nTotals: {app.sent} readings sent, {len(app.received)} "
          f"delivered ({delivery:.0%}); {manager.switches_performed} "
          f"automatic switches; {len(app.rate_changes)} rate adaptations.")
    print("The application never named an interface or an address — it "
          "only declared its interests.")


if __name__ == "__main__":
    main()
