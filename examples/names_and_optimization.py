#!/usr/bin/env python3
"""Names, dynamic DNS, and the smart-correspondent optimization together.

Two pieces the paper names but ships separately come together here:

* the **extended DNS** of Section 8: applications connect to
  ``mh.mosquitonet.stanford.edu``; the name resolves to the mobile host's
  *home address*, which never changes — mobility is invisible above IP
  *and* above naming;
* the **smart correspondent** of Sections 3.2/5.1: once the correspondent
  opts into mobility awareness, it receives binding updates and tunnels
  straight to the care-of address, cutting the home agent out of the
  data path entirely.

The home agent also keeps the DNS zone current via authenticated dynamic
updates (a "where is the mobile host *right now*" record for debugging —
applications never need it, which is the point).

Run:  python examples/names_and_optimization.py
"""

from repro.core.smart_correspondent import SmartCorrespondent
from repro.net.dns import DNSResolver, DNSServer, send_dynamic_update
from repro.sim import Simulator, ms, ns_to_ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


def measure(testbed, target, label):
    stream = UdpEchoStream(testbed.correspondent, target, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    rtts = stream.rtts()
    mean = sum(rtts) / len(rtts) if rtts else 0
    print(f"  {label}: {stream.received}/{stream.sent} echoes, "
          f"mean RTT {ns_to_ms(int(mean)):.2f} ms")
    stream.close()


def main() -> None:
    sim = Simulator(seed=17)
    # Separate home agent: the HA detour is a real path worth optimizing.
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False, separate_home_agent=True)
    addresses = testbed.addresses

    print("1. The zone: mh.mosquitonet.stanford.edu -> the home address")
    dns_server = DNSServer(testbed.home_agent_host,
                           "mosquitonet.stanford.edu")
    dns_server.add_record("mh.mosquitonet.stanford.edu", addresses.mh_home)
    dns_server.allow_updates_from(testbed.home_agent.address)
    resolver = DNSResolver(testbed.correspondent, addresses.home_agent_host)

    testbed.visit_dept()
    sim.run_for(s(1))

    resolved = []
    resolver.resolve("mh.mosquitonet.stanford.edu", resolved.append)
    sim.run_for(s(1))
    print(f"  the correspondent resolved the name to {resolved[0]} — the "
          f"home address, wherever the laptop is")

    UdpEchoResponder(testbed.mobile)
    print("\n2. Plain correspondent: traffic detours via the home agent")
    measure(testbed, resolved[0], "via the home agent")
    ha_before = testbed.home_agent.vif.packets_encapsulated

    print("\n3. The correspondent becomes mobility-aware")
    smart = SmartCorrespondent(testbed.correspondent)
    testbed.mobile.add_smart_correspondent(addresses.ch_dept)
    testbed.mobile.register_current()  # pushes a binding update to the CH
    sim.run_for(s(1))
    print(f"  cached binding at the correspondent: "
          f"{smart.cached_care_of(addresses.mh_home)}")
    measure(testbed, resolved[0], "tunneled directly to the care-of")
    print(f"  packets the home agent carried in phase 3: "
          f"{testbed.home_agent.vif.packets_encapsulated - ha_before}")

    print("\n4. The home agent records the location in DNS (authenticated "
          "dynamic update)")
    acks = []
    send_dynamic_update(testbed.home_agent_host, addresses.home_agent_host,
                        "mh-care-of.mosquitonet.stanford.edu",
                        testbed.mobile.care_of, on_ack=acks.append)
    sim.run_for(s(1))
    record = dns_server.lookup("mh-care-of.mosquitonet.stanford.edu")
    print(f"  update accepted: {acks[0]}; debugging record now says "
          f"{record.address}")

    print("\nApplications used only the name; the name only ever meant the "
          "home address; the fast path was negotiated underneath.")


if __name__ == "__main__":
    main()
