#!/usr/bin/env python3
"""Quickstart: the MosquitoNet basic protocol in one sitting.

Builds the paper's Figure 5 test-bed, then walks the canonical scenario of
Figure 1: a correspondent host talks to the mobile host's *home address*
the whole time, while the mobile host

1. starts at home (packets delivered directly),
2. moves to the department network with a collocated care-of address
   (packets intercepted by the home agent via proxy ARP and tunneled), and
3. returns home (deregistration, gratuitous ARP, direct delivery again).

Run:  python examples/quickstart.py
"""

from repro.sim import Simulator, ms, ns_to_ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def main() -> None:
    sim = Simulator(seed=2026)
    testbed = build_testbed(sim)
    addresses = testbed.addresses
    mobile = testbed.mobile
    correspondent = testbed.correspondent

    print("Test-bed built (Figure 5):")
    print(f"  home network   {addresses.home_net}   (mobile host home "
          f"address {addresses.mh_home})")
    print(f"  department net {addresses.dept_net}   (correspondent at "
          f"{addresses.ch_dept})")
    print(f"  wireless net   {addresses.radio_net} (Metricom radios)")
    print(f"  home agent at  {testbed.home_agent.address} "
          f"(collocated with the router)")

    # The correspondent only ever knows the home address.
    UdpEchoResponder(mobile)
    stream = UdpEchoStream(correspondent, addresses.mh_home, interval=ms(100))

    banner("Phase 1: mobile host at home")
    print(mobile.describe_attachment())
    stream.start()
    sim.run_for(s(2))
    at_home_rtts = stream.rtts()
    print(f"  {stream.received}/{stream.sent} echoes, RTT "
          f"{ns_to_ms(at_home_rtts[-1]):.2f} ms (direct LAN path)")

    banner("Phase 2: mobile host visits the department network")
    registrations = []
    testbed.visit_dept(on_registered=lambda outcome: registrations.append(outcome))
    sim.run_for(s(2))
    outcome = registrations[0]
    print(mobile.describe_attachment())
    print(f"  registration accepted in {ns_to_ms(outcome.round_trip):.2f} ms; "
          f"home agent binding -> "
          f"{testbed.home_agent.current_care_of(addresses.mh_home)}")
    print(f"  home agent is proxy-ARPing for {addresses.mh_home}: "
          f"{addresses.mh_home in testbed.home_agent.home_interface.arp.proxy_entries()}")
    away_rtt = stream.rtts()[-1]
    print(f"  {stream.received}/{stream.sent} echoes so far, RTT now "
          f"{ns_to_ms(away_rtt):.2f} ms (tunneled via the home agent)")
    print(f"  packets encapsulated by the home agent so far: "
          f"{testbed.home_agent.vif.packets_encapsulated}")

    banner("Phase 3: mobile host returns home")
    testbed.move_mh_cable(testbed.home_segment)
    mobile.stop_visiting(testbed.mh_eth)
    mobile.come_home(testbed.mh_eth, gateway=addresses.router_home)
    sim.run_for(s(2))
    print(mobile.describe_attachment())
    print(f"  binding removed: "
          f"{testbed.home_agent.current_care_of(addresses.mh_home) is None}; "
          f"proxy ARP withdrawn: "
          f"{addresses.mh_home not in testbed.home_agent.home_interface.arp.proxy_entries()}")
    stream.stop()
    sim.run_for(s(1))
    print(f"  final score: {stream.received}/{stream.sent} echoes, "
          f"{stream.lost_count()} lost across both moves")
    print("\nThe correspondent never saw anything but "
          f"{addresses.mh_home}: no application changes, no foreign agent.")


if __name__ == "__main__":
    main()
