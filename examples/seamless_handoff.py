#!/usr/bin/env python3
"""Seamless device switching: a TCP session survives wired->wireless moves.

The paper's motivating scenario: "applications that run for extended
periods of time and build up nontrivial state, such as remote logins with
active processes" must not be restarted when the network changes.  Here a
correspondent streams a long-running TCP session to the mobile host's home
address while the mobile host:

1. cold-switches from Ethernet (net 36.8) to the Metricom radio
   (net 36.134) — the Ethernet goes away before the radio is up, so
   segments are lost and TCP retransmits them;
2. hot-switches back to Ethernet — both interfaces are up, so the switch
   is invisible.

The connection never breaks and every chunk arrives exactly once, in
order.  Run:  python examples/seamless_handoff.py
"""

from repro.core.handoff import DeviceSwitcher
from repro.sim import Simulator, ms, ns_to_ms, s
from repro.testbed import build_testbed
from repro.workloads import TcpBulkReceiver, TcpBulkSender


def main() -> None:
    sim = Simulator(seed=99)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    addresses = testbed.addresses

    # Start away from home on the department Ethernet; the radio exists
    # but is powered down (its static address is pre-configured).
    testbed.visit_dept()
    testbed.mh_radio.subnet = addresses.radio_net
    testbed.mh_radio.add_address(addresses.mh_radio, make_primary=True)
    sim.run_for(s(1))

    # A long-lived TCP session to the home address — think remote login.
    receiver = TcpBulkReceiver(testbed.mobile)
    sender = TcpBulkSender(testbed.correspondent, addresses.mh_home,
                           interval=ms(200))
    sender.start()
    sim.run_for(s(3))
    print(f"session established: {sender.established}; "
          f"{len(receiver.received_chunks)} chunks delivered so far")

    # --- Cold switch: Ethernet dies, radio comes up -----------------------
    switcher = DeviceSwitcher(testbed.mobile)
    timelines = []
    switcher.cold_switch(testbed.mh_eth, testbed.mh_radio,
                         addresses.mh_radio, addresses.radio_net,
                         addresses.router_radio, on_done=timelines.append)
    sim.run_for(s(8))
    cold = timelines[0]
    conn = receiver.connection
    print(f"\ncold switch ethernet->radio took {ns_to_ms(cold.total):.0f} ms "
          f"(interface up alone: "
          f"{ns_to_ms(cold.duration_of('interface_up')):.0f} ms)")
    print(f"  TCP retransmitted {sender.connection.segments_retransmitted} "
          f"segments to cover the outage; connection state: "
          f"{sender.connection.state.value}")
    print(f"  {len(receiver.received_chunks)} chunks delivered, "
          f"in order: {receiver.in_order}")

    # --- Hot switch back: both interfaces up ------------------------------
    retrans_before = sender.connection.segments_retransmitted
    testbed.mh_eth.bring_up()
    sim.run_for(s(1))
    timelines.clear()
    switcher.hot_switch(testbed.mh_eth, addresses.mh_dept_care_of,
                        addresses.dept_net, addresses.router_dept,
                        on_done=timelines.append)
    sim.run_for(s(5))
    hot = timelines[0]
    print(f"\nhot switch radio->ethernet took {ns_to_ms(hot.total):.0f} ms")
    print(f"  extra retransmissions caused: "
          f"{sender.connection.segments_retransmitted - retrans_before}")

    sender.finish()
    sim.run_for(s(5))
    expected = list(range(sender.sent_chunks))
    print(f"\nfinal: {len(receiver.received_chunks)}/{sender.sent_chunks} "
          f"chunks, exactly once and in order: "
          f"{receiver.received_chunks == expected}")
    print(f"connection closed cleanly: {receiver.closed}; "
          f"never reset: {not sender.reset}")
    print("\nThe application never reconnected — mobility stayed below TCP, "
          "exactly as the paper promises.")


if __name__ == "__main__":
    main()
