#!/usr/bin/env python3
"""The triangle route and the Mobile Policy Table (Sections 3.2-3.3).

The mobile host visits a network in a *different administrative domain*
(net 36.40, behind a backbone hop) and talks to a correspondent back in
the department.  The demo walks the three decisions the paper's policy
machinery makes:

1. Under the basic protocol everything is reverse-tunneled through the
   home agent — correct but longer.
2. The triangle route sends outgoing packets directly (home address as
   source); the reply path still goes through the home agent.
3. The visited network turns on transit-traffic filtering, the kind of
   "security-conscious router" the paper warns about.  The triangle
   route silently dies; the mobile host probes the correspondent with
   ping, caches the failure in its Mobile Policy Table, and falls back to
   the tunnel — connectivity restored without application involvement.

Run:  python examples/triangle_route.py
"""

from repro.core.policy import RoutingMode
from repro.sim import Simulator, ms, ns_to_ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


def measure_rtt(testbed, target, label: str) -> None:
    stream = UdpEchoStream(testbed.mobile, target, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    rtts = stream.rtts()
    if rtts:
        mean = sum(rtts) / len(rtts)
        print(f"  {label}: {stream.received}/{stream.sent} echoes, "
              f"mean RTT {ns_to_ms(int(mean)):.2f} ms")
    else:
        print(f"  {label}: {stream.received}/{stream.sent} echoes "
              f"(destination unreachable under this policy)")
    stream.close()


def main() -> None:
    sim = Simulator(seed=7)
    testbed = build_testbed(sim, with_dhcp=False)
    addresses = testbed.addresses
    mobile = testbed.mobile
    target = addresses.ch_dept

    testbed.visit_remote()
    UdpEchoResponder(testbed.correspondent)
    sim.run_for(s(1))
    print(mobile.describe_attachment())

    print("\n1. Basic protocol: reverse tunnel through the home agent")
    mobile.policy.default_mode = RoutingMode.TUNNEL
    measure_rtt(testbed, target, "tunneled")

    print("\n2. Triangle route optimization (outgoing packets go direct)")
    mobile.policy.default_mode = RoutingMode.TRIANGLE
    measure_rtt(testbed, target, "triangle")

    print("\n3. The visited network forbids transit traffic")
    assert testbed.remote_router is not None
    testbed.remote_router.enable_transit_filter()
    measure_rtt(testbed, target, "triangle behind the filter")
    print(f"  router dropped {testbed.remote_router.transit_drops} "
          f"transit packets (source {addresses.mh_home} is not local "
          f"to {addresses.remote_net})")

    print("\n4. Probe and fall back (the Mobile Policy Table at work)")
    results = []
    mobile.probe_correspondent(target, on_result=lambda d, ok: results.append(ok))
    sim.run_for(s(4))
    print(f"  ping probe of {target} succeeded: {results[0]}")
    print("  policy table now:")
    for line in mobile.policy.describe().splitlines():
        print(f"    {line}")
    measure_rtt(testbed, target, "after fallback (tunneled per policy)")

    print("\nThe application never noticed: the policy table handled the "
          "hostile network below the socket layer.")


if __name__ == "__main__":
    main()
