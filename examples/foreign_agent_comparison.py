#!/usr/bin/env python3
"""MosquitoNet vs. the IETF foreign-agent baseline (Sections 2 and 5.1).

The paper's central design decision is to leave the foreign agent out.
This demo runs both architectures on the same radio network and surfaces
the trade the paper describes:

* **Without an FA** the mobile host needs its own temporary address, but
  depends on nothing in the visited network: the packet path is
  home agent -> care-of address, one radio hop.
* **With an FA** the mobile host needs no address at all — but every
  inbound packet crosses the air twice (router -> FA -> mobile host), the
  FA is a single point of failure, and the visited network has to run it.

The single-point-of-failure claim is demonstrated literally: the FA host
is crashed mid-session and the visitor goes dark, while the collocated
configuration keeps working because there is nothing in the visited
network left to fail.

Run:  python examples/foreign_agent_comparison.py
"""

from repro.sim import Simulator, ms, ns_to_ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


def echo_trial(testbed, label: str, duration=s(4)) -> "UdpEchoStream":
    stream = UdpEchoStream(testbed.correspondent,
                           testbed.addresses.mh_home, interval=ms(250))
    stream.start()
    testbed.sim.run_for(duration)
    stream.stop()
    testbed.sim.run_for(s(3))
    rtts = stream.rtts()
    mean = sum(rtts) / len(rtts) if rtts else 0
    print(f"  {label}: {stream.received}/{stream.sent} echoes, "
          f"mean RTT {ns_to_ms(int(mean)):.0f} ms")
    stream.close()
    return stream


def main() -> None:
    print("A. MosquitoNet: collocated care-of address on the radio")
    sim = Simulator(seed=3)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    testbed.unplug_ethernet()  # leave the office: radio only
    testbed.connect_radio(register=True)
    sim.run_for(s(2))
    UdpEchoResponder(testbed.mobile)
    echo_trial(testbed, "one radio hop per inbound packet")

    print("\nB. IETF baseline: foreign agent on the radio network")
    sim2 = Simulator(seed=4)
    testbed2 = build_testbed(sim2, with_remote_correspondent=False,
                             with_dhcp=False, with_radio_foreign_agent=True)
    fa = testbed2.radio_foreign_agent
    assert fa is not None
    testbed2.unplug_ethernet()
    testbed2.connect_radio(register=False)
    registrations = []
    testbed2.mobile.attach_via_foreign_agent(
        testbed2.mh_radio, fa.care_of_address, testbed2.addresses.radio_net,
        on_registered=lambda o: registrations.append(o))
    sim2.run_for(s(3))
    print(f"  registration relayed through the FA in "
          f"{ns_to_ms(registrations[0].round_trip):.0f} ms "
          f"(vs a direct registration: one less radio round trip)")
    print(f"  the mobile host owns no local address; care-of is the FA's "
          f"{fa.care_of_address}")
    UdpEchoResponder(testbed2.mobile)
    echo_trial(testbed2, "two radio hops per inbound packet")

    print("\nC. The foreign agent is a single point of failure")
    # Crash the FA host: its interface goes down, visitors go dark.
    fa_iface = fa.interface
    fa_iface.state = fa_iface.state.__class__.DOWN
    dark = echo_trial(testbed2, "after the FA crashes")
    print(f"  ({dark.lost_count()} probes lost; the visitor cannot even "
          f"re-register through the dead FA)")
    print("\n  The MosquitoNet mobile host has no such dependency: "
          "\"the foreign agent is no longer a single point of failure for "
          "our mobile hosts' ability to continue communicating\".")


if __name__ == "__main__":
    main()
