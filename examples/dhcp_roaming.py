#!/usr/bin/env python3
"""DHCP-based roaming and the mobile host's two roles (Sections 2, 5.1-5.2).

MosquitoNet's key bet: a visited network owes the mobile host nothing but
"a dynamically-assigned temporary IP care-of address", most easily via
DHCP.  This demo shows the full life of that bet:

* the mobile host arrives on net 36.8 with no address, runs the DHCP
  handshake, and registers the leased address as its care-of address;
* the **local role**: the DHCP lease renewal and answers to a foreign
  network's ping probes use the care-of address directly, outside mobile
  IP, while ordinary application traffic (the **home role**) keeps the
  home address and rides the tunnel;
* on departure the address is released, and the server's reuse-avoidance
  (Section 5.1's accidental-eavesdropping note) hands the next visitor a
  *different* address for as long as the pool allows.

Run:  python examples/dhcp_roaming.py
"""

from repro.net.dhcp import DHCPClient
from repro.sim import Simulator, ms, ns_to_ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


def main() -> None:
    sim = Simulator(seed=5)
    testbed = build_testbed(sim)  # includes the DHCP server on net 36.8
    addresses = testbed.addresses
    mobile = testbed.mobile
    assert testbed.mh_dhcp is not None and testbed.dhcp_server is not None

    # Arrive on the department network with no address at all.
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mh_eth.remove_address(addresses.mh_home)
    mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    testbed.mh_eth.subnet = addresses.dept_net

    print("1. Acquire a care-of address via DHCP")
    leases = []
    testbed.mh_dhcp.acquire(on_bound=leases.append)
    sim.run_for(s(1))
    lease = leases[0]
    print(f"  leased {lease.address} (gateway {lease.gateway}, "
          f"lease {lease.lease_time / 1e9:.0f} s)")

    print("\n2. Adopt it as the care-of address and register")
    registrations = []
    mobile.start_visiting(testbed.mh_eth, lease.address, lease.subnet,
                          lease.gateway,
                          on_registered=lambda o: registrations.append(o))
    sim.run_for(s(1))
    print(f"  registered with the home agent in "
          f"{ns_to_ms(registrations[0].round_trip):.2f} ms; binding -> "
          f"{testbed.home_agent.current_care_of(addresses.mh_home)}")

    print("\n3. Home role and local role, side by side")
    UdpEchoResponder(mobile)
    stream = UdpEchoStream(testbed.correspondent, addresses.mh_home,
                           interval=ms(200))
    stream.start()
    # A foreign-network management probe pings the care-of address
    # directly — the mobile host answers from the care-of address
    # (local role), no mobile IP involved.
    probe_results = []
    testbed.correspondent.icmp.ping(
        lease.address,
        on_reply=lambda rtt: probe_results.append(ns_to_ms(rtt)),
        on_timeout=lambda: probe_results.append(None))
    sim.run_for(s(2))
    stream.stop()
    sim.run_for(s(1))
    print(f"  home-role traffic (to {addresses.mh_home}): "
          f"{stream.received}/{stream.sent} echoes via the tunnel")
    print(f"  local-role probe of the care-of address answered in "
          f"{probe_results[0]:.2f} ms")

    print("\n4. Leave politely; the server avoids re-using the address")
    released = lease.address
    testbed.mh_dhcp.release()
    sim.run_for(s(1))
    # The next visitor arrives and asks for an address.
    other = DHCPClient(testbed.correspondent,
                       testbed.correspondent.interfaces[1],
                       client_id="visitor-2")
    other_leases = []
    other.acquire(on_bound=other_leases.append)
    sim.run_for(s(1))
    print(f"  we released {released}; the next visitor got "
          f"{other_leases[0].address} (reuse avoided: "
          f"{other_leases[0].address != released})")


if __name__ == "__main__":
    main()
