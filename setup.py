"""Thin shim so editable installs work in offline environments
(no `wheel` package available for PEP 517 builds)."""
from setuptools import setup

setup()
