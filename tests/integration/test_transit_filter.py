"""Integration test for A2: triangle route vs transit filter, end to end."""

from repro.core.policy import RoutingMode
from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


def build_filtered():
    sim = Simulator(seed=404)
    testbed = build_testbed(sim, with_dhcp=False)
    assert testbed.remote_router is not None
    testbed.remote_router.enable_transit_filter()
    testbed.visit_remote()
    sim.run_for(s(1))
    return testbed


def test_triangle_route_dies_behind_filter_tunnel_does_not():
    testbed = build_filtered()
    target = testbed.addresses.ch_dept
    UdpEchoResponder(testbed.correspondent)

    testbed.mobile.policy.default_mode = RoutingMode.TRIANGLE
    blocked = UdpEchoStream(testbed.mobile, target, interval=ms(100))
    blocked.start()
    testbed.sim.run_for(s(1))
    blocked.stop()
    testbed.sim.run_for(s(1))
    assert blocked.received == 0
    assert testbed.remote_router.transit_drops >= blocked.sent

    testbed.mobile.policy.default_mode = RoutingMode.TUNNEL
    tunneled = UdpEchoStream(testbed.mobile, target, interval=ms(100))
    tunneled.start()
    testbed.sim.run_for(s(1))
    tunneled.stop()
    testbed.sim.run_for(s(1))
    assert tunneled.received == tunneled.sent


def test_probe_failure_heals_connectivity_automatically():
    """Section 3.2's full loop: triangle -> filtered -> probe fails ->
    policy caches TUNNEL for that host -> traffic flows again."""
    testbed = build_filtered()
    target = testbed.addresses.ch_dept
    testbed.mobile.policy.default_mode = RoutingMode.TRIANGLE
    UdpEchoResponder(testbed.correspondent)

    outcomes = []
    testbed.mobile.probe_correspondent(target,
                                       on_result=lambda d, ok: outcomes.append(ok))
    testbed.sim.run_for(s(4))
    assert outcomes == [False]
    assert testbed.mobile.policy.lookup(target) is RoutingMode.TUNNEL

    healed = UdpEchoStream(testbed.mobile, target, interval=ms(100))
    healed.start()
    testbed.sim.run_for(s(1))
    healed.stop()
    testbed.sim.run_for(s(1))
    assert healed.received == healed.sent

    # Other destinations still default to the triangle (per-host caching).
    assert testbed.mobile.policy.lookup(ip("36.40.0.9")) is RoutingMode.TRIANGLE


def test_probe_success_restores_triangle_when_filter_lifts():
    testbed = build_filtered()
    target = testbed.addresses.ch_dept
    testbed.mobile.policy.default_mode = RoutingMode.TRIANGLE
    UdpEchoResponder(testbed.correspondent)
    outcomes = []
    testbed.mobile.probe_correspondent(target,
                                       on_result=lambda d, ok: outcomes.append(ok))
    testbed.sim.run_for(s(4))
    assert testbed.mobile.policy.lookup(target) is RoutingMode.TUNNEL

    # The operator turns the filter off; the next probe clears the cache.
    testbed.remote_router.disable_transit_filter()
    testbed.mobile.probe_correspondent(target,
                                       on_result=lambda d, ok: outcomes.append(ok))
    testbed.sim.run_for(s(4))
    assert outcomes == [False, True]
    assert testbed.mobile.policy.lookup(target) is RoutingMode.TRIANGLE


def test_encapsulated_direct_variant_passes_the_filter():
    """The paper's workaround: encapsulate but send direct — the outer
    source is the valid local care-of address, so the filter passes it."""
    from repro.core.tunnel import IPIPModule

    testbed = build_filtered()
    target = testbed.addresses.ch_dept
    IPIPModule(testbed.correspondent)  # CH can decapsulate transparently
    testbed.mobile.policy.set_policy(target, RoutingMode.ENCAP_DIRECT)
    UdpEchoResponder(testbed.correspondent)
    stream = UdpEchoStream(testbed.mobile, target, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(1))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.received == stream.sent
