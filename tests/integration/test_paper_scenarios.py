"""Integration tests for the paper's core scenarios (Figures 1, 2, 5).

These tests exercise whole-system behaviour on the Figure 5 testbed: the
correspondent only ever addresses the mobile host's home address, and the
infrastructure (home agent, proxy ARP, tunnels) does the rest.
"""

from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


def test_figure1_home_then_away_then_home(testbed):
    """The Figure 1 narrative: direct delivery at home, tunneled away."""
    a = testbed.addresses
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(1))

    at_home_received = stream.received
    assert at_home_received > 0
    assert testbed.home_agent.vif.packets_encapsulated == 0  # no tunneling yet

    # Move to the department network.
    testbed.visit_dept()
    testbed.sim.run_for(s(2))
    away_received = stream.received
    assert away_received > at_home_received
    assert testbed.home_agent.vif.packets_encapsulated > 0
    assert testbed.mobile.ipip.packets_decapsulated > 0

    # And back home.
    testbed.move_mh_cable(testbed.home_segment)
    testbed.mobile.stop_visiting(testbed.mh_eth)
    testbed.mobile.come_home(testbed.mh_eth, gateway=a.router_home)
    tunneled_so_far = testbed.home_agent.vif.packets_encapsulated
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.received > away_received
    # Back home, nothing more is tunneled (plus at most one in-flight).
    assert testbed.home_agent.vif.packets_encapsulated <= tunneled_so_far + 1


def test_figure2_care_of_is_mobile_hosts_own_address(testbed):
    """Without an FA, the care-of address belongs to the MH itself and the
    router's ARP resolves it straight to the MH's interface."""
    care_of = testbed.visit_dept()
    testbed.sim.run_for(s(1))
    assert testbed.home_agent.current_care_of(HOME) == care_of
    assert testbed.mh_eth.owns_address(care_of)
    # Drive one packet so the router ARPs for the care-of address.
    results = []
    testbed.correspondent.icmp.ping(HOME, on_reply=results.append,
                                    on_timeout=lambda: results.append(None))
    testbed.sim.run_for(s(2))
    assert results and results[0] is not None
    router_dept_iface = testbed.router.interface("eth1.router")
    assert router_dept_iface.arp.lookup(care_of) == testbed.mh_eth.mac


def test_correspondent_never_sees_the_care_of_address(testbed):
    """Transparency: every packet the CH receives has the home source."""
    testbed.visit_dept()
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.received > 0
    care_of = str(testbed.addresses.mh_dept_care_of)
    for record in testbed.sim.trace.select("ip", "receive", host="ch"):
        packet = record["packet"]
        assert not packet.startswith(f"{care_of} ->")


def test_remote_correspondent_gets_similar_results(full_testbed):
    """'We received similar results for a correspondent host located on a
    campus network outside the department.'"""
    testbed = full_testbed
    testbed.visit_dept()
    testbed.sim.run_for(s(1))  # let the registration land first
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.remote_correspondent, HOME,
                           interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.sent > 0
    assert stream.received == stream.sent


def test_separate_home_agent_intercepts_via_proxy_arp():
    """With the HA on its own host, interception really rides proxy ARP:
    the router hands MH-bound packets to the HA's MAC."""
    sim = Simulator(seed=55)
    testbed = build_testbed(sim, separate_home_agent=True,
                            with_remote_correspondent=False, with_dhcp=False)
    testbed.visit_dept()
    sim.run_for(s(1))
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
    stream.start()
    sim.run_for(s(2))
    stream.stop()
    sim.run_for(s(1))
    assert stream.received == stream.sent
    # The router's home-side ARP entry for the MH points at the HA host.
    router_home_iface = testbed.router.interface("eth0.router")
    ha_iface = testbed.home_agent.home_interface
    assert router_home_iface.arp.lookup(HOME) == ha_iface.mac
    assert testbed.home_agent.vif.packets_encapsulated > 0


def test_two_simultaneous_visits_do_not_interfere(testbed):
    """Re-registration from a second location supersedes the first."""
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    first = testbed.home_agent.current_care_of(HOME)
    testbed.connect_radio(register=True)
    testbed.sim.run_for(s(2))
    second = testbed.home_agent.current_care_of(HOME)
    assert first != second
    assert second == testbed.addresses.mh_radio
