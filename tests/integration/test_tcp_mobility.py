"""Integration tests: TCP connections survive every kind of movement.

This is the paper's motivating requirement made executable: "it is
important to maintain all current network conversations."
"""

from repro.core.handoff import AddressSwitcher, DeviceSwitcher
from repro.net.addressing import ip
from repro.sim import ms, s
from repro.workloads import TcpBulkReceiver, TcpBulkSender

HOME = ip("36.135.0.10")


def start_session(testbed, interval=ms(200)):
    receiver = TcpBulkReceiver(testbed.mobile)
    sender = TcpBulkSender(testbed.correspondent, HOME, interval=interval)
    sender.start()
    return receiver, sender


def finish_and_check(testbed, receiver, sender, drain=s(10)):
    sender.finish()
    testbed.sim.run_for(drain)
    assert not sender.reset, "connection was reset"
    assert receiver.received_chunks == list(range(sender.sent_chunks))
    assert receiver.closed


def test_session_survives_same_subnet_address_switch(testbed):
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    receiver, sender = start_session(testbed, interval=ms(50))
    testbed.sim.run_for(s(1))
    done = []
    AddressSwitcher(testbed.mobile).switch_address(
        testbed.addresses.mh_dept_care_of_2, on_done=done.append)
    testbed.sim.run_for(s(2))
    assert done and done[0].success
    finish_and_check(testbed, receiver, sender)


def test_session_survives_cold_switch_to_radio(testbed):
    testbed.visit_dept()
    testbed.mh_radio.subnet = testbed.addresses.radio_net
    testbed.mh_radio.add_address(testbed.addresses.mh_radio,
                                 make_primary=True)
    testbed.sim.run_for(s(1))
    receiver, sender = start_session(testbed)
    testbed.sim.run_for(s(2))
    done = []
    DeviceSwitcher(testbed.mobile).cold_switch(
        testbed.mh_eth, testbed.mh_radio, testbed.addresses.mh_radio,
        testbed.addresses.radio_net, testbed.addresses.router_radio,
        on_done=done.append)
    testbed.sim.run_for(s(8))
    assert done and done[0].success
    assert sender.connection.segments_retransmitted > 0  # outage was real
    finish_and_check(testbed, receiver, sender, drain=s(30))


def test_session_survives_hot_switch_without_retransmission(testbed):
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    testbed.sim.run_for(s(1))
    receiver, sender = start_session(testbed)
    testbed.sim.run_for(s(2))
    before = sender.connection.segments_retransmitted
    done = []
    DeviceSwitcher(testbed.mobile).hot_switch(
        testbed.mh_radio, testbed.addresses.mh_radio,
        testbed.addresses.radio_net, testbed.addresses.router_radio,
        on_done=done.append)
    testbed.sim.run_for(s(4))
    assert done and done[0].success
    # Hot switching loses nothing, so at most incidental retransmissions
    # from the radio's higher RTT (RTO adaptation), not from loss.
    assert sender.connection.segments_retransmitted - before <= 1
    finish_and_check(testbed, receiver, sender, drain=s(30))


def test_session_survives_return_home(testbed):
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    receiver, sender = start_session(testbed, interval=ms(100))
    testbed.sim.run_for(s(1))
    testbed.move_mh_cable(testbed.home_segment)
    testbed.mobile.stop_visiting(testbed.mh_eth)
    testbed.mobile.come_home(testbed.mh_eth,
                             gateway=testbed.addresses.router_home)
    testbed.sim.run_for(s(3))
    finish_and_check(testbed, receiver, sender)


def test_mh_initiated_session_survives_movement(testbed):
    """The MH side opens the connection (e.g. an outgoing rlogin)."""
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    receiver = TcpBulkReceiver(testbed.correspondent)
    sender = TcpBulkSender(testbed.mobile, ip("36.8.0.20"), interval=ms(100))
    sender.start()
    testbed.sim.run_for(s(1))
    # The connection is pinned to the home address even though the MH
    # opened it while away.
    assert sender.connection.local_addr == HOME
    done = []
    AddressSwitcher(testbed.mobile).switch_address(
        testbed.addresses.mh_dept_care_of_2, on_done=done.append)
    testbed.sim.run_for(s(2))
    sender.finish()
    testbed.sim.run_for(s(10))
    assert not sender.reset
    assert receiver.received_chunks == list(range(sender.sent_chunks))
