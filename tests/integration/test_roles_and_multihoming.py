"""Section 5.2's two-roles design, exercised end to end.

"A mobile host visiting a foreign network really has two distinct roles
to play" — the home role (transparent mobility) and the local role
(participation in the visited network).  These tests run both roles
*simultaneously* and check they do not interfere, including the
multihoming case the paper cites against full transparency:
"applications would not be able to use two different network services at
once, even if they wished to take advantage of their different
characteristics for different purposes."
"""

from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.sim import ms, s
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


def test_home_and_local_roles_run_concurrently(testbed):
    care_of = testbed.visit_dept()
    testbed.sim.run_for(s(1))

    # Home role: a long-running echo stream to the home address.
    UdpEchoResponder(testbed.mobile)
    home_stream = UdpEchoStream(testbed.correspondent, HOME,
                                interval=ms(100))
    home_stream.start()

    # Local role: the visited network's management station pings the
    # care-of address; the MH answers from the care-of address.
    probes = []
    for index in range(5):
        testbed.sim.call_later(
            ms(300) * (index + 1),
            lambda: testbed.correspondent.icmp.ping(
                care_of, on_reply=probes.append,
                on_timeout=lambda: probes.append(None)))
    testbed.sim.run_for(s(3))
    home_stream.stop()
    testbed.sim.run_for(s(1))

    assert home_stream.received == home_stream.sent
    assert len(probes) == 5 and all(rtt is not None for rtt in probes)


def test_mobile_aware_app_uses_second_interface_concurrently(testbed):
    """Two services at once: ordinary traffic tunnels over Ethernet while
    a mobile-aware application explicitly uses the radio."""
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    testbed.sim.run_for(s(1))

    # The ordinary application: unbound socket, mobile IP over ethernet.
    UdpEchoResponder(testbed.mobile)
    ordinary = UdpEchoStream(testbed.correspondent, HOME, interval=ms(200))
    ordinary.start()

    # The mobile-aware application: bound to the radio address, talking
    # to the router's radio side directly.
    radio_replies = []
    router_radio_addr = testbed.addresses.router_radio
    echo_socket = testbed.router.udp.open(7777)
    echo_socket.on_datagram(
        lambda data, src, sp, dst: echo_socket.sendto(data, src, sp))
    aware = testbed.mobile.udp.open(0,
                                    bound_address=testbed.addresses.mh_radio)
    aware.on_datagram(lambda data, src, sp, dst: radio_replies.append(data.content))

    for index in range(4):
        testbed.sim.call_later(ms(100) + ms(400) * index,
                               lambda index=index: aware.sendto(
                                   AppData(("radio", index), 16),
                                   router_radio_addr, 7777))
    testbed.sim.run_for(s(4))
    ordinary.stop()
    testbed.sim.run_for(s(2))

    assert ordinary.received == ordinary.sent       # home role untouched
    assert len(radio_replies) == 4                  # local role worked
    # The radio traffic was NOT tunneled: it's outside mobile IP.
    for record in testbed.sim.trace.select("tunnel", "encapsulated",
                                           interface=testbed.mobile.vif.name):
        assert "7777" not in record["outer"]


def test_radio_traffic_really_used_the_radio(testbed):
    """The bound socket's packets leave through the radio device."""
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    testbed.sim.run_for(s(1))
    tx_before = testbed.mh_radio.tx_packets
    aware = testbed.mobile.udp.open(0,
                                    bound_address=testbed.addresses.mh_radio)
    aware.sendto(AppData("x", 8), testbed.addresses.router_radio, 9)
    testbed.sim.run_for(s(1))
    assert testbed.mh_radio.tx_packets == tx_before + 1


def test_loopback_and_broadcast_are_outside_mobile_ip(testbed):
    """Two more of Figure 4's 'outside the scope of mobile IP' cases."""
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    encaps_before = testbed.mobile.vif.packets_encapsulated

    got = []
    testbed.mobile.udp.open(1234).on_datagram(
        lambda data, src, sp, dst: got.append(data.content))
    local = testbed.mobile.udp.open(0)
    local.sendto(AppData("loop", 4), ip("127.0.0.1"), 1234)

    # A subnet broadcast on the visited network (local role by nature).
    bcast = testbed.mobile.udp.open(0)
    bcast.sendto(AppData("everyone", 8),
                 testbed.addresses.dept_net.broadcast, 4321,
                 via=testbed.mh_eth)
    testbed.sim.run_for(s(1))
    assert got == ["loop"]
    assert testbed.mobile.vif.packets_encapsulated == encaps_before
