"""Reports must be byte-identical with ``engine_pooling`` on and off.

The extension experiments (x1-x6) cover every subsystem the fast path
touches — UDP probes, registration storms, sharded fleets, fault
injection, TCP congestion control over handoffs — so running each with
the event pool enabled and disabled (at several seeds, shrunk
parameterizations) is the end-to-end form of the bench guard's snapshot
identity check.
"""

import pytest

import repro.sim.engine as engine
from repro.experiments import (
    run_autoswitch_experiment,
    run_chaos_experiment,
    run_ha_fleet_sweep,
    run_ha_scalability_experiment,
    run_smart_correspondent_experiment,
    run_tcp_cc_experiment,
)

EXPERIMENTS = [
    ("x1", lambda seed: run_smart_correspondent_experiment(
        probes=4, seed=seed)),
    ("x2", lambda seed: run_ha_scalability_experiment(
        fleet_sizes=(4, 8), seed=seed)),
    ("x3", lambda seed: run_autoswitch_experiment(
        intervals_ms=(300,), seed=seed)),
    ("x4", lambda seed: run_ha_fleet_sweep(
        fleet_sizes=(40,), seed=seed)),
    ("x5", lambda seed: run_chaos_experiment(
        loss_rates=(0.2,), flap_periods_ms=(700,), seed=seed)),
    ("x6", lambda seed: run_tcp_cc_experiment(
        ccs=("tahoe", "reno"), loss_rates=(0.25,), handoffs=(True,),
        seed=seed)),
]


@pytest.mark.parametrize("name,runner", EXPERIMENTS,
                         ids=[name for name, _ in EXPERIMENTS])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_report_identical_with_pooling_on_and_off(name, runner, seed,
                                                  monkeypatch):
    monkeypatch.setattr(engine, "DEFAULT_POOLING", True)
    pooled = runner(seed).format_report()
    monkeypatch.setattr(engine, "DEFAULT_POOLING", False)
    unpooled = runner(seed).format_report()
    assert pooled == unpooled
