"""Integration tests: DHCP roaming, lease lifecycle, binding lifetimes."""

from repro.net.addressing import ip
from repro.sim import ms, s
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


def arrive_without_address(testbed):
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mh_eth.remove_address(HOME)
    testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    testbed.mh_eth.subnet = testbed.addresses.dept_net


def test_dhcp_acquire_register_and_communicate(full_testbed):
    testbed = full_testbed
    arrive_without_address(testbed)
    leases = []
    testbed.mh_dhcp.acquire(on_bound=leases.append)
    testbed.sim.run_for(s(1))
    assert leases
    lease = leases[0]

    outcomes = []
    testbed.mobile.start_visiting(testbed.mh_eth, lease.address,
                                  lease.subnet, lease.gateway,
                                  on_registered=outcomes.append)
    testbed.sim.run_for(s(1))
    assert outcomes and outcomes[0].accepted
    assert testbed.home_agent.current_care_of(HOME) == lease.address

    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.received == stream.sent


def test_lease_renewal_keeps_working_while_mobile(full_testbed):
    """The DHCP renewal is local-role traffic that must keep flowing even
    while home-role traffic rides the tunnel."""
    testbed = full_testbed
    arrive_without_address(testbed)
    leases = []
    testbed.mh_dhcp.acquire(on_bound=leases.append)
    testbed.sim.run_for(s(1))
    lease = leases[0]
    testbed.mobile.start_visiting(testbed.mh_eth, lease.address,
                                  lease.subnet, lease.gateway,
                                  register=False)
    # Register with a lifetime that outlives the DHCP renewal window.
    testbed.mobile.register_current(lifetime=s(300))
    testbed.sim.run_for(s(1))

    server = testbed.dhcp_server
    first_expiry = server.lease_for("mh").expires_at
    # Run past the T1 renewal point.
    testbed.sim.run_for(testbed.config.dhcp_lease_time // 2 + s(2))
    assert server.lease_for("mh").expires_at > first_expiry
    # And the binding is still in place (renewal did not disturb it).
    assert testbed.home_agent.current_care_of(HOME) == lease.address


def test_binding_lifetime_expires_without_renewal(testbed):
    testbed.visit_dept(register=False)
    outcomes = []
    testbed.mobile.register_current(on_registered=outcomes.append,
                                    lifetime=s(3))
    testbed.sim.run_for(s(1))
    assert testbed.home_agent.current_care_of(HOME) is not None
    testbed.sim.run_for(s(4))
    assert testbed.home_agent.current_care_of(HOME) is None
    # Traffic for the MH now dies on the home subnet (nobody answers ARP).
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
    UdpEchoResponder(testbed.mobile)
    stream.start()
    testbed.sim.run_for(s(1))
    stream.stop()
    testbed.sim.run_for(s(6))
    assert stream.received == 0


def test_periodic_reregistration_keeps_binding_alive(testbed):
    testbed.visit_dept(register=False)
    for _ in range(4):
        testbed.mobile.register_current(lifetime=s(3))
        testbed.sim.run_for(s(2))
        assert testbed.home_agent.current_care_of(HOME) is not None


def test_full_roam_cycle_dept_radio_home(testbed):
    """A grand tour: home -> dept (eth) -> radio -> home, with traffic."""
    a = testbed.addresses
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(250))
    stream.start()
    testbed.sim.run_for(s(1))

    testbed.visit_dept()
    testbed.sim.run_for(s(2))
    testbed.connect_radio(register=True)
    testbed.sim.run_for(s(3))
    assert testbed.home_agent.current_care_of(HOME) == a.mh_radio

    testbed.move_mh_cable(testbed.home_segment)
    testbed.mobile.stop_visiting(testbed.mh_eth)
    testbed.mh_eth.state = testbed.mh_eth.state.__class__.UP
    testbed.mobile.come_home(testbed.mh_eth, gateway=a.router_home)
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(2))

    assert testbed.mobile.at_home
    assert testbed.home_agent.current_care_of(HOME) is None
    # The stream kept mostly working across three attachments.
    assert stream.received >= stream.sent * 0.7
