"""Two mobile hosts at once, and the Section 5.1 eavesdropping hazard.

"If packets for a mobile host arrive at a foreign network the mobile host
has just left, those packets might be erroneously delivered to a newly
arrived host that has been assigned the same temporary address ...  This
kind of accidental eavesdropping should not happen in practice because a
well-written DHCP server would avoid reassigning the same IP address for
as long as possible."  Both halves are tested: the hazard is real when
the address is reused immediately, and the FIFO free list prevents it.
"""

from repro.core.mobile_host import MobileHost
from repro.net.addressing import ip
from repro.net.interface import EthernetInterface, InterfaceState
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME_1 = ip("36.135.0.10")


def add_second_mobile(testbed):
    """A second mobile host homed on 36.135, visiting 36.8."""
    addresses = testbed.addresses
    home = ip("36.135.0.11")
    mobile = MobileHost(testbed.sim, "mh2", home_address=home,
                        home_subnet=addresses.home_net,
                        home_agent=testbed.home_agent.address,
                        config=testbed.config)
    iface = EthernetInterface(testbed.sim, "eth0.mh2",
                              testbed.macs.allocate(), testbed.config)
    mobile.add_interface(iface)
    iface.attach(testbed.dept_segment)
    iface.state = InterfaceState.UP
    mobile.home_interface = iface
    testbed.home_agent.serve(home)
    return mobile, iface, home


def test_two_mobile_hosts_roam_independently(testbed):
    mobile2, iface2, home2 = add_second_mobile(testbed)
    testbed.visit_dept()  # mh1 -> 36.8.0.50
    mobile2.start_visiting(iface2, ip("36.8.0.60"),
                           testbed.addresses.dept_net,
                           testbed.addresses.router_dept)
    testbed.sim.run_for(s(1))
    agent = testbed.home_agent
    assert agent.current_care_of(HOME_1) == ip("36.8.0.50")
    assert agent.current_care_of(home2) == ip("36.8.0.60")

    # Both are reachable at their home addresses, concurrently.
    UdpEchoResponder(testbed.mobile)
    UdpEchoResponder(mobile2)
    stream1 = UdpEchoStream(testbed.correspondent, HOME_1, interval=ms(100))
    stream2 = UdpEchoStream(testbed.correspondent, home2, interval=ms(100))
    stream1.start()
    stream2.start()
    testbed.sim.run_for(s(2))
    stream1.stop()
    stream2.stop()
    testbed.sim.run_for(s(1))
    assert stream1.received == stream1.sent
    assert stream2.received == stream2.sent

    # One moves to the radio; the other is untouched.
    testbed.connect_radio(register=True)
    testbed.sim.run_for(s(1))
    assert agent.current_care_of(HOME_1) == testbed.addresses.mh_radio
    assert agent.current_care_of(home2) == ip("36.8.0.60")


def test_address_reuse_eavesdropping_hazard_is_real(testbed):
    """Force immediate reuse of a departed host's care-of address: the
    newcomer really does receive the departed host's tunneled packets."""
    care_of = testbed.visit_dept()
    testbed.sim.run_for(s(1))

    # mh1 vanishes abruptly (no deregistration — battery died).
    testbed.mh_eth.state = InterfaceState.DOWN
    testbed.mh_eth.detach()

    # A newcomer is (carelessly) assigned the same temporary address and,
    # like any real host configuring an address, announces itself with a
    # gratuitous ARP — which voids the router's stale entry for the
    # departed host.
    mobile2, iface2, _home2 = add_second_mobile(testbed)
    iface2.subnet = testbed.addresses.dept_net
    iface2.add_address(care_of, make_primary=True)
    iface2.arp.send_gratuitous(care_of)

    overheard = []
    mobile2.udp.open(7).on_datagram(
        lambda data, src, sp, dst: overheard.append(data.content))

    # The correspondent keeps sending to mh1's home address; the home
    # agent still tunnels to the (reassigned) care-of address.
    stream = UdpEchoStream(testbed.correspondent, HOME_1, interval=ms(200))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    # The newcomer decapsulates nothing (no IPIP handler) — but the outer
    # packets did arrive at its interface: that is the eavesdropping
    # exposure.  With an IPIP handler it would read the payloads.
    assert iface2.rx_packets > 0
    assert stream.received == 0  # and mh1's traffic is simply gone


def test_dhcp_reuse_avoidance_defuses_the_hazard(full_testbed):
    """With the well-written server, the departed host's address goes to
    the back of the queue and the newcomer gets a different one."""
    testbed = full_testbed
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mh_eth.remove_address(HOME_1)
    testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    testbed.mh_eth.subnet = testbed.addresses.dept_net
    leases = []
    testbed.mh_dhcp.acquire(on_bound=leases.append)
    testbed.sim.run_for(s(2))
    departed_address = leases[0].address
    testbed.mh_dhcp.release()
    testbed.sim.run_for(s(1))

    # The newcomer asks for an address.
    from repro.net.dhcp import DHCPClient

    mobile2, iface2, _home2 = add_second_mobile(testbed)
    iface2.subnet = testbed.addresses.dept_net
    newcomer = DHCPClient(mobile2, iface2, client_id="newcomer")
    new_leases = []
    newcomer.acquire(on_bound=new_leases.append)
    testbed.sim.run_for(s(2))
    assert new_leases
    assert new_leases[0].address != departed_address
