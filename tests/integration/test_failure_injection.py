"""Failure injection: what breaks, what degrades, what recovers.

The paper's architecture argument is largely about failure domains ("the
foreign agent is no longer a single point of failure", "this is especially
useful if the home agent is not reachable or has crashed").  These tests
crash components mid-run and check that the system fails the way the
paper says it should.
"""

from repro.core.policy import RoutingMode
from repro.net.addressing import ip
from repro.net.interface import InterfaceState
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


def crash(host) -> None:
    """Take every non-loopback interface of *host* down instantly."""
    for iface in host.interfaces:
        if iface.name.startswith("lo."):
            continue
        iface.state = InterfaceState.DOWN


def revive(host) -> None:
    for iface in host.interfaces:
        iface.state = InterfaceState.UP


def test_home_agent_crash_breaks_tunnels_but_not_local_role():
    """Section 5.2: direct (local-role) communication "is especially
    useful if the home agent is not reachable or has crashed"."""
    sim = Simulator(seed=201)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False, separate_home_agent=True)
    care_of = testbed.visit_dept()
    sim.run_for(s(1))
    crash(testbed.home_agent_host)

    # Home-role traffic dies (proxy ARP answered by a corpse).
    UdpEchoResponder(testbed.mobile)
    home_stream = UdpEchoStream(testbed.correspondent, HOME,
                                interval=ms(100))
    home_stream.start()
    sim.run_for(s(1))
    home_stream.stop()
    sim.run_for(s(5))
    assert home_stream.received == 0

    # Local-role traffic is untouched: the correspondent reaches the
    # care-of address directly.
    results = []
    testbed.correspondent.icmp.ping(care_of, on_reply=results.append,
                                    on_timeout=lambda: results.append(None))
    sim.run_for(s(2))
    assert results and results[0] is not None

    # And the MH can still talk out directly, ignoring mobile IP.
    testbed.mobile.policy.set_policy(testbed.addresses.ch_dept,
                                     RoutingMode.LOCAL)
    direct = UdpEchoStream(testbed.mobile, testbed.addresses.ch_dept,
                           interval=ms(100))
    UdpEchoResponder(testbed.correspondent)
    direct.start()
    sim.run_for(s(1))
    direct.stop()
    sim.run_for(s(1))
    assert direct.received == direct.sent


def test_home_agent_restart_recovers_after_reregistration():
    """A rebooted home agent has lost its bindings; the mobile host's
    periodic re-registration restores service."""
    sim = Simulator(seed=202)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    testbed.visit_dept()
    sim.run_for(s(1))

    # "Reboot": drop all bindings and intercept state.
    agent = testbed.home_agent
    binding = agent.bindings.get(HOME)
    assert binding is not None
    agent.bindings.deregister(HOME)
    agent._remove_intercept(HOME)

    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(200))
    stream.start()
    sim.run_for(s(2))
    lost_before_recovery = stream.lost_count()
    assert lost_before_recovery > 0  # service really was down

    testbed.mobile.register_current()  # the periodic re-registration
    sim.run_for(s(3))
    stream.stop()
    sim.run_for(s(1))
    # Traffic flows again after recovery.
    recent_losses = stream.lost_sequences(since=s(4))
    assert recent_losses == []


def test_registration_survives_lossy_radio():
    """Retransmission carries the registration through a bad radio patch."""
    sim = Simulator(seed=203)
    config = None
    from repro.config import DEFAULT_CONFIG, LinkTimings
    from repro.sim.units import KBPS, ms as ms_

    config = DEFAULT_CONFIG.with_overrides(
        radio=LinkTimings(latency=ms_(78), bandwidth_bps=34 * KBPS,
                          loss_rate=0.35))
    testbed = build_testbed(sim, config, with_remote_correspondent=False,
                            with_dhcp=False)
    outcomes = []
    testbed.unplug_ethernet()
    testbed.connect_radio(register=False)
    testbed.mobile.start_visiting(
        testbed.mh_radio, testbed.addresses.mh_radio,
        testbed.addresses.radio_net, testbed.addresses.router_radio,
        register=False)
    testbed.mobile.register_current(on_registered=outcomes.append,
                                    on_failed=lambda: outcomes.append(None))
    sim.run_for(s(10))
    assert outcomes, "registration neither completed nor failed"
    # With 35% loss per air crossing and 4 transmissions, success is the
    # overwhelmingly likely outcome — and when it succeeds, it took
    # retransmissions.
    outcome = outcomes[0]
    if outcome is not None:
        assert outcome.accepted


def test_registration_gives_up_when_home_network_unreachable():
    sim = Simulator(seed=204)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    testbed.visit_dept(register=False)
    crash(testbed.router)
    failures = []
    testbed.mobile.register_current(
        on_registered=lambda outcome: failures.append("accepted"),
        on_failed=lambda: failures.append("failed"))
    # Backed-off retransmissions (1 s, 2 s, 4 s) plus the capped 8 s
    # give-up wait put terminal failure just past 15 s.
    sim.run_for(s(20))
    assert failures == ["failed"]


def test_dhcp_outage_does_not_break_static_addressing():
    """If the DHCP server is down, a statically configured care-of
    address still works (the paper: addresses 'could be assigned by
    hand')."""
    sim = Simulator(seed=205)
    testbed = build_testbed(sim)  # with DHCP
    crash(testbed.dhcp_server.host)
    dhcp_outcomes = []
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mh_eth.remove_address(HOME)
    testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    testbed.mh_eth.subnet = testbed.addresses.dept_net
    testbed.mh_dhcp.acquire(
        on_bound=lambda lease: dhcp_outcomes.append("bound"),
        on_failed=lambda: dhcp_outcomes.append("failed"),
        timeout=ms(2000))
    sim.run_for(s(4))
    assert dhcp_outcomes == ["failed"]

    # Fall back to the hand-assigned address.
    registered = []
    testbed.mobile.start_visiting(
        testbed.mh_eth, testbed.addresses.mh_dept_care_of,
        testbed.addresses.dept_net, testbed.addresses.router_dept,
        on_registered=registered.append)
    sim.run_for(s(2))
    assert registered and registered[0].accepted


def test_tcp_survives_repeated_flapping():
    """Five consecutive interface flaps; the session delivers everything."""
    from repro.workloads import TcpBulkReceiver, TcpBulkSender

    sim = Simulator(seed=206)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    testbed.visit_dept()
    sim.run_for(s(1))
    receiver = TcpBulkReceiver(testbed.mobile)
    sender = TcpBulkSender(testbed.correspondent, HOME, interval=ms(150))
    sender.start()
    sim.run_for(s(1))
    for _ in range(5):
        testbed.mh_eth.state = InterfaceState.DOWN
        sim.run_for(ms(700))
        testbed.mh_eth.state = InterfaceState.UP
        sim.run_for(ms(1300))
    sender.finish()
    sim.run_for(s(60))
    assert not sender.reset
    assert receiver.received_chunks == list(range(sender.sent_chunks))
