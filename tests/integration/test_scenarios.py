"""Integration tests for the canned movement scenarios."""

from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.testbed.scenarios import commute, conference_visit, random_walk
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


def streaming(testbed, interval=ms(250)):
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=interval)
    stream.start()
    return stream


def test_commute_scenario_end_to_end(testbed):
    stream = streaming(testbed)
    run = commute(testbed)
    testbed.sim.run_for(s(16))
    stream.stop()
    testbed.sim.run_for(s(3))

    assert run.steps_executed == [
        "arrive at the office",
        "leave the office (cold to radio)",
        "arrive home",
    ]
    assert run.all_switches_succeeded
    assert testbed.mobile.at_home
    assert testbed.home_agent.current_care_of(HOME) is None
    # The stream survived the whole commute with bounded loss (the cold
    # switch's bring-up window plus at most a couple of moving-day gaps).
    assert stream.lost_count() <= 8
    assert stream.received >= stream.sent * 0.75


def test_conference_scenario(full_testbed):
    testbed = full_testbed
    stream = streaming(testbed)
    run = conference_visit(testbed, dwell=s(5))
    testbed.sim.run_for(s(9))
    stream.stop()
    testbed.sim.run_for(s(2))
    assert run.steps_executed == ["arrive at the conference", "fly home"]
    assert testbed.mobile.at_home
    # While at the conference, traffic was tunneled across the backbone.
    assert testbed.home_agent.vif.packets_encapsulated > 0
    assert stream.received >= stream.sent * 0.8


def test_random_walk_binding_always_tracks(testbed):
    """Soak: after every dwell period, the home agent's binding points at
    wherever the walk put the mobile host."""
    run = random_walk(testbed, moves=6, dwell=s(3))
    addresses = testbed.addresses
    observations = []

    def observe(index):
        care_of = testbed.home_agent.current_care_of(HOME)
        attached = testbed.mobile.care_of
        observations.append((index, care_of, attached))

    for index in range(6):
        testbed.sim.call_later(s(3) * index + s(2),
                               lambda index=index: observe(index))
    testbed.sim.run_for(s(20))
    assert len(run.steps_executed) == 6
    for index, registered, attached in observations:
        assert registered == attached, f"binding stale after move {index}"


def test_random_walk_is_reproducible():
    first = Simulator(seed=31)
    testbed_a = build_testbed(first, with_remote_correspondent=False,
                              with_dhcp=False)
    run_a = random_walk(testbed_a, moves=5)
    first.run_for(s(20))

    second = Simulator(seed=31)
    testbed_b = build_testbed(second, with_remote_correspondent=False,
                              with_dhcp=False)
    run_b = random_walk(testbed_b, moves=5)
    second.run_for(s(20))
    assert run_a.steps_executed == run_b.steps_executed
