"""Smoke tests for every experiment harness (small parameterizations).

The benchmarks run the full-size experiments; these keep the harness code
itself under fast test, verify determinism, and check that every report
serializes to plain data and renders to text.
"""

import json

import pytest

from repro.experiments import (
    run_autoswitch_experiment,
    run_device_switch_experiment,
    run_fa_ablation,
    run_ha_scalability_experiment,
    run_registration_experiment,
    run_routing_options_experiment,
    run_same_subnet_experiment,
    run_smart_correspondent_experiment,
)
from repro.core.binding_shard import BindingShardPlane
from repro.experiments import run_plane_chaos_experiment
from repro.experiments.exp_device_switch import SwitchCase
from repro.experiments.exp_plane_chaos import run_plane_chaos_trial
from repro.experiments.harness import as_plain_data
from repro.faults import AuditViolation


def check_report(report) -> None:
    """Every report renders and serializes."""
    text = report.format_report()
    assert isinstance(text, str) and len(text) > 40
    plain = as_plain_data(report)
    json.dumps(plain)  # must be JSON-clean


def test_registration_smoke():
    report = run_registration_experiment(iterations=3, seed=1)
    assert report.iterations == 3
    assert report.total.count == 3
    check_report(report)


def test_registration_is_deterministic():
    first = run_registration_experiment(iterations=3, seed=9)
    second = run_registration_experiment(iterations=3, seed=9)
    assert first.total.mean == second.total.mean
    assert first.request_reply.std == second.request_reply.std


def test_same_subnet_smoke():
    report = run_same_subnet_experiment(iterations=4, seed=2)
    assert len(report.losses) == 4
    assert report.max_loss <= 1
    check_report(report)


def test_device_switch_smoke():
    report = run_device_switch_experiment(iterations=2, seed=3)
    assert set(report.cases) == set(SwitchCase)
    for case, result in report.cases.items():
        assert len(result.losses) == 2
    check_report(report)


def test_routing_options_smoke():
    report = run_routing_options_experiment(probes=6, seed=4)
    assert len(report.results) == 4
    check_report(report)


def test_fa_ablation_smoke():
    report = run_fa_ablation(iterations=2, seed=5)
    assert len(report.losses_with_fa) == 2
    check_report(report)


def test_smart_correspondent_smoke():
    report = run_smart_correspondent_experiment(probes=8, seed=6)
    assert report.speedup > 1.0
    check_report(report)


def test_ha_scalability_smoke():
    report = run_ha_scalability_experiment(fleet_sizes=(1, 4), seed=7)
    assert [result.fleet_size for result in report.results] == [1, 4]
    assert all(result.accepted == result.fleet_size
               for result in report.results)
    check_report(report)


def test_autoswitch_smoke():
    report = run_autoswitch_experiment(intervals_ms=(200, 800), seed=8)
    assert len(report.points) == 2
    assert report.points[0].failover_ms < report.points[1].failover_ms
    check_report(report)


def test_plane_chaos_smoke():
    report = run_plane_chaos_experiment(fleet_sizes=(24,), seed=5,
                                        shard_hosts=24)
    assert len(report.points) == 4  # churn x partition grid
    for point in report.points:
        assert point.violations == 0  # the auditor gate
        assert point.accepted > 0
    assert any(point.takeovers > 0 for point in report.points)
    assert any(point.stale_served > 0 for point in report.points)
    assert report.calibrated_interval_s > 0
    check_report(report)


def test_plane_chaos_trial_gates_on_the_auditor(monkeypatch):
    # Deliberately broken takeover accounting: counted, never traced.
    # The trial itself must refuse to report numbers from such a plane.
    def silent_takeover(self, primary, takeover):
        self.takeovers += 1

    monkeypatch.setattr(BindingShardPlane, "_count_takeover",
                        silent_takeover)
    with pytest.raises(AuditViolation):
        run_plane_chaos_trial(fleet_size=24, n_hosts=24, host_offset=0,
                              churn=False, partition=True, seed=7)


def test_as_plain_data_handles_enum_keys():
    report = run_device_switch_experiment(iterations=1, seed=10)
    plain = as_plain_data(report)
    assert "cold ethernet->radio" in plain["cases"]
    assert isinstance(plain["cases"]["cold ethernet->radio"]["losses"], list)
