"""End-to-end observability: a real mobility scenario must leave a
metrics trail — tunnel traffic, a registration latency histogram, and
engine dispatch counts — without disturbing the simulation itself."""

from repro import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads.udp_echo import UdpEchoResponder, UdpEchoStream


def _visit_dept_run(seed=5):
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim)
    testbed.visit_dept()
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent,
                           testbed.addresses.mh_home, interval=ms(100))
    stream.start()
    sim.run_for(s(5))
    return sim, testbed


def test_visit_dept_produces_tunnel_and_registration_metrics():
    sim, testbed = _visit_dept_run()
    snap = sim.metrics.snapshot()

    encap = sum(value for key, value in snap.items()
                if key.startswith("tunnel/encapsulated"))
    decap = sum(value for key, value in snap.items()
                if key.startswith("tunnel/decapsulated"))
    assert encap > 0, "home agent never encapsulated traffic for the visitor"
    assert decap > 0, "mobile host never decapsulated tunneled traffic"

    latency_counts = [value for key, value in snap.items()
                      if key.startswith("registration/latency_ms")
                      and key.endswith(":count")]
    assert latency_counts and sum(latency_counts) >= 1

    assert any(key.startswith("engine/dispatched") for key in snap)
    assert snap["engine/queue_depth_max"] > 0


def test_metrics_reading_does_not_change_behavior():
    sim_a, _ = _visit_dept_run(seed=11)
    sim_b, _ = _visit_dept_run(seed=11)
    # Read registry A heavily mid-comparison; B untouched until the end.
    for _ in range(3):
        sim_a.metrics.snapshot()
    assert sim_a.metrics.snapshot() == sim_b.metrics.snapshot()
    assert len(sim_a.trace) == len(sim_b.trace)


def test_snapshot_values_are_plain_numbers():
    sim, _ = _visit_dept_run(seed=2)
    for key, value in sim.metrics.snapshot().items():
        assert isinstance(value, (int, float)), (key, value)
