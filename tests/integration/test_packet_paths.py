"""Integration tests for Figure 4: the exact path packets take.

The paper's Figure 4 shows an outgoing mobile packet traversing
transport -> IP -> (policy) -> VIF -> IPIP -> IP -> physical interface.
These tests reconstruct the path from the trace and assert its shape.
"""

from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.sim import ms, s
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


def test_outgoing_tunneled_packet_takes_figure4_path(testbed):
    """One MH-originated datagram: policy decision, one encapsulation,
    outer send on the physical interface."""
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    testbed.sim.trace.clear()

    socket = testbed.mobile.udp.open(0)
    socket.sendto(AppData("one", 3), ip("36.8.0.20"), 9)
    testbed.sim.run_for(ms(100))

    # ip_rt_route is consulted at least once (the kernel calls it from
    # both the transport and IP layers); every decision says "tunnel".
    decisions = testbed.sim.trace.select("policy", "decision", host="mh")
    assert decisions
    assert all(record["mode"] == "tunnel" for record in decisions)

    encapsulations = testbed.sim.trace.select(
        "tunnel", "encapsulated", interface=testbed.mobile.vif.name)
    assert len(encapsulations) == 1
    outer = encapsulations[0]["outer"]
    # Outer header: care-of -> home agent; inner: home -> correspondent.
    assert outer.startswith(f"{testbed.addresses.mh_dept_care_of} -> "
                            f"{testbed.home_agent.address}")
    assert f"{HOME} -> 36.8.0.20" in outer
    # Exactly one encapsulation layer ever (the paper's guard).
    assert outer.count("IPIP") == 1


def test_incoming_tunneled_packet_is_decapsulated_once(testbed):
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    testbed.sim.trace.clear()
    UdpEchoResponder(testbed.mobile)
    probe = testbed.correspondent.udp.open(0)
    probe.sendto(AppData(("echo-probe", 0), 12), HOME, 7)
    testbed.sim.run_for(ms(500))

    mh_decaps = testbed.sim.trace.select("tunnel", "decapsulated", host="mh")
    assert len(mh_decaps) == 1
    assert f"36.8.0.20 -> {HOME}" in mh_decaps[0]["inner"]


def test_loopback_traffic_never_touches_mobile_ip(testbed):
    """'An application may use the local-loopback interface, and there is
    no reason to send such packets through the home agent.'"""
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    before = testbed.mobile.vif.packets_encapsulated
    got = []
    testbed.mobile.udp.open(9).on_datagram(
        lambda d, s_, sp, dst: got.append(d.content))
    testbed.mobile.udp.open(0).sendto(AppData("local", 5),
                                      ip("127.0.0.1"), 9)
    testbed.sim.run_for(ms(100))
    assert got == ["local"]
    assert testbed.mobile.vif.packets_encapsulated == before


def test_mobile_aware_socket_goes_direct(testbed):
    """A socket bound to the care-of address bypasses mobile IP entirely
    (the local role); its packets carry the care-of source on the wire."""
    care_of = testbed.visit_dept()
    testbed.sim.run_for(s(1))
    testbed.sim.trace.clear()
    got = []
    testbed.correspondent.udp.open(9).on_datagram(
        lambda d, src, sp, dst: got.append(str(src)))
    bound = testbed.mobile.udp.open(0, bound_address=care_of)
    bound.sendto(AppData("direct", 6), ip("36.8.0.20"), 9)
    testbed.sim.run_for(ms(200))
    assert got == [str(care_of)]
    assert testbed.sim.trace.select("tunnel", "encapsulated") == []


def test_reverse_tunnel_counts_match_end_to_end(testbed):
    """Every MH-originated packet under the basic protocol is encapsulated
    exactly once by the MH and decapsulated exactly once by the HA."""
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    UdpEchoResponder(testbed.correspondent)
    stream = UdpEchoStream(testbed.mobile, ip("36.8.0.20"), interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.received == stream.sent
    assert testbed.mobile.vif.packets_encapsulated >= stream.sent
    ha_host = testbed.home_agent.host
    assert ha_host.ipip.packets_decapsulated >= stream.sent
