"""Every example must run clean: they are executable documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 7


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run([sys.executable, str(example)],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"
    assert "Traceback" not in result.stderr
