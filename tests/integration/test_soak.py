"""Soak test: minutes of simulated roaming under concurrent load.

Everything at once, for a long time: a TCP session, a UDP echo stream, a
DNS-resolved correspondent, periodic re-registration, and a random walk
between networks.  The invariants that must hold at the end are the
paper's core promises — no connection resets, in-order delivery, binding
always tracking the mobile host.
"""

import pytest

from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.testbed.scenarios import random_walk
from repro.workloads import (
    TcpBulkReceiver,
    TcpBulkSender,
    UdpEchoResponder,
    UdpEchoStream,
)

HOME = ip("36.135.0.10")


@pytest.mark.parametrize("seed", [1001, 1002, 1003])
def test_three_minute_roaming_soak(seed):
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    testbed.visit_dept()
    sim.run_for(s(1))

    # Concurrent load.
    UdpEchoResponder(testbed.mobile)
    echo = UdpEchoStream(testbed.correspondent, HOME, interval=ms(500))
    echo.start()
    receiver = TcpBulkReceiver(testbed.mobile)
    sender = TcpBulkSender(testbed.correspondent, HOME, interval=ms(400))
    sender.start()

    # Periodic re-registration every 20 s with a 45 s lifetime: the
    # binding must never lapse.
    def reregister():
        if not testbed.mobile.at_home and testbed.mobile.care_of is not None:
            testbed.mobile.register_current(lifetime=s(45))
        sim.call_later(s(20), reregister)

    sim.call_later(s(20), reregister)

    # The walk: 12 moves, 15 s dwell = 180 s of roaming.
    walk = random_walk(testbed, moves=12, dwell=s(15))
    sim.run_for(s(180) + s(8))

    # Wind down.
    echo.stop()
    sender.finish()
    sim.run_for(s(60))

    # --- invariants -------------------------------------------------------
    assert len(walk.steps_executed) == 12
    # TCP: never reset, everything delivered exactly once, in order.
    assert not sender.reset
    assert receiver.received_chunks == list(range(sender.sent_chunks))
    assert sender.sent_chunks > 300
    # Binding still tracks the current attachment.
    assert testbed.home_agent.current_care_of(HOME) == testbed.mobile.care_of
    # Echo stream: loss bounded by the switching windows, not systemic.
    assert echo.received >= echo.sent * 0.85
    # Exactly-once encapsulation held across the entire run.
    for record in sim.trace.select("tunnel", "encapsulated"):
        assert record["outer"].count("IPIP") == 1
    # The home address always lived in exactly one place.
    owners = [iface.name for iface in testbed.mobile.interfaces
              if iface.owns_address(HOME)]
    assert len(owners) == 1
