"""Shared fixtures: a simulator, a tiny LAN, and the paper's testbed."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import MACAllocator, ip, subnet
from repro.net.host import Host
from repro.net.interface import EthernetInterface
from repro.net.link import EthernetSegment
from repro.sim import Simulator, ms
from repro.testbed import build_testbed


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


class Lan:
    """A two-host Ethernet LAN used by many unit tests.

    ``lan.a`` is 10.0.0.1 and ``lan.b`` is 10.0.0.2 on 10.0.0.0/24; the
    helper ``lan.host(addr)`` adds more hosts.
    """

    def __init__(self, sim: Simulator, config=DEFAULT_CONFIG) -> None:
        self.sim = sim
        self.config = config
        self.net = subnet("10.0.0.0/24")
        self.macs = MACAllocator()
        self.segment = EthernetSegment(sim, "lan", self.config.ethernet)
        self.a = self.host("10.0.0.1", "a")
        self.b = self.host("10.0.0.2", "b")

    def host(self, address: str, name: str = "") -> Host:
        label = name or f"h{address.rsplit('.', 1)[-1]}"
        node = Host(self.sim, label, self.config)
        iface = EthernetInterface(self.sim, f"eth.{label}",
                                  self.macs.allocate(), self.config)
        node.add_interface(iface)
        iface.attach(self.segment)
        node.configure_interface(iface, ip(address), self.net)
        return node

    def run(self, duration_ms: float = 1000) -> None:
        self.sim.run_for(ms(duration_ms))


@pytest.fixture
def lan(sim: Simulator) -> Lan:
    return Lan(sim)


@pytest.fixture
def testbed():
    simulator = Simulator(seed=77)
    return build_testbed(simulator, with_remote_correspondent=False,
                         with_dhcp=False)


@pytest.fixture
def full_testbed():
    simulator = Simulator(seed=78)
    return build_testbed(simulator)
