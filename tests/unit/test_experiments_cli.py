"""Unit tests for the experiments command-line runner."""

import pytest

from repro.experiments.__main__ import RUNNERS, main


def test_unknown_experiment_id_is_an_error(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment ids" in capsys.readouterr().err


def test_single_experiment_runs_and_prints(capsys):
    assert main(["f7"]) == 0
    out = capsys.readouterr().out
    assert "Registration time-line" in out
    assert "4.79" in out  # the paper column is present


def test_ids_are_case_insensitive(capsys):
    assert main(["F7"]) == 0


def test_runner_table_covers_all_documented_ids():
    assert set(RUNNERS) == {"e1", "f6", "f7", "f3", "a1", "x1", "x2", "x3"}
    for name, (title, runner) in RUNNERS.items():
        assert callable(runner)
        assert title
