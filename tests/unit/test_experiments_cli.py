"""Unit tests for the experiments command-line runner."""

from repro.experiments.__main__ import RUNNERS, main


def test_unknown_experiment_id_is_an_error(capsys):
    assert main(["nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment ids" in err
    # The error names every known id so the user can self-correct.
    for known in RUNNERS:
        assert known in err


def test_unknown_id_is_not_silently_skipped(capsys):
    # A mix of known and unknown ids must fail before running anything.
    assert main(["f7", "bogus"]) == 2
    captured = capsys.readouterr()
    assert "bogus" in captured.err
    assert "Registration time-line" not in captured.out


def test_single_experiment_runs_and_prints(capsys):
    assert main(["f7"]) == 0
    out = capsys.readouterr().out
    assert "Registration time-line" in out
    assert "4.79" in out  # the paper column is present


def test_ids_are_case_insensitive(capsys):
    assert main(["F7"]) == 0


def test_jobs_flag_accepts_worker_count(capsys):
    assert main(["--jobs", "2", "f7"]) == 0
    assert "Registration time-line" in capsys.readouterr().out


def test_negative_jobs_is_an_error(capsys):
    assert main(["--jobs", "-1", "f7"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_jobs_output_matches_serial(capsys):
    assert main(["f7"]) == 0
    serial = capsys.readouterr().out
    assert main(["--jobs", "2", "f7"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_runner_table_covers_all_documented_ids():
    assert set(RUNNERS) == {"e1", "f6", "f7", "f3", "a1",
                            "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8",
                            "x9"}
    for name, (title, runner) in RUNNERS.items():
        assert callable(runner)
        assert title


def test_unknown_id_error_names_x7(capsys):
    assert main(["nope"]) == 2
    assert "x7" in capsys.readouterr().err


def test_list_flag_prints_every_id_and_exits_zero(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name, (title, _) in RUNNERS.items():
        assert name in out
        assert title in out


def test_list_flag_runs_nothing(capsys):
    # --list must be cheap: no experiment output, just the table.
    assert main(["--list", "f7"]) == 0
    out = capsys.readouterr().out
    assert "===" not in out
    assert "4.79" not in out
