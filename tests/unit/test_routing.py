"""Unit tests for the routing table and RouteResult."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import MACAllocator, ip, subnet
from repro.net.interface import EthernetInterface, InterfaceState
from repro.net.routing import RouteEntry, RouteResult, RoutingTable
from repro.sim import Simulator


@pytest.fixture
def ifaces(sim):
    macs = MACAllocator()
    out = []
    for name in ("eth0", "eth1", "vif"):
        iface = EthernetInterface(sim, name, macs.allocate(), DEFAULT_CONFIG)
        iface.state = InterfaceState.UP
        out.append(iface)
    return out


def test_longest_prefix_wins(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/8"), ifaces[0]))
    table.add(RouteEntry(subnet("10.1.0.0/16"), ifaces[1]))
    table.add(RouteEntry(subnet("10.1.2.0/24"), ifaces[2]))
    assert table.lookup(ip("10.1.2.3")).interface is ifaces[2]
    assert table.lookup(ip("10.1.9.9")).interface is ifaces[1]
    assert table.lookup(ip("10.9.9.9")).interface is ifaces[0]


def test_metric_breaks_prefix_ties(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0], metric=10))
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[1], metric=5))
    assert table.lookup(ip("10.0.0.1")).interface is ifaces[1]


def test_host_route_beats_everything(ifaces):
    table = RoutingTable()
    table.add_default(ifaces[0], gateway=ip("10.0.0.1"))
    table.add(RouteEntry(subnet("10.1.0.0/16"), ifaces[1]))
    table.add_host_route(ip("10.1.2.3"), ifaces[2])
    assert table.lookup(ip("10.1.2.3")).interface is ifaces[2]


def test_default_route_catches_everything(ifaces):
    table = RoutingTable()
    table.add_default(ifaces[0], gateway=ip("10.0.0.1"))
    entry = table.lookup(ip("200.1.2.3"))
    assert entry is not None and entry.gateway == ip("10.0.0.1")


def test_no_match_returns_none(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0]))
    assert table.lookup(ip("11.0.0.1")) is None


def test_down_interfaces_are_skipped(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0]))
    table.add(RouteEntry(subnet("10.0.0.0/16"), ifaces[1]))
    ifaces[0].state = InterfaceState.DOWN
    assert table.lookup(ip("10.0.0.1")).interface is ifaces[1]
    assert table.lookup(ip("10.0.0.1"), require_up=False).interface is ifaces[0]


def test_remove_matching_by_interface(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0]))
    table.add_default(ifaces[0], gateway=ip("10.0.0.1"))
    table.add(RouteEntry(subnet("10.1.0.0/24"), ifaces[1]))
    assert table.remove_matching(interface=ifaces[0]) == 2
    assert len(table) == 1


def test_remove_default_only(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0]))
    table.add_default(ifaces[0], gateway=ip("10.0.0.1"))
    assert table.remove_default() == 1
    assert table.lookup(ip("99.0.0.1")) is None
    assert table.lookup(ip("10.0.0.1")) is not None


def test_entries_for(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0]))
    table.add(RouteEntry(subnet("10.1.0.0/24"), ifaces[1]))
    assert len(table.entries_for(ifaces[0])) == 1


def test_route_result_next_hop(ifaces):
    direct = RouteResult(interface=ifaces[0], source=ip("10.0.0.1"))
    assert direct.next_hop(ip("10.0.0.9")) == ip("10.0.0.9")
    via = RouteResult(interface=ifaces[0], source=ip("10.0.0.1"),
                      gateway=ip("10.0.0.254"))
    assert via.next_hop(ip("99.0.0.9")) == ip("10.0.0.254")


def test_pinned_source_on_entry(ifaces):
    table = RoutingTable()
    table.add(RouteEntry(subnet("10.0.0.0/24"), ifaces[0],
                         source=ip("10.0.0.42")))
    assert table.lookup(ip("10.0.0.1")).source == ip("10.0.0.42")
