"""Unit tests for the pluggable congestion-control strategies."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import ip
from repro.net.congestion import (
    CONGESTION_CONTROLS,
    CubicCC,
    RenoCC,
    TahoeCC,
    icbrt,
    make_congestion_control,
)
from repro.net.packet import AppData
from repro.net.tcp import DEFAULT_MSS, DEFAULT_WINDOW_BYTES
from repro.sim import Simulator
from tests.conftest import Lan

MSS = DEFAULT_MSS
WIN = DEFAULT_WINDOW_BYTES


def make(name, **kwargs):
    return make_congestion_control(name, mss=MSS, max_window=WIN, **kwargs)


class TestRegistry:
    def test_all_three_strategies_registered(self):
        assert set(CONGESTION_CONTROLS) == {"tahoe", "reno", "cubic"}

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="tahoe"):
            make("vegas")

    def test_initial_window_defaults_and_overrides(self):
        cc = make("tahoe")
        assert cc.cwnd == 2 * MSS
        assert cc.ssthresh == WIN
        tuned = make("reno", initial_cwnd=WIN, initial_ssthresh=3 * MSS)
        assert tuned.cwnd == WIN
        assert tuned.ssthresh == 3 * MSS

    def test_window_is_clamped_to_max(self):
        cc = make("reno")
        cc.cwnd = 10 * WIN
        assert cc.window() == WIN


class TestIcbrt:
    @pytest.mark.parametrize("value", [0, 1, 7, 8, 26, 27, 1000, 10**9,
                                       10**12 + 7, 2**62])
    def test_floor_cube_root(self, value):
        root = icbrt(value)
        assert root ** 3 <= value < (root + 1) ** 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            icbrt(-1)


class TestTahoe:
    def test_slow_start_doubles_per_ack(self):
        cc = make("tahoe")
        cc.on_ack(MSS, now=0, srtt=None)
        assert cc.cwnd == 3 * MSS  # below ssthresh: +MSS per ACK

    def test_congestion_avoidance_increment(self):
        cc = make("tahoe", initial_cwnd=WIN, initial_ssthresh=2 * MSS)
        cc.on_ack(MSS, now=0, srtt=None)
        # Legacy integer AIMD: +MSS*MSS//cwnd, clamped at the max window.
        assert cc.cwnd == WIN

    def test_timeout_collapses_to_one_mss(self):
        cc = make("tahoe", initial_cwnd=WIN)
        cc.on_timeout(flight=WIN, now=0)
        assert cc.cwnd == MSS
        assert cc.ssthresh == WIN // 2

    def test_no_fast_retransmit(self):
        assert TahoeCC(mss=MSS, max_window=WIN).supports_fast_retransmit is False


class TestReno:
    def test_enter_recovery_halves_and_inflates(self):
        cc = make("reno", initial_cwnd=WIN)
        cc.on_enter_recovery(flight=WIN, now=0)
        assert cc.ssthresh == WIN // 2
        assert cc.cwnd == WIN // 2 + 3 * MSS

    def test_dup_ack_inflates_during_recovery(self):
        cc = make("reno", initial_cwnd=WIN)
        cc.on_enter_recovery(flight=WIN, now=0)
        inflated = cc.cwnd
        cc.on_dup_ack_in_recovery(now=0)
        assert cc.cwnd == inflated + MSS

    def test_partial_ack_deflates_by_amount_acked(self):
        cc = make("reno", initial_cwnd=WIN)
        cc.on_enter_recovery(flight=WIN, now=0)
        before = cc.cwnd
        cc.on_partial_ack(acked=2 * MSS, now=0)
        assert cc.cwnd == max(before - 2 * MSS + MSS, MSS)

    def test_exit_recovery_deflates_to_ssthresh(self):
        cc = make("reno", initial_cwnd=WIN)
        cc.on_enter_recovery(flight=WIN, now=0)
        cc.on_dup_ack_in_recovery(now=0)
        cc.on_exit_recovery(now=0)
        assert cc.cwnd == cc.ssthresh == WIN // 2

    def test_ssthresh_floor_is_two_mss(self):
        cc = make("reno", initial_cwnd=MSS)
        cc.on_enter_recovery(flight=MSS, now=0)
        assert cc.ssthresh == 2 * MSS

    def test_supports_fast_retransmit(self):
        assert RenoCC(mss=MSS, max_window=WIN).supports_fast_retransmit


class TestCubic:
    def test_deterministic_across_instances(self):
        """Two instances fed identical events stay in lockstep — the
        strategy may not consult wall clocks or unseeded randomness."""
        a = CubicCC(mss=MSS, max_window=WIN)
        b = CubicCC(mss=MSS, max_window=WIN)
        script = [("on_ack", (MSS, 10**6, 2 * 10**6)),
                  ("on_enter_recovery", (WIN, 5 * 10**6)),
                  ("on_partial_ack", (MSS, 6 * 10**6)),
                  ("on_exit_recovery", (7 * 10**6,)),
                  ("on_ack", (MSS, 9 * 10**6, 2 * 10**6)),
                  ("on_timeout", (WIN, 12 * 10**6))]
        for method, args in script:
            getattr(a, method)(*args)
            getattr(b, method)(*args)
            assert (a.cwnd, a.ssthresh) == (b.cwnd, b.ssthresh)

    def test_window_grows_toward_w_max_after_backoff(self):
        cc = CubicCC(mss=MSS, max_window=WIN)
        cc.cwnd = WIN
        cc.on_enter_recovery(flight=WIN, now=0)
        cc.on_exit_recovery(now=0)
        floor = cc.cwnd
        for step in range(1, 40):
            cc.on_ack(MSS, now=step * 10**8, srtt=2 * 10**6)
        assert cc.cwnd > floor
        assert cc.cwnd <= WIN + 2 * MSS  # near the plateau, not diverging

    def test_multiplicative_decrease_uses_beta(self):
        cc = CubicCC(mss=MSS, max_window=WIN)
        cc.cwnd = WIN
        cc.on_enter_recovery(flight=WIN, now=0)
        assert cc.ssthresh == max(WIN * 717 // 1024, 2 * MSS)


class TestConnectionIntegration:
    def run_transfer(self, cc_name):
        lan = Lan(Simulator(seed=4321), config=DEFAULT_CONFIG.with_overrides(
            tcp_congestion_control=cc_name))
        got = []
        lan.b.tcp.listen(23, lambda conn: setattr(conn, "on_data",
                                                  lambda d: got.append(d.content)))
        client = lan.a.tcp.connect(ip("10.0.0.2"), 23)
        client.on_established = lambda: [client.send(AppData(i, 400))
                                         for i in range(8)]
        lan.run(3000)
        return client, got

    @pytest.mark.parametrize("cc_name", ["tahoe", "reno", "cubic"])
    def test_transfer_completes_under_each_strategy(self, cc_name):
        client, got = self.run_transfer(cc_name)
        assert got == list(range(8))
        assert client.cc.name == cc_name

    def test_per_connection_override_beats_config(self, lan):
        lan.b.tcp.listen(23, lambda conn: None)
        client = lan.a.tcp.connect(ip("10.0.0.2"), 23,
                                   congestion_control="cubic")
        assert client.cc.name == "cubic"
        assert lan.config.tcp_congestion_control == "tahoe"

    def test_fast_retransmit_repairs_single_loss_without_rto(self):
        """Reno recovers one dropped segment from dup ACKs alone."""
        lan = Lan(Simulator(seed=99), config=DEFAULT_CONFIG.with_overrides(
            tcp_congestion_control="reno"))
        got = []
        lan.b.tcp.listen(23, lambda conn: setattr(conn, "on_data",
                                                  lambda d: got.append(d.content)))
        client = lan.a.tcp.connect(ip("10.0.0.2"), 23, initial_cwnd=WIN)
        lan.run(500)
        # Drop exactly the first data segment at the receiver's demux.
        original = lan.b.tcp._dispatch
        dropped = []

        def lossy_dispatch(packet, segment):
            if segment.payload.size_bytes > 0 and not dropped:
                dropped.append(segment)
                return
            original(packet, segment)

        lan.b.tcp._dispatch = lossy_dispatch
        for i in range(6):
            client.send(AppData(i, MSS))
        lan.run(4000)
        assert got == list(range(6))
        assert len(dropped) == 1
        assert client.fast_retransmits == 1
        rtos = lan.sim.metrics.counter("tcp", "rto_expirations",
                                       host="a").value
        assert rtos == 0
