"""Unit tests for the repro.obs metrics registry and exporters."""

import json

import pytest

from repro.obs import MetricsRegistry, format_report, snapshot_to_json
from repro.obs.export import trace_to_jsonl
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed


# ------------------------------------------------------------------- counters

def test_counter_counts_and_is_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("tcp", "retransmits", host="mh")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    first = registry.counter("ip", "forwards", host="router")
    second = registry.counter("ip", "forwards", host="router")
    assert first is second


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("ip", "forwards")
    with pytest.raises(TypeError):
        registry.gauge("ip", "forwards")
    with pytest.raises(TypeError):
        registry.histogram("ip", "forwards")


# --------------------------------------------------------------------- gauges

def test_gauge_moves_both_ways_and_tracks_high_water():
    registry = MetricsRegistry()
    gauge = registry.gauge("engine", "queue_depth")
    gauge.set(7)
    gauge.dec(3)
    assert gauge.value == 4
    gauge.set_max(2)
    assert gauge.value == 4  # lower values don't pull the mark down
    gauge.set_max(9)
    assert gauge.value == 9


# ----------------------------------------------------------------- histograms

def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram("handoff", "latency_ms", buckets=(1, 10, 100))
    for value in (0.5, 5, 5, 50, 5000):
        hist.observe(value)
    assert hist.count == 5
    assert hist.mean == pytest.approx((0.5 + 5 + 5 + 50 + 5000) / 5)
    assert hist.minimum == 0.5 and hist.maximum == 5000
    assert hist.cumulative_buckets() == [
        ("le_1", 1), ("le_10", 3), ("le_100", 4), ("le_inf", 5)]


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("x", "y", buckets=(10, 1))


# ------------------------------------------------------------ label isolation

def test_labels_isolate_metrics():
    registry = MetricsRegistry()
    a = registry.counter("link", "tx_frames", link="net-a")
    b = registry.counter("link", "tx_frames", link="net-b")
    a.inc(3)
    assert b.value == 0
    snap = registry.snapshot()
    assert snap["link/tx_frames{link=net-a}"] == 3
    assert snap["link/tx_frames{link=net-b}"] == 0


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    first = registry.counter("x", "y", a="1", b="2")
    second = registry.counter("x", "y", b="2", a="1")
    assert first is second


# ------------------------------------------------------------------ snapshots

def test_snapshot_keys_are_sorted():
    registry = MetricsRegistry()
    registry.counter("z", "last")
    registry.counter("a", "first")
    keys = list(registry.snapshot())
    assert keys == sorted(keys)


def test_snapshot_flattens_histograms():
    registry = MetricsRegistry()
    hist = registry.histogram("reg", "latency_ms", buckets=(10, 100))
    hist.observe(4)
    snap = registry.snapshot()
    assert snap["reg/latency_ms:count"] == 1
    assert snap["reg/latency_ms:sum"] == 4
    assert snap["reg/latency_ms:le_10"] == 1
    assert snap["reg/latency_ms:le_inf"] == 1


def test_same_seed_runs_produce_byte_identical_snapshots():
    def one_run():
        sim = Simulator(seed=99)
        testbed = build_testbed(sim)
        testbed.visit_dept()
        sim.run_for(s(4))
        return snapshot_to_json(sim.metrics)

    assert one_run() == one_run()


def test_different_seeds_may_differ_but_share_keys():
    def keys_for(seed):
        sim = Simulator(seed=seed)
        testbed = build_testbed(sim)
        testbed.visit_dept()
        sim.run_for(s(2))
        return set(sim.metrics.snapshot())

    assert keys_for(1) == keys_for(2)


# -------------------------------------------------------------------- merging

def test_merged_registries_sum_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("ip", "forwards").inc(2)
    b.counter("ip", "forwards").inc(3)
    b.counter("ip", "ttl_drops").inc(1)
    a.histogram("h", "lat", buckets=(10,)).observe(1)
    b.histogram("h", "lat", buckets=(10,)).observe(2)
    merged = MetricsRegistry.merged([a, b])
    snap = merged.snapshot()
    assert snap["ip/forwards"] == 5
    assert snap["ip/ttl_drops"] == 1
    assert snap["h/lat:count"] == 2
    # Merging mutates neither source.
    assert a.snapshot()["ip/forwards"] == 2


# ------------------------------------------------------------------ exporters

def test_format_report_groups_by_component():
    registry = MetricsRegistry()
    registry.counter("tcp", "retransmits", host="mh").inc(2)
    registry.histogram("registration", "latency_ms", host="mh").observe(4.8)
    report = format_report(registry)
    assert "[tcp]" in report and "[registration]" in report
    assert "retransmits{host=mh}" in report
    assert "count=1" in report


def test_trace_jsonl_round_trips():
    sim = Simulator(seed=1)
    sim.trace.emit("ip", "send", host="mh", size=100)
    sim.call_later(ms(1), lambda: None)
    sim.run()
    lines = trace_to_jsonl(sim.trace).strip().splitlines()
    assert len(lines) == len(sim.trace.records)
    first = json.loads(lines[0])
    assert first["category"] == "ip" and first["event"] == "send"
    assert first["fields"]["host"] == "mh"
