"""Engine observability: dispatch counters, queue-depth gauge, cancelled
event accounting, and the profile() split of simulated vs wall time."""

from repro.sim import Simulator, ms


def test_cancelled_events_never_invoke_callbacks():
    sim = Simulator()
    fired = []
    events = [sim.call_at(ms(i + 1), lambda i=i: fired.append(i))
              for i in range(10)]
    for event in events[2:]:
        event.cancel()
    sim.run()
    assert fired == [0, 1]


def test_pending_is_exact_after_cancellations():
    sim = Simulator()
    events = [sim.call_at(ms(i + 1), lambda: None) for i in range(10)]
    assert sim.pending() == 10
    for event in events[:8]:
        event.cancel()
    assert sim.pending() == 2
    # Double-cancel must not corrupt the count.
    events[0].cancel()
    assert sim.pending() == 2
    sim.run()
    assert sim.pending() == 0


def test_cancel_after_run_does_not_corrupt_accounting():
    sim = Simulator()
    event = sim.call_at(ms(1), lambda: None)
    sim.run()
    event.cancel()  # already executed; must be a no-op for accounting
    assert sim.pending() == 0
    sim.call_at(sim.now + ms(1), lambda: None)
    assert sim.pending() == 1


def test_queue_depth_gauge_excludes_cancelled_events():
    sim = Simulator()
    events = [sim.call_at(ms(i + 1), lambda: None) for i in range(10)]
    for event in events[:8]:
        event.cancel()
    # 2 live + this push = 3 live; the 8 cancelled ones must not count.
    sim.call_at(ms(20), lambda: None)
    depth = sim.metrics.gauge("engine", "queue_depth_max").value
    assert depth == 10  # high-water before the cancellations...
    sim2 = Simulator()
    held = [sim2.call_at(ms(i + 1), lambda: None) for i in range(10)]
    for event in held[:8]:
        event.cancel()
    sim2.run()
    # ...but pushes after cancellation see only live depth.
    sim2.call_at(sim2.now + ms(1), lambda: None)
    assert sim2.metrics.gauge("engine", "queue_depth_max").value == 10
    sim3 = Simulator()
    keep = sim3.call_at(ms(5), lambda: None)
    for _ in range(3):
        sim3.call_at(ms(1), lambda: None).cancel()
    sim3.call_at(ms(6), lambda: None)
    # live = keep + new push = 2; cancelled three never inflate past 4.
    assert sim3.metrics.gauge("engine", "queue_depth_max").value <= 4
    assert keep is not None


def test_dispatch_counters_label_breakdown():
    sim = Simulator()
    sim.call_at(ms(1), lambda: None, label="tick")
    sim.call_at(ms(2), lambda: None, label="tick")
    sim.call_at(ms(3), lambda: None, label="tock")
    sim.call_at(ms(4), lambda: None)  # unlabeled
    sim.run()
    snap = sim.metrics.snapshot()
    assert snap["engine/dispatched{label=tick}"] == 2
    assert snap["engine/dispatched{label=tock}"] == 1
    assert snap["engine/dispatched{label=unlabeled}"] == 1


def test_profile_reports_wall_and_sim_time():
    sim = Simulator()
    sim.call_at(ms(5), lambda: None, label="tick")
    sim.run()
    profile = sim.profile()
    assert profile["events_run"] == 1
    assert profile["sim_time_ns"] == ms(5)
    assert profile["wall_time_ns"] > 0
    assert profile["dispatched_by_label"] == {"tick": 1}


def test_wall_time_stays_out_of_the_snapshot():
    sim = Simulator()
    sim.call_at(ms(1), lambda: None)
    sim.run()
    assert not any("wall" in key for key in sim.metrics.snapshot())
