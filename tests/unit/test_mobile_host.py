"""Unit tests for the mobile host's routing hook and role machinery."""

import pytest

from repro.core.mobile_host import Location
from repro.core.policy import RoutingMode
from repro.net.addressing import UNSPECIFIED, ip
from repro.net.packet import AppData, IPPacket, PROTO_UDP, UDPDatagram
from repro.sim import ms, s

HOME = ip("36.135.0.10")


def hook(testbed, dst, src_hint=UNSPECIFIED):
    mobile = testbed.mobile
    return mobile.ip.ip_rt_route(ip(dst) if isinstance(dst, str) else dst,
                                 src_hint)


class TestAtHome:
    def test_hook_is_transparent_at_home(self, testbed):
        route = hook(testbed, "36.8.0.20")
        assert route is not None
        assert route.interface is testbed.mh_eth
        assert route.source == HOME  # the home interface's address

    def test_no_encapsulation_at_home(self, testbed):
        assert testbed.mobile.vif.packets_encapsulated == 0


class TestAwayRouting:
    def test_default_tunnel_routes_into_vif(self, testbed):
        testbed.visit_dept(register=False)
        route = hook(testbed, "36.40.0.9")
        assert route.interface is testbed.mobile.vif
        assert route.source == HOME

    def test_home_source_hint_also_gets_mobile_treatment(self, testbed):
        testbed.visit_dept(register=False)
        route = hook(testbed, "36.40.0.9", src_hint=HOME)
        assert route.interface is testbed.mobile.vif

    def test_bound_source_bypasses_mobile_ip(self, testbed):
        """Mobile-aware software that bound a care-of source is outside
        the scope of mobile IP (Figure 4's first branch)."""
        care_of = testbed.visit_dept(register=False)
        route = hook(testbed, "36.8.0.20", src_hint=care_of)
        assert route.interface is testbed.mh_eth
        assert route.source == care_of

    def test_triangle_mode_uses_physical_interface_with_home_source(self, testbed):
        testbed.visit_dept(register=False)
        testbed.mobile.policy.set_policy(ip("36.8.0.20"),
                                         RoutingMode.TRIANGLE)
        route = hook(testbed, "36.8.0.20")
        assert route.interface is testbed.mh_eth
        assert route.source == HOME

    def test_local_mode_uses_care_of_source(self, testbed):
        care_of = testbed.visit_dept(register=False)
        testbed.mobile.policy.set_policy(ip("36.8.0.20"), RoutingMode.LOCAL)
        route = hook(testbed, "36.8.0.20")
        assert route.interface is testbed.mh_eth
        assert route.source == care_of

    def test_encap_direct_selects_correspondent_as_outer_dst(self, testbed):
        care_of = testbed.visit_dept(register=False)
        testbed.mobile.policy.set_policy(ip("36.8.0.20"),
                                         RoutingMode.ENCAP_DIRECT)
        inner = IPPacket(src=HOME, dst=ip("36.8.0.20"), protocol=PROTO_UDP,
                         payload=UDPDatagram(1, 2, AppData("x", 1)))
        endpoints = testbed.mobile._select_endpoints(inner)
        assert endpoints == (care_of, ip("36.8.0.20"))

    def test_tunnel_selects_home_agent_as_outer_dst(self, testbed):
        care_of = testbed.visit_dept(register=False)
        inner = IPPacket(src=HOME, dst=ip("36.40.0.9"), protocol=PROTO_UDP,
                         payload=UDPDatagram(1, 2, AppData("x", 1)))
        endpoints = testbed.mobile._select_endpoints(inner)
        assert endpoints == (care_of, testbed.home_agent.address)


class TestAddressPlacement:
    def test_home_address_moves_to_vif_when_visiting(self, testbed):
        testbed.visit_dept(register=False)
        assert testbed.mobile.vif.owns_address(HOME)
        assert not testbed.mh_eth.owns_address(HOME)
        assert testbed.mobile.location == Location.FOREIGN

    def test_home_address_returns_to_interface_at_home(self, testbed):
        testbed.visit_dept(register=False)
        testbed.move_mh_cable(testbed.home_segment)
        testbed.mobile.stop_visiting(testbed.mh_eth)
        testbed.mobile.come_home(testbed.mh_eth,
                                 gateway=testbed.addresses.router_home)
        assert testbed.mh_eth.owns_address(HOME)
        assert not testbed.mobile.vif.owns_address(HOME)
        assert testbed.mobile.at_home

    def test_come_home_sends_gratuitous_arp(self, testbed):
        testbed.visit_dept(register=False)
        testbed.sim.trace.clear()
        testbed.move_mh_cable(testbed.home_segment)
        testbed.mobile.stop_visiting(testbed.mh_eth)
        testbed.mobile.come_home(testbed.mh_eth,
                                 gateway=testbed.addresses.router_home)
        assert testbed.sim.trace.select("arp", "gratuitous",
                                        interface=testbed.mh_eth.name,
                                        address=str(HOME))

    def test_stop_visiting_removes_care_of(self, testbed):
        care_of = testbed.visit_dept(register=False)
        testbed.mobile.stop_visiting(testbed.mh_eth)
        assert not testbed.mh_eth.owns_address(care_of)
        assert testbed.mobile.active_interface is None


class TestRegistration:
    def test_register_current_without_care_of_raises(self, testbed):
        with pytest.raises(ValueError):
            testbed.mobile.register_current()

    def test_visit_registers_and_binding_appears(self, testbed):
        outcomes = []
        testbed.visit_dept(on_registered=outcomes.append)
        testbed.sim.run_for(s(2))
        assert outcomes and outcomes[0].accepted
        assert testbed.home_agent.current_care_of(HOME) is not None


class TestForeignAgentMode:
    def test_encapsulating_modes_coerce_to_triangle(self, testbed):
        """With only the home address (FA mode) there is nothing to source
        an outer header from; TUNNEL/ENCAP_DIRECT degrade to the triangle."""
        testbed.mobile.location = Location.FOREIGN_WITH_FA
        testbed.mobile.foreign_agent = ip("36.8.0.4")
        testbed.mobile.ip.routes.remove_default()
        testbed.mobile.ip.routes.add_default(testbed.mh_eth,
                                             gateway=ip("36.135.0.1"))
        route = hook(testbed, "36.40.0.9")
        assert route.interface is not testbed.mobile.vif
        assert route.source == HOME


class TestLifetimeRenewal:
    def _renewing_testbed(self, lifetime, fraction, seed=88):
        from dataclasses import replace

        from repro.config import DEFAULT_CONFIG
        from repro.sim import Simulator
        from repro.testbed import build_testbed

        config = DEFAULT_CONFIG.with_overrides(
            registration=replace(DEFAULT_CONFIG.registration,
                                 default_lifetime=lifetime,
                                 renewal_fraction=fraction))
        sim = Simulator(seed=seed)
        return build_testbed(sim, config, with_remote_correspondent=False,
                             with_dhcp=False)

    def test_renewal_keeps_binding_alive_past_lifetime(self):
        testbed = self._renewing_testbed(lifetime=s(2), fraction=0.5)
        testbed.visit_dept()
        testbed.sim.run_for(s(7))
        assert testbed.mobile.renewals_sent >= 2
        assert testbed.home_agent.bindings.get(HOME) is not None
        assert testbed.home_agent.bindings_expired == 0

    def test_without_renewal_binding_expires(self):
        testbed = self._renewing_testbed(lifetime=s(2), fraction=0.0)
        testbed.visit_dept()
        testbed.sim.run_for(s(7))
        assert testbed.mobile.renewals_sent == 0
        assert testbed.home_agent.bindings.get(HOME) is None
        assert testbed.home_agent.bindings_expired == 1

    def test_renewal_survives_home_agent_restart(self):
        from repro.faults import FaultInjector, FaultPlan, HomeAgentRestart

        testbed = self._renewing_testbed(lifetime=s(2), fraction=0.5)
        testbed.visit_dept()
        plan = FaultPlan.of(HomeAgentRestart(at=s(2), down_for=ms(800)))
        FaultInjector.for_testbed(testbed, plan).arm()
        testbed.sim.run_for(ms(2500))
        assert testbed.home_agent.bindings.get(HOME) is None  # state lost
        testbed.sim.run_for(s(8))
        # A later renewal re-registered once the agent came back.
        assert testbed.home_agent.bindings.get(HOME) is not None

    def test_coming_home_cancels_renewal(self):
        testbed = self._renewing_testbed(lifetime=s(2), fraction=0.5)
        testbed.visit_dept()
        testbed.sim.run_for(ms(500))
        testbed.mobile.come_home(gateway=testbed.addresses.router_home)
        renewed_before = testbed.mobile.renewals_sent
        testbed.sim.run_for(s(6))
        assert testbed.mobile.renewals_sent == renewed_before


def test_describe_attachment_changes_with_location(testbed):
    at_home = testbed.mobile.describe_attachment()
    assert "at home" in at_home
    testbed.visit_dept(register=False)
    away = testbed.mobile.describe_attachment()
    assert "away" in away and "care-of" in away
