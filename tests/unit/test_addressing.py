"""Unit tests for IPv4/MAC addressing and subnets."""

import pytest

from repro.net.addressing import (
    BROADCAST_MAC,
    LIMITED_BROADCAST,
    UNSPECIFIED,
    AddressError,
    IPAddress,
    MACAddress,
    MACAllocator,
    Subnet,
    ip,
    subnet,
)


class TestIPAddress:
    def test_parse_and_str_roundtrip(self):
        for text in ("36.135.0.10", "0.0.0.0", "255.255.255.255", "10.1.2.3"):
            assert str(IPAddress.parse(text)) == text

    @pytest.mark.parametrize("bad", ["36.135.0", "1.2.3.4.5", "256.0.0.1",
                                     "a.b.c.d", "1..2.3", ""])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPAddress.parse(bad)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(AddressError):
            IPAddress(1 << 32)
        with pytest.raises(AddressError):
            IPAddress(-1)

    def test_classification_flags(self):
        assert UNSPECIFIED.is_unspecified
        assert LIMITED_BROADCAST.is_limited_broadcast
        assert ip("127.0.0.1").is_loopback
        assert ip("224.0.0.1").is_multicast
        assert not ip("36.8.0.1").is_loopback

    def test_ordering_and_hashing(self):
        a, b = ip("10.0.0.1"), ip("10.0.0.2")
        assert a < b
        assert len({a, b, ip("10.0.0.1")}) == 2

    def test_ip_coercion_helper(self):
        addr = ip("1.2.3.4")
        assert ip(addr) is addr


class TestSubnet:
    def test_parse_and_properties(self):
        net = subnet("36.135.0.0/24")
        assert str(net) == "36.135.0.0/24"
        assert str(net.netmask) == "255.255.255.0"
        assert str(net.broadcast) == "36.135.0.255"

    def test_membership(self):
        net = subnet("36.8.0.0/24")
        assert ip("36.8.0.50") in net
        assert ip("36.9.0.50") not in net
        assert "not an address" not in net

    def test_host_bits_set_rejected(self):
        with pytest.raises(AddressError):
            Subnet(ip("36.8.0.1"), 24)

    def test_bad_prefix_length_rejected(self):
        with pytest.raises(AddressError):
            Subnet(ip("36.8.0.0"), 33)
        with pytest.raises(AddressError):
            subnet("36.8.0.0")

    def test_host_indexing(self):
        net = subnet("10.0.0.0/24")
        assert net.host(1) == ip("10.0.0.1")
        assert net.host(254) == ip("10.0.0.254")
        with pytest.raises(AddressError):
            net.host(255)  # the broadcast address
        with pytest.raises(AddressError):
            net.host(300)

    def test_hosts_iteration_excludes_network_and_broadcast(self):
        net = subnet("10.0.0.0/30")
        hosts = list(net.hosts())
        assert hosts == [ip("10.0.0.1"), ip("10.0.0.2")]

    def test_default_route_prefix(self):
        everything = subnet("0.0.0.0/0")
        assert ip("1.2.3.4") in everything
        assert ip("255.255.255.254") in everything

    def test_prefix_32_contains_only_itself(self):
        one = Subnet(ip("10.0.0.5"), 32)
        assert ip("10.0.0.5") in one
        assert ip("10.0.0.6") not in one


class TestMAC:
    def test_parse_and_str_roundtrip(self):
        text = "02:00:00:00:00:2a"
        assert str(MACAddress.parse(text)) == text

    def test_parse_rejects_malformed(self):
        with pytest.raises(AddressError):
            MACAddress.parse("02:00:00:00:00")
        with pytest.raises(AddressError):
            MACAddress.parse("02:00:00:00:00:zz")

    def test_broadcast_flag(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MACAddress.parse("02:00:00:00:00:01").is_broadcast

    def test_allocator_yields_unique_locally_administered(self):
        alloc = MACAllocator()
        seen = {alloc.allocate() for _ in range(100)}
        assert len(seen) == 100
        for mac in seen:
            assert (mac.value >> 40) == 0x02
