"""Unit tests for aggregate host models and the mergeable histogram."""

import math

import pytest

from repro.core.binding_shard import HashRing
from repro.sim import Simulator, s
from repro.stats import LatencyHistogram, Stats, merge_histograms, merge_stats
from repro.workloads.aggregate import AggregateHostModel, _SplitMix

HORIZON = s(600)


class TestLatencyHistogram:
    def test_quantile_reports_the_bucket_upper_edge(self):
        histogram = LatencyHistogram()
        for value in (1.0, 2.0, 3.0, 100.0):
            histogram.add(value)
        p50 = histogram.quantile(0.5)
        assert p50 == histogram.bucket_edge(histogram.bucket_index(2.0))
        assert histogram.quantile(1.0) >= 100.0

    def test_true_quantile_lies_within_one_bucket(self):
        histogram = LatencyHistogram()
        values = [0.1 * (index + 1) for index in range(1000)]
        for value in values:
            histogram.add(value)
        p99 = histogram.quantile(0.99)
        true_p99 = values[989]
        assert true_p99 <= p99 <= true_p99 * histogram.growth ** 2

    def test_merge_equals_single_histogram(self):
        left, right, combined = (LatencyHistogram() for _ in range(3))
        for index in range(500):
            value = 0.06 * 1.05 ** (index % 80)
            (left if index % 2 else right).add(value)
            combined.add(value)
        merged = merge_histograms([left, right])
        assert merged.to_counts() == combined.to_counts()
        assert merged.quantile(0.99) == combined.quantile(0.99)

    def test_counts_round_trip(self):
        histogram = LatencyHistogram()
        for value in (0.01, 1.0, 5.0, 1e6):
            histogram.add(value)
        rebuilt = LatencyHistogram.from_counts(histogram.to_counts())
        assert rebuilt.to_counts() == histogram.to_counts()
        assert rebuilt.total == 4

    def test_layout_mismatch_refuses_to_merge(self):
        with pytest.raises(ValueError, match="layout"):
            LatencyHistogram().merge(LatencyHistogram(growth=1.5))

    def test_empty_histogram_quantile_is_zero(self):
        assert LatencyHistogram().quantile(0.99) == 0.0
        with pytest.raises(ValueError, match="quantile"):
            LatencyHistogram().quantile(1.5)


class TestSplitMix:
    def test_stream_is_reproducible(self):
        assert [_SplitMix(42).random() for _ in range(5)] == \
               [_SplitMix(42).random() for _ in range(5)]

    def test_values_stay_in_unit_interval(self):
        rng = _SplitMix(7)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_expovariate_mean_is_roughly_right(self):
        rng = _SplitMix(3)
        samples = [rng.expovariate(10.0) for _ in range(5000)]
        assert 9.0 < sum(samples) / len(samples) < 11.0


def build_model(seed=11, n_hosts=200, **kwargs):
    sim = Simulator(seed=seed)
    kwargs.setdefault("horizon", HORIZON)
    return AggregateHostModel(sim, "fleet", n_hosts, **kwargs)


class TestAggregateHostModel:
    def test_same_seed_same_partials(self):
        first = build_model()
        second = build_model()
        first.run()
        second.run()
        assert first.partials() == second.partials()

    def test_different_model_names_draw_independent_streams(self):
        sim = Simulator(seed=11)
        a = AggregateHostModel(sim, "alpha", 100, horizon=HORIZON)
        b = AggregateHostModel(sim, "beta", 100, horizon=HORIZON)
        a.run()
        b.run()
        assert a.partials() != b.partials()

    def test_run_twice_raises(self):
        model = build_model()
        model.run()
        with pytest.raises(RuntimeError, match="already ran"):
            model.run()

    def test_partials_shape_is_mergeable(self):
        model = build_model()
        model.run()
        partial = model.partials()
        assert set(partial) == {"hosts", "registrations", "handoffs",
                                "tunnel_bytes", "saturated_agents",
                                "latency", "latency_hist"}
        stats = AggregateHostModel.stats_from_partial(partial)
        assert isinstance(stats, Stats)
        assert stats.count == partial["latency"]["count"]
        assert stats.count == sum(partial["latency_hist"].values())

    def test_fleet_load_deepens_the_tail(self):
        # Same hosts, but standing in for a fleet 500x larger: utilization
        # at the shared plane rises, so queueing pushes p99 up.
        light = build_model()
        heavy = build_model(fleet_hosts=100_000)
        light.run()
        heavy.run()
        assert heavy.latency_hist.quantile(0.99) > \
            light.latency_hist.quantile(0.99)

    def test_failed_agent_shifts_load_to_survivors(self):
        ring = HashRing(["ha0", "ha1", "ha2", "ha3"])
        healthy = build_model(ring=ring, fleet_hosts=80_000)
        degraded = build_model(ring=ring, fleet_hosts=80_000,
                               failed_agents=frozenset({"ha0"}))
        waits = degraded.mean_wait_by_agent()
        assert "ha0" not in waits
        for agent, wait in healthy.mean_wait_by_agent().items():
            if agent != "ha0":
                assert waits[agent] > wait
        healthy.run()
        degraded.run()
        assert degraded.latency_hist.quantile(0.99) > \
            healthy.latency_hist.quantile(0.99)

    def test_saturation_is_capped_and_counted(self):
        model = build_model(fleet_hosts=10_000_000)
        waits = model.mean_wait_by_agent()
        assert model.saturated_agents == 1  # the single implicit agent
        assert all(math.isfinite(wait) for wait in waits.values())

    def test_zero_hosts_is_a_clean_no_op(self):
        model = build_model(n_hosts=0)
        model.run()
        partial = model.partials()
        assert partial["registrations"] == 0
        assert partial["latency"]["count"] == 0

    def test_constructor_rejects_bad_arguments(self):
        sim = Simulator(seed=1)
        with pytest.raises(ValueError, match="n_hosts"):
            AggregateHostModel(sim, "fleet", -1, horizon=HORIZON)
        with pytest.raises(ValueError, match="horizon"):
            AggregateHostModel(sim, "fleet", 10, horizon=0)

    def test_publish_creates_lazy_counters(self):
        sim = Simulator(seed=11)
        model = AggregateHostModel(sim, "fleet", 50, horizon=HORIZON)
        model.run()
        counter = sim.metrics.counter("aggregate", "registrations",
                                      model="fleet")
        assert counter.value == model.registrations > 0

    def test_partition_offsets_reproduce_per_host_draws(self):
        # Host h's samples depend on (base seed, h) only: splitting the
        # same hosts across models at different offsets merges losslessly.
        whole = build_model(seed=5, n_hosts=60, fleet_hosts=60)
        whole.run()
        parts = []
        for offset in (0, 20, 40):
            part = build_model(seed=5, n_hosts=20, fleet_hosts=60,
                               host_offset=offset)
            part.run()
            parts.append(part)
        merged = merge_stats([part.latency.finalize() for part in parts])
        assert merged.count == whole.latency.finalize().count
        hist = merge_histograms([part.latency_hist for part in parts])
        assert hist.to_counts() == whole.latency_hist.to_counts()
