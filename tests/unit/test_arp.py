"""Unit tests for ARP: resolution, proxy ARP and gratuitous ARP.

Proxy and gratuitous ARP are the home agent's interception mechanism
(Section 3.1), so their exact semantics matter to the reproduction.
"""

from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.sim import ms


def test_ping_populates_arp_caches(lan):
    results = []
    lan.a.icmp.ping(ip("10.0.0.2"), on_reply=results.append,
                    on_timeout=lambda: results.append(None))
    lan.run(1000)
    assert results and results[0] is not None
    iface_a = lan.a.interfaces[1]
    iface_b = lan.b.interfaces[1]
    # Requester learned the responder; responder learned the requester
    # from the broadcast request.
    assert iface_a.arp.lookup(ip("10.0.0.2")) == iface_b.mac
    assert iface_b.arp.lookup(ip("10.0.0.1")) == iface_a.mac


def test_packets_queue_during_resolution_and_flush_in_order(lan):
    got = []
    server = lan.b.udp.open(9).on_datagram(
        lambda d, s, sp, dst: got.append(d.content))
    assert server is not None
    client = lan.a.udp.open(0)
    for index in range(3):
        client.sendto(AppData(index, 10), ip("10.0.0.2"), 9)
    lan.run(1000)
    assert got == [0, 1, 2]


def test_resolution_failure_drops_queued_packets(lan):
    client = lan.a.udp.open(0)
    client.sendto(AppData("x", 10), ip("10.0.0.99"), 9)  # nobody home
    lan.run(10_000)
    failures = lan.sim.trace.select("arp", "failed")
    assert len(failures) == 1
    assert failures[0]["dropped"] == 1
    # Retries happened before giving up.
    requests = lan.sim.trace.select("arp", "request", target="10.0.0.99")
    assert len(requests) == lan.config.arp_max_attempts


def test_cache_entries_expire(lan):
    iface_a = lan.a.interfaces[1]
    results = []
    lan.a.icmp.ping(ip("10.0.0.2"), on_reply=results.append,
                    on_timeout=lambda: None)
    lan.run(1000)
    assert iface_a.arp.lookup(ip("10.0.0.2")) is not None
    lan.sim.run_for(lan.config.arp_timeout + ms(1))
    assert iface_a.arp.lookup(ip("10.0.0.2")) is None


def test_proxy_arp_answers_for_third_party(lan):
    """A host proxying for an absent address answers requests for it."""
    iface_b = lan.b.interfaces[1]
    iface_b.arp.add_proxy(ip("10.0.0.50"))  # 10.0.0.50 does not exist
    client = lan.a.udp.open(0)
    client.sendto(AppData("x", 10), ip("10.0.0.50"), 9)
    lan.run(1000)
    iface_a = lan.a.interfaces[1]
    assert iface_a.arp.lookup(ip("10.0.0.50")) == iface_b.mac


def test_proxy_removal_stops_answering(lan):
    iface_b = lan.b.interfaces[1]
    iface_b.arp.add_proxy(ip("10.0.0.50"))
    iface_b.arp.remove_proxy(ip("10.0.0.50"))
    client = lan.a.udp.open(0)
    client.sendto(AppData("x", 10), ip("10.0.0.50"), 9)
    lan.run(10_000)
    assert lan.a.interfaces[1].arp.lookup(ip("10.0.0.50")) is None


def test_gratuitous_arp_updates_existing_entries_only(lan):
    """Section 3.1: gratuitous ARP voids stale entries; it must not
    create fresh ones."""
    iface_a = lan.a.interfaces[1]
    iface_b = lan.b.interfaces[1]
    third = lan.host("10.0.0.3")
    iface_c = third.interfaces[1]

    # a has a stale entry for 10.0.0.9 pointing at b.
    iface_a.arp.learn(ip("10.0.0.9"), iface_b.mac)
    # c announces itself as 10.0.0.9.
    iface_c.arp.send_gratuitous(ip("10.0.0.9"))
    lan.run(100)
    assert iface_a.arp.lookup(ip("10.0.0.9")) == iface_c.mac
    # b had no entry for 10.0.0.9; the gratuitous ARP must not create one.
    assert iface_b.arp.lookup(ip("10.0.0.9")) is None


def test_flush_clears_cache(lan):
    iface_a = lan.a.interfaces[1]
    iface_a.arp.learn(ip("10.0.0.2"), lan.b.interfaces[1].mac)
    iface_a.arp.flush(ip("10.0.0.2"))
    assert iface_a.arp.lookup(ip("10.0.0.2")) is None
    iface_a.arp.learn(ip("10.0.0.2"), lan.b.interfaces[1].mac)
    iface_a.arp.flush()
    assert iface_a.arp.lookup(ip("10.0.0.2")) is None
