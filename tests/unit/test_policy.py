"""Unit tests for the Mobile Policy Table and routing modes."""

from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.net.addressing import Subnet, ip, subnet


class TestModes:
    def test_mode_properties_match_the_papers_table(self):
        # (mode, uses home source, encapsulates, via HA, preserves mobility)
        expectations = [
            (RoutingMode.TUNNEL, True, True, True, True),
            (RoutingMode.TRIANGLE, True, False, False, True),
            (RoutingMode.ENCAP_DIRECT, True, True, False, True),
            (RoutingMode.LOCAL, False, False, False, False),
        ]
        for mode, home_src, encap, via_ha, mobile in expectations:
            assert mode.uses_home_source is home_src
            assert mode.encapsulates is encap
            assert mode.via_home_agent is via_ha
            assert mode.preserves_mobility is mobile


class TestTable:
    def test_default_mode_applies_without_entries(self):
        table = MobilePolicyTable(default_mode=RoutingMode.TUNNEL)
        assert table.lookup(ip("1.2.3.4")) is RoutingMode.TUNNEL

    def test_host_entry_overrides_default(self):
        table = MobilePolicyTable()
        table.set_policy(ip("36.8.0.20"), RoutingMode.TRIANGLE)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.TRIANGLE
        assert table.lookup(ip("36.8.0.21")) is RoutingMode.TUNNEL

    def test_longest_prefix_wins(self):
        table = MobilePolicyTable()
        table.set_policy(subnet("36.0.0.0/8"), RoutingMode.TRIANGLE)
        table.set_policy(subnet("36.8.0.0/24"), RoutingMode.LOCAL)
        table.set_policy(ip("36.8.0.20"), RoutingMode.ENCAP_DIRECT)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.ENCAP_DIRECT
        assert table.lookup(ip("36.8.0.99")) is RoutingMode.LOCAL
        assert table.lookup(ip("36.9.0.1")) is RoutingMode.TRIANGLE

    def test_set_policy_replaces_same_prefix(self):
        table = MobilePolicyTable()
        table.set_policy(ip("36.8.0.20"), RoutingMode.TRIANGLE)
        table.set_policy(ip("36.8.0.20"), RoutingMode.LOCAL)
        assert len(table) == 1
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL

    def test_clear_policy(self):
        table = MobilePolicyTable()
        table.set_policy(ip("36.8.0.20"), RoutingMode.TRIANGLE)
        table.clear_policy(ip("36.8.0.20"))
        assert table.lookup(ip("36.8.0.20")) is table.default_mode


class TestProbeFallback:
    def test_failed_probe_caches_tunnel(self):
        table = MobilePolicyTable(default_mode=RoutingMode.TRIANGLE)
        table.record_probe_result(ip("36.8.0.20"), reachable=False)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.TUNNEL
        entry = table.lookup_entry(ip("36.8.0.20"))
        assert entry is not None and entry.origin == "probe"

    def test_successful_probe_clears_dynamic_fallback(self):
        table = MobilePolicyTable(default_mode=RoutingMode.TRIANGLE)
        table.record_probe_result(ip("36.8.0.20"), reachable=False)
        table.record_probe_result(ip("36.8.0.20"), reachable=True)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.TRIANGLE

    def test_successful_probe_keeps_static_entries(self):
        table = MobilePolicyTable(default_mode=RoutingMode.TRIANGLE)
        table.set_policy(ip("36.8.0.20"), RoutingMode.TUNNEL)  # operator's
        table.record_probe_result(ip("36.8.0.20"), reachable=True)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.TUNNEL

    def test_repeated_failures_are_idempotent(self):
        table = MobilePolicyTable(default_mode=RoutingMode.TRIANGLE)
        for _ in range(3):
            table.record_probe_result(ip("36.8.0.20"), reachable=False)
        assert len(table) == 1


def test_describe_lists_entries():
    table = MobilePolicyTable(default_mode=RoutingMode.TUNNEL)
    table.set_policy(subnet("36.8.0.0/24"), RoutingMode.TRIANGLE)
    text = table.describe()
    assert "default: tunnel" in text
    assert "36.8.0.0/24 -> triangle" in text
