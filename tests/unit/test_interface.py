"""Unit tests for interface state machines and addressing."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import MACAllocator, ip, subnet
from repro.net.host import Host
from repro.net.interface import (
    EthernetInterface,
    InterfaceError,
    InterfaceState,
    LoopbackInterface,
)
from repro.net.link import EthernetSegment
from repro.net.packet import AppData
from repro.sim import Simulator, ms


@pytest.fixture
def iface(sim):
    segment = EthernetSegment(sim, "seg", DEFAULT_CONFIG.ethernet)
    host = Host(sim, "h", DEFAULT_CONFIG)
    interface = EthernetInterface(sim, "eth", MACAllocator().allocate(),
                                  DEFAULT_CONFIG)
    host.add_interface(interface)
    interface.attach(segment)
    return interface


class TestStateMachine:
    def test_bring_up_takes_device_time(self, sim, iface):
        done = []
        iface.bring_up(on_done=lambda: done.append(sim.now))
        assert iface.state == InterfaceState.STARTING
        sim.run()
        assert iface.state == InterfaceState.UP
        base = DEFAULT_CONFIG.ethernet_device.up_delay
        assert base * 0.9 <= done[0] <= base * 1.1

    def test_bring_up_when_already_up_is_instant(self, sim, iface):
        iface.state = InterfaceState.UP
        done = []
        iface.bring_up(on_done=lambda: done.append(sim.now))
        assert done == [0]

    def test_double_bring_up_rejected(self, sim, iface):
        iface.bring_up()
        with pytest.raises(InterfaceError):
            iface.bring_up()

    def test_bring_down_takes_device_time(self, sim, iface):
        iface.state = InterfaceState.UP
        done = []
        iface.bring_down(on_done=lambda: done.append(sim.now))
        assert iface.state == InterfaceState.STOPPING
        sim.run()
        assert iface.state == InterfaceState.DOWN
        base = DEFAULT_CONFIG.ethernet_device.down_delay
        assert base * 0.9 <= done[0] <= base * 1.1

    def test_configure_delay_matches_figure7_stage(self, sim, iface):
        iface.state = InterfaceState.UP
        done = []
        iface.configure(ip("10.0.0.5"), subnet("10.0.0.0/24"),
                        on_done=lambda: done.append(sim.now))
        assert iface.address is None  # not live until the delay elapses
        sim.run()
        assert iface.address == ip("10.0.0.5")
        base = DEFAULT_CONFIG.ethernet_device.configure_delay
        assert base * 0.9 <= done[0] <= base * 1.1


class TestAddresses:
    def test_aliases_and_primary(self, iface):
        iface.add_address(ip("10.0.0.5"))
        iface.add_address(ip("10.0.0.6"))
        assert iface.address == ip("10.0.0.5")
        assert iface.owns_address(ip("10.0.0.6"))
        iface.add_address(ip("10.0.0.6"), make_primary=True)
        assert iface.address == ip("10.0.0.6")
        assert len(iface.addresses) == 2  # promotion, not duplication

    def test_remove_address(self, iface):
        iface.add_address(ip("10.0.0.5"))
        iface.remove_address(ip("10.0.0.5"))
        assert not iface.owns_address(ip("10.0.0.5"))
        iface.remove_address(ip("10.0.0.5"))  # idempotent

    def test_new_primary_via_make_primary_insert(self, iface):
        iface.add_address(ip("10.0.0.5"))
        iface.add_address(ip("10.0.0.7"), make_primary=True)
        assert iface.address == ip("10.0.0.7")


class TestDrops:
    def test_send_while_down_counts(self, sim, iface):
        from tests.unit.test_packet import make_packet

        iface.send_ip(make_packet(), ip("10.0.0.2"))
        assert iface.dropped_down == 1
        assert iface.tx_packets == 0

    def test_receive_while_down_counts(self, sim, iface):
        from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from tests.unit.test_packet import make_packet

        frame = EthernetFrame(src=iface.mac, dst=iface.mac,
                              ethertype=ETHERTYPE_IPV4, payload=make_packet())
        iface.deliver_frame(frame)
        assert iface.dropped_down == 1


class TestDetach:
    def test_detach_and_reattach(self, sim, iface):
        segment2 = EthernetSegment(sim, "seg2", DEFAULT_CONFIG.ethernet)
        iface.detach()
        assert iface.segment is None
        iface.attach(segment2)
        assert iface.segment is segment2

    def test_double_attach_rejected(self, sim, iface):
        with pytest.raises(InterfaceError):
            iface.attach(EthernetSegment(sim, "seg2", DEFAULT_CONFIG.ethernet))


class TestLoopback:
    def test_born_up_and_delivers_locally(self, sim):
        host = Host(sim, "h", DEFAULT_CONFIG)
        assert host.loopback.state == InterfaceState.UP
        got = []
        server = host.udp.open(9).on_datagram(
            lambda d, s, sp, dst: got.append(d.content))
        assert server is not None
        client = host.udp.open(0)
        client.sendto(AppData("hi", 2), ip("127.0.0.1"), 9)
        sim.run_for(ms(10))
        assert got == ["hi"]


class TestRadioSerial:
    def test_radio_send_pays_serial_and_air_time(self, sim):
        from repro.net.interface import RadioInterface
        from repro.net.link import RadioChannel

        config = DEFAULT_CONFIG
        channel = RadioChannel(sim, "air", config.radio)
        host_a = Host(sim, "a", config)
        host_b = Host(sim, "b", config)
        radio_a = RadioInterface(sim, "r.a", config)
        radio_b = RadioInterface(sim, "r.b", config)
        host_a.add_interface(radio_a)
        host_b.add_interface(radio_b)
        radio_a.attach(channel)
        radio_b.attach(channel)
        net = subnet("36.134.0.0/24")
        host_a.configure_interface(radio_a, ip("36.134.0.1"), net)
        host_b.configure_interface(radio_b, ip("36.134.0.2"), net)

        results = []
        host_a.icmp.ping(ip("36.134.0.2"), on_reply=results.append,
                         on_timeout=lambda: results.append(None))
        sim.run_for(ms(3000))
        assert results and results[0] is not None
        # RTT must include two air latencies (78 ms each) plus
        # serialization: comfortably over 160 ms, under 260 ms.
        assert ms(160) < results[0] < ms(260)
