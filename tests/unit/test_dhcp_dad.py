"""Duplicate-address detection: the client side of Section 5.1's hazard."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import ip
from repro.net.dhcp import DHCPClient, DHCPClientState, DHCPServer
from repro.net.host import Host
from repro.net.interface import EthernetInterface, InterfaceState
from repro.sim import ms, s


@pytest.fixture
def dad_lan(lan):
    server = DHCPServer(lan.b, lan.b.interfaces[1], lan.net,
                        first_host=100, last_host=103,
                        gateway=ip("10.0.0.1"))
    return lan, server


def make_client(lan, name="mobile", detect=True):
    host = Host(lan.sim, name, DEFAULT_CONFIG)
    iface = EthernetInterface(lan.sim, f"eth.{name}", lan.macs.allocate(),
                              DEFAULT_CONFIG)
    host.add_interface(iface)
    iface.attach(lan.segment)
    iface.state = InterfaceState.UP
    return DHCPClient(host, iface, client_id=name,
                      detect_duplicates=detect), host, iface


def squat(lan, address):
    """Park a rogue host on *address* without the server knowing."""
    rogue = lan.host(address, name="squatter")
    return rogue


def test_probe_passes_when_address_is_free(dad_lan):
    lan, _server = dad_lan
    client, _host, _iface = make_client(lan)
    leases = []
    client.acquire(on_bound=leases.append)
    lan.sim.run_for(s(3))
    assert leases and leases[0].address == ip("10.0.0.100")
    assert client.declines_sent == 0
    assert client.state == DHCPClientState.BOUND
    # The probe really went out.
    assert lan.sim.trace.select("arp", "probe", address="10.0.0.100")


def test_squatted_address_is_declined_and_another_acquired(dad_lan):
    lan, server = dad_lan
    squat(lan, "10.0.0.100")  # first pool address is silently in use
    client, _host, _iface = make_client(lan)
    leases = []
    client.acquire(on_bound=leases.append)
    lan.sim.run_for(s(6))
    assert client.declines_sent == 1
    assert leases and leases[0].address == ip("10.0.0.101")
    # The server quarantined the bad address.
    quarantined = server._leases.get(ip("10.0.0.100"))
    assert quarantined is not None and quarantined.client_id == "<declined>"


def test_quarantined_address_not_reissued(dad_lan):
    lan, server = dad_lan
    squat(lan, "10.0.0.100")
    first, _h1, _i1 = make_client(lan, "one")
    first.acquire(on_bound=lambda lease: None)
    lan.sim.run_for(s(6))
    second, _h2, _i2 = make_client(lan, "two")
    leases = []
    second.acquire(on_bound=leases.append)
    lan.sim.run_for(s(6))
    assert leases
    assert leases[0].address not in (ip("10.0.0.100"), first.lease.address)


def test_detection_can_be_disabled(dad_lan):
    lan, _server = dad_lan
    squat(lan, "10.0.0.100")
    client, _host, _iface = make_client(lan, detect=False)
    leases = []
    client.acquire(on_bound=leases.append)
    lan.sim.run_for(s(3))
    # Without DAD the client blindly takes the conflicting address —
    # exactly the accidental-eavesdropping hazard the paper describes.
    assert leases and leases[0].address == ip("10.0.0.100")
    assert client.declines_sent == 0
