"""Unit tests for time units, the trace, FIFO delays and jitter helpers."""

import pytest

from repro.sim import Simulator, ms, ns_to_ms, ns_to_s, s, us
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import bernoulli, jittered
from repro.sim.units import MBPS, transmission_delay


class TestUnits:
    def test_conversions_roundtrip(self):
        assert ms(1) == us(1000)
        assert s(1) == ms(1000)
        assert ns_to_ms(ms(7.39)) == pytest.approx(7.39)
        assert ns_to_s(s(2)) == pytest.approx(2.0)

    def test_fractional_values_round(self):
        assert ms(0.5) == us(500)
        assert us(0.1) == 100

    def test_transmission_delay_basic(self):
        # 1250 bytes at 10 Mbit/s = 1 ms.
        assert transmission_delay(1250, 10 * MBPS) == ms(1)

    def test_transmission_delay_zero_rate_is_free(self):
        assert transmission_delay(10_000, 0) == 0


class TestTrace:
    def test_emit_and_select(self):
        sim = Simulator()
        sim.trace.emit("cat", "ev", value=1)
        sim.call_at(ms(5), lambda: sim.trace.emit("cat", "ev", value=2))
        sim.run()
        records = sim.trace.select("cat", "ev")
        assert [r["value"] for r in records] == [1, 2]
        assert records[1].time == ms(5)

    def test_select_by_field_and_since(self):
        sim = Simulator()
        sim.trace.emit("cat", "ev", host="a")
        sim.call_at(ms(10), lambda: sim.trace.emit("cat", "ev", host="b"))
        sim.run()
        assert len(sim.trace.select("cat", "ev", host="a")) == 1
        assert len(sim.trace.select("cat", "ev", since=ms(5))) == 1
        # A missing field never matches.
        assert sim.trace.select("cat", "ev", missing="x") == []

    def test_last_and_clear(self):
        sim = Simulator()
        sim.trace.emit("cat", "ev", n=1)
        sim.trace.emit("cat", "ev", n=2)
        assert sim.trace.last("cat", "ev")["n"] == 2
        assert sim.trace.last("cat", "nothing") is None
        sim.trace.clear()
        assert len(sim.trace) == 0

    def test_disabled_trace_records_nothing(self):
        sim = Simulator()
        sim.trace.enabled = False
        sim.trace.emit("cat", "ev")
        assert len(sim.trace) == 0


class TestFifoDelay:
    def test_preserves_submission_order_despite_jitter(self):
        sim = Simulator()
        fifo = FifoDelay(sim)
        order = []
        # Second item gets a much smaller delay but must not overtake.
        fifo.schedule(ms(10), lambda: order.append("first"))
        fifo.schedule(ms(1), lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_delays_accumulate(self):
        sim = Simulator()
        fifo = FifoDelay(sim)
        times = []
        fifo.schedule(ms(10), lambda: times.append(sim.now))
        fifo.schedule(ms(10), lambda: times.append(sim.now))
        sim.run()
        assert times == [ms(10), ms(20)]

    def test_idle_gap_does_not_accumulate(self):
        sim = Simulator()
        fifo = FifoDelay(sim)
        times = []
        fifo.schedule(ms(5), lambda: times.append(sim.now))
        sim.run()
        sim.call_at(ms(100), lambda: fifo.schedule(ms(5),
                                                   lambda: times.append(sim.now)))
        sim.run()
        assert times == [ms(5), ms(105)]

    def test_backlog_reporting(self):
        sim = Simulator()
        fifo = FifoDelay(sim)
        assert fifo.backlog == 0
        fifo.schedule(ms(10), lambda: None)
        assert fifo.backlog == ms(10)


class TestRandomness:
    def test_jittered_within_bounds(self):
        sim = Simulator(seed=9)
        rng = sim.rng("t")
        base = us(1000)
        for _ in range(200):
            value = jittered(rng, base, 0.06)
            assert us(940) <= value <= us(1060)

    def test_zero_jitter_returns_base_without_consuming_rng(self):
        sim = Simulator(seed=9)
        rng = sim.rng("t")
        before = rng.getstate()
        assert jittered(rng, us(50), 0.0) == us(50)
        assert rng.getstate() == before

    def test_bernoulli_edges(self):
        sim = Simulator(seed=9)
        rng = sim.rng("t")
        assert bernoulli(rng, 0.0) is False
        assert bernoulli(rng, 1.0) is True

    def test_bernoulli_rate_roughly_matches(self):
        sim = Simulator(seed=9)
        rng = sim.rng("t")
        hits = sum(bernoulli(rng, 0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35
