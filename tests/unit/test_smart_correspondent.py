"""Unit tests for the smart-correspondent reverse-path optimization."""

import pytest

from repro.core.auth import RegistrationAuthenticator, AuthenticatedRegistrationSigner
from repro.core.smart_correspondent import SmartCorrespondent
from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


@pytest.fixture
def smart_testbed():
    sim = Simulator(seed=91)
    testbed = build_testbed(sim, with_dhcp=False, separate_home_agent=True)
    smart = SmartCorrespondent(testbed.correspondent)
    testbed.mobile.add_smart_correspondent(testbed.addresses.ch_dept)
    return testbed, smart


def test_binding_update_reaches_the_correspondent(smart_testbed):
    testbed, smart = smart_testbed
    testbed.visit_dept()
    testbed.sim.run_for(s(2))
    assert smart.cached_care_of(HOME) == testbed.addresses.mh_dept_care_of
    assert smart.updates_accepted >= 1


def test_traffic_is_tunneled_directly_to_the_care_of(smart_testbed):
    testbed, smart = smart_testbed
    testbed.visit_dept()
    testbed.sim.run_for(s(2))
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
    stream.start()
    testbed.sim.run_for(s(2))
    stream.stop()
    testbed.sim.run_for(s(1))
    assert stream.received == stream.sent
    assert smart.packets_optimized >= stream.sent
    # The home agent saw none of it.
    assert testbed.home_agent.vif.packets_encapsulated == 0


def test_reverse_path_skips_home_agent_detour(smart_testbed):
    """With a separate home agent, the optimized path is measurably
    shorter than the default triangle (which detours via the HA host)."""
    testbed, smart = smart_testbed

    def mean_rtt():
        UdpEchoResponder(testbed.mobile)
        stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(100))
        stream.start()
        testbed.sim.run_for(s(2))
        stream.stop()
        testbed.sim.run_for(s(1))
        rtts = stream.rtts()
        stream.close()
        return sum(rtts) / len(rtts)

    testbed.visit_dept()
    testbed.sim.run_for(s(2))
    optimized = mean_rtt()

    # Same topology without the smart CH.
    plain_sim = Simulator(seed=91)
    plain = build_testbed(plain_sim, with_dhcp=False,
                          separate_home_agent=True)
    plain.visit_dept()
    plain_sim.run_for(s(2))
    UdpEchoResponder(plain.mobile)
    stream = UdpEchoStream(plain.correspondent, HOME, interval=ms(100))
    stream.start()
    plain_sim.run_for(s(2))
    stream.stop()
    plain_sim.run_for(s(1))
    baseline = sum(stream.rtts()) / len(stream.rtts())

    assert optimized < baseline * 0.8


def test_deregistration_invalidates_the_cache(smart_testbed):
    testbed, smart = smart_testbed
    testbed.visit_dept()
    testbed.sim.run_for(s(2))
    assert smart.cached_care_of(HOME) is not None
    testbed.move_mh_cable(testbed.home_segment)
    testbed.mobile.stop_visiting(testbed.mh_eth)
    testbed.mobile.come_home(testbed.mh_eth,
                             gateway=testbed.addresses.router_home)
    testbed.sim.run_for(s(2))
    assert smart.cached_care_of(HOME) is None
    # Traffic still works (basic protocol — no, direct: MH is home).
    results = []
    testbed.correspondent.icmp.ping(HOME, on_reply=results.append,
                                    on_timeout=lambda: results.append(None))
    testbed.sim.run_for(s(2))
    assert results and results[0] is not None


def test_cache_expires_with_binding_lifetime(smart_testbed):
    testbed, smart = smart_testbed
    testbed.visit_dept(register=False)
    testbed.mobile.register_current(lifetime=s(3))
    testbed.sim.run_for(s(1))
    assert smart.cached_care_of(HOME) is not None
    testbed.sim.run_for(s(4))
    assert smart.cached_care_of(HOME) is None


def test_unauthenticated_updates_rejected_when_keys_required(smart_testbed):
    testbed, smart = smart_testbed
    key = b"ch secret"
    verifier = RegistrationAuthenticator()
    verifier.provision(HOME, key)
    smart.authenticator = verifier
    testbed.visit_dept()  # MH has no signer: update must be rejected
    testbed.sim.run_for(s(2))
    assert smart.cached_care_of(HOME) is None
    assert smart.updates_rejected >= 1
    # With a signer installed, the next update is accepted.
    AuthenticatedRegistrationSigner(key).install(testbed.mobile.registration)
    testbed.mobile.register_current()
    testbed.sim.run_for(s(2))
    assert smart.cached_care_of(HOME) == testbed.addresses.mh_dept_care_of


def test_second_route_hook_rejected(smart_testbed):
    testbed, _smart = smart_testbed
    with pytest.raises(ValueError):
        SmartCorrespondent(testbed.correspondent)
