"""Unit tests for lazy trace recording (category gating)."""

from repro.sim import Simulator, VERBOSE_CATEGORIES
from repro.sim.trace import TraceRecord


def test_ordinary_categories_record_by_default():
    sim = Simulator()
    assert sim.trace.wants("ip")
    assert sim.trace.wants("registration")
    sim.trace.emit("ip", "send", host="a")
    assert len(sim.trace) == 1


def test_verbose_categories_are_off_by_default():
    sim = Simulator()
    for category in VERBOSE_CATEGORIES:
        assert not sim.trace.wants(category)
        sim.trace.emit(category, "noise")
    assert len(sim.trace) == 0


def test_enable_opts_verbose_category_back_in():
    sim = Simulator()
    sim.trace.enable("policy.cache")
    assert sim.trace.wants("policy.cache")
    sim.trace.emit("policy.cache", "hit", dst="36.8.0.20")
    assert sim.trace.select("policy.cache", "hit")[0]["dst"] == "36.8.0.20"


def test_disable_suppresses_any_category():
    sim = Simulator()
    sim.trace.disable("ip")
    assert not sim.trace.wants("ip")
    sim.trace.emit("ip", "send")
    assert len(sim.trace) == 0
    sim.trace.enable("ip")
    sim.trace.emit("ip", "send")
    assert len(sim.trace) == 1


def test_global_enabled_flag_overrides_everything():
    sim = Simulator()
    sim.trace.enabled = False
    assert not sim.trace.wants("ip")
    sim.trace.emit("ip", "send")
    assert len(sim.trace) == 0


def test_gated_datapath_emits_nothing_when_disabled(testbed):
    """The IP datapath goes quiet (and pays nothing) when 'ip' is off."""
    trace = testbed.sim.trace
    trace.disable("ip")
    testbed.settle(duration=1_000_000_000)
    assert trace.select("ip") == []
    # Other categories are untouched by disabling "ip".
    assert trace.wants("handoff")


def test_trace_record_mapping_interface():
    record = TraceRecord(time=5, category="ip", event="send",
                         fields={"host": "mh"})
    assert record["host"] == "mh"
    assert record.get("absent", 42) == 42
    assert record == TraceRecord(5, "ip", "send", {"host": "mh"})
    assert record != TraceRecord(6, "ip", "send", {"host": "mh"})
