"""Unit tests for the Host node wiring."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import MACAllocator, ip, subnet
from repro.net.host import Host
from repro.net.interface import EthernetInterface, InterfaceState


def test_host_is_born_with_full_stack(sim):
    host = Host(sim, "h", DEFAULT_CONFIG)
    assert host.ip is not None
    assert host.icmp is not None and host.udp is not None
    assert host.tcp is not None
    assert host.loopback in host.interfaces
    assert not host.ip.forwarding


def test_interface_lookup_by_name(sim, lan):
    iface = lan.a.interface("eth.a")
    assert iface.address == ip("10.0.0.1")
    with pytest.raises(KeyError):
        lan.a.interface("eth9")


def test_interface_cannot_belong_to_two_hosts(sim, lan):
    iface = lan.a.interfaces[1]
    with pytest.raises(ValueError):
        lan.b.add_interface(iface)


def test_add_interface_is_idempotent(sim, lan):
    iface = lan.a.interfaces[1]
    count = len(lan.a.interfaces)
    lan.a.add_interface(iface)
    assert len(lan.a.interfaces) == count


def test_configure_interface_is_immediate(sim):
    host = Host(sim, "h", DEFAULT_CONFIG)
    iface = EthernetInterface(sim, "eth", MACAllocator().allocate(),
                              DEFAULT_CONFIG)
    host.add_interface(iface)
    host.configure_interface(iface, ip("10.0.0.5"), subnet("10.0.0.0/24"))
    # No simulation time needed: it's a topology-construction helper.
    assert iface.address == ip("10.0.0.5")
    assert iface.state == InterfaceState.UP
    assert host.ip.routes.lookup(ip("10.0.0.9")) is not None


def test_configure_interface_without_route(sim):
    host = Host(sim, "h", DEFAULT_CONFIG)
    iface = EthernetInterface(sim, "eth", MACAllocator().allocate(),
                              DEFAULT_CONFIG)
    host.add_interface(iface)
    host.configure_interface(iface, ip("10.0.0.5"), subnet("10.0.0.0/24"),
                             connected_route=False)
    assert host.ip.routes.lookup(ip("10.0.0.9")) is None


def test_add_default_route_finds_interface_by_gateway(sim, lan):
    entry = lan.a.add_default_route(ip("10.0.0.254"))
    assert entry.interface is lan.a.interfaces[1]
    assert entry.gateway == ip("10.0.0.254")


def test_add_default_route_rejects_off_subnet_gateway(sim, lan):
    with pytest.raises(KeyError):
        lan.a.add_default_route(ip("99.0.0.1"))


def test_interface_for_subnet_of(sim, lan):
    assert lan.a.interface_for_subnet_of(ip("10.0.0.77")) is lan.a.interfaces[1]
    with pytest.raises(KeyError):
        lan.a.interface_for_subnet_of(ip("99.0.0.1"))


def test_primary_address_skips_loopback(sim, lan):
    assert lan.a.primary_address() == ip("10.0.0.1")
    bare = Host(sim, "bare", DEFAULT_CONFIG)
    assert bare.primary_address() is None
