"""Unit tests for SACK: scoreboard, reassembly, and wire behaviour."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.net.sack import MAX_SACK_BLOCKS, ReassemblyBuffer, SackScoreboard
from repro.net.tcp import DEFAULT_MSS, DEFAULT_WINDOW_BYTES, TCPSegment
from repro.sim import Simulator
from tests.conftest import Lan

MSS = DEFAULT_MSS


class TestScoreboard:
    def test_record_merges_overlapping_blocks(self):
        board = SackScoreboard()
        board.record(((100, 200),), snd_una=0)
        board.record(((150, 300), (400, 500)), snd_una=0)
        assert board.blocks == ((100, 300), (400, 500))
        assert board.sacked_bytes() == 300

    def test_adjacent_blocks_coalesce(self):
        board = SackScoreboard()
        board.record(((100, 200),), snd_una=0)
        board.record(((200, 300),), snd_una=0)
        assert board.blocks == ((100, 300),)

    def test_stale_and_malformed_blocks_ignored(self):
        board = SackScoreboard()
        newly = board.record(((0, 50), (80, 80), (90, 60)), snd_una=60)
        assert newly == 0
        assert board.blocks == ()

    def test_record_returns_only_newly_sacked_bytes(self):
        board = SackScoreboard()
        assert board.record(((100, 200),), snd_una=0) == 100
        assert board.record(((100, 200),), snd_una=0) == 0
        assert board.record(((150, 250),), snd_una=0) == 50

    def test_advance_drops_cumulatively_acked_ranges(self):
        board = SackScoreboard()
        board.record(((100, 200), (300, 400)), snd_una=0)
        board.advance(350)
        assert board.blocks == ((350, 400),)

    def test_reneging_clear_forgets_everything(self):
        # RFC 2018 par. 8: SACK is advisory; after an RTO the sender must
        # assume the receiver reneged and retransmit from snd_una.
        board = SackScoreboard()
        board.record(((100, 400),), snd_una=0)
        board.clear()
        assert not board
        assert board.first_hole(0, 500) == (0, 500)

    def test_is_sacked_requires_full_containment(self):
        board = SackScoreboard()
        board.record(((100, 200),), snd_una=0)
        assert board.is_sacked(100, 200)
        assert board.is_sacked(120, 180)
        assert not board.is_sacked(50, 150)
        assert not board.is_sacked(150, 250)

    def test_first_hole_walks_front_to_back(self):
        board = SackScoreboard()
        board.record(((200, 300), (400, 500)), snd_una=100)
        assert board.first_hole(100, 600) == (100, 200)
        board.record(((100, 200),), snd_una=100)
        assert board.first_hole(100, 600) == (300, 400)

    def test_first_hole_none_when_everything_sacked(self):
        board = SackScoreboard()
        board.record(((100, 600),), snd_una=100)
        assert board.first_hole(100, 600) is None


class TestReassemblyBuffer:
    def seg(self, seq, size):
        return TCPSegment(src_port=1, dst_port=2, seq=seq, ack=0,
                          flags=frozenset({"ACK"}),
                          payload=AppData("x", size))

    def test_first_copy_wins(self):
        buf = ReassemblyBuffer()
        first = self.seg(100, 50)
        buf.store(100, first)
        buf.store(100, self.seg(100, 99))
        assert buf.pop(100) is first

    def test_drop_below_discards_overtaken_segments(self):
        buf = ReassemblyBuffer()
        buf.store(100, self.seg(100, 50))
        buf.store(300, self.seg(300, 50))
        buf.drop_below(200)
        assert buf.pop(100) is None
        assert buf.pop(300) is not None

    def test_sack_blocks_merge_and_cap(self):
        buf = ReassemblyBuffer()
        for seq in (100, 150, 300, 500, 700, 900):
            buf.store(seq, self.seg(seq, 50))
        blocks = buf.sack_blocks(lambda s: s.payload.size_bytes)
        assert blocks == ((100, 200), (300, 350), (500, 550))
        assert len(blocks) == MAX_SACK_BLOCKS  # lowest-first, capped

    def test_empty_buffer_advertises_nothing(self):
        assert ReassemblyBuffer().sack_blocks(lambda s: 0) == ()


def sack_lan(seed=7, cc="reno"):
    return Lan(Simulator(seed=seed), config=DEFAULT_CONFIG.with_overrides(
        tcp_congestion_control=cc, tcp_sack=True))


def open_sack_session(lan, got):
    lan.b.tcp.listen(23, lambda conn: setattr(
        conn, "on_data", lambda d: got.append(d.content)))
    client = lan.a.tcp.connect(ip("10.0.0.2"), 23,
                               initial_cwnd=DEFAULT_WINDOW_BYTES)
    lan.run(500)
    return client


def drop_data_segments(lan, indices):
    """Drop the Nth, Mth, ... data segments arriving at host b."""
    original = lan.b.tcp._dispatch
    state = {"seen": 0, "dropped": []}

    def lossy_dispatch(packet, segment):
        if segment.payload.size_bytes > 0:
            index = state["seen"]
            state["seen"] += 1
            if index in indices:
                state["dropped"].append(segment.seq)
                return
        original(packet, segment)

    lan.b.tcp._dispatch = lossy_dispatch
    return state


class TestSackWireBehaviour:
    def test_acks_carry_sack_blocks_for_out_of_order_data(self):
        lan = sack_lan()
        got = []
        client = open_sack_session(lan, got)
        drop_data_segments(lan, {0})
        seen_sacks = []
        original = lan.a.tcp._dispatch

        def spying_dispatch(packet, segment):
            if segment.sack:
                seen_sacks.append(segment.sack)
            original(packet, segment)

        lan.a.tcp._dispatch = spying_dispatch
        for i in range(5):
            client.send(AppData(i, MSS))
        lan.run(4000)
        assert got == list(range(5))
        assert seen_sacks, "dup ACKs advertised no SACK blocks"

    def test_sacked_segments_are_never_retransmitted(self):
        # One hole, four SACKed segments behind it: exactly one
        # retransmission repairs the session.
        lan = sack_lan()
        got = []
        client = open_sack_session(lan, got)
        state = drop_data_segments(lan, {0})
        for i in range(5):
            client.send(AppData(i, MSS))
        lan.run(4000)
        assert got == list(range(5))
        assert client.segments_retransmitted == 1
        assert state["dropped"] == [client.iss + 1]

    def test_partial_ack_during_fast_recovery_repairs_next_hole(self):
        # Two holes: the fast retransmit repairs the first; the partial
        # ACK that follows repairs the second without waiting for three
        # more dup ACKs (RFC 6582 via the scoreboard).
        lan = sack_lan(seed=11)
        got = []
        client = open_sack_session(lan, got)
        drop_data_segments(lan, {0, 2})
        for i in range(6):
            client.send(AppData(i, MSS))
        lan.run(5000)
        assert got == list(range(6))
        assert client.fast_retransmits == 1  # one recovery episode
        assert client.segments_retransmitted == 2  # one per hole
        rtos = lan.sim.metrics.counter("tcp", "rto_expirations",
                                       host="a").value
        assert rtos == 0

    def test_rto_clears_scoreboard_for_reneging_safety(self):
        lan = sack_lan(seed=13)
        got = []
        client = open_sack_session(lan, got)
        # Black-hole everything so only the RTO path can fire.
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        client.send(AppData("hole", MSS))
        client._scoreboard.record(((client.snd_max + MSS,
                                    client.snd_max + 2 * MSS),),
                                  client.snd_una)
        lan.run(3000)
        assert not client._scoreboard  # cleared by the timeout
        iface_b.state = iface_b.state.__class__.UP
        lan.run(8000)
        assert got == ["hole"]

    def test_sack_metrics_appear_only_when_enabled(self):
        lossy = sack_lan(seed=17)
        got = []
        client = open_sack_session(lossy, got)
        drop_data_segments(lossy, {0})
        for i in range(5):
            client.send(AppData(i, MSS))
        lossy.run(4000)
        keys = lossy.sim.metrics.snapshot()
        assert any("sack_blocks_received" in key for key in keys)
        # A default (no-SACK) run must not grow any sack keys.
        plain = Lan(Simulator(seed=17))
        plain_got = []
        plain.b.tcp.listen(23, lambda conn: setattr(
            conn, "on_data", lambda d: plain_got.append(d.content)))
        conn = plain.a.tcp.connect(ip("10.0.0.2"), 23)
        plain.run(500)
        conn.send(AppData(0, MSS))
        plain.run(1000)
        assert not any("sack" in key for key in plain.sim.metrics.snapshot())


class TestSegmentWireFormat:
    def test_sack_option_costs_bytes_on_the_wire(self):
        plain = TCPSegment(src_port=1, dst_port=2, seq=0, ack=0,
                           flags=frozenset({"ACK"}))
        sacked = TCPSegment(src_port=1, dst_port=2, seq=0, ack=0,
                            flags=frozenset({"ACK"}),
                            sack=((100, 200), (300, 400)))
        assert sacked.size_bytes == plain.size_bytes + 2 + 8 * 2

    def test_default_segment_has_no_sack(self):
        segment = TCPSegment(src_port=1, dst_port=2, seq=0, ack=0,
                             flags=frozenset({"ACK"}))
        assert segment.sack == ()
        assert "sack" not in segment.describe()
