"""Unit tests for the binding table and the registration protocol."""

import pytest

from repro.core.bindings import MobilityBindingTable
from repro.core.registration import (
    CODE_ACCEPTED,
    REGISTRATION_PORT,
    RegistrationClient,
    RegistrationReply,
    RegistrationRequest,
)
from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.sim import Simulator, ms, s

HOME = ip("36.135.0.10")
CARE_OF = ip("36.8.0.50")
AGENT = ip("36.135.0.1")


class TestBindingTable:
    def test_register_and_get(self, sim):
        table = MobilityBindingTable(sim)
        binding = table.register(HOME, CARE_OF, lifetime=s(60))
        assert table.get(HOME) is binding
        assert HOME in table
        assert len(table) == 1

    def test_reregistration_replaces(self, sim):
        table = MobilityBindingTable(sim)
        table.register(HOME, CARE_OF, lifetime=s(60))
        table.register(HOME, ip("36.134.0.77"), lifetime=s(60))
        assert table.get(HOME).care_of_address == ip("36.134.0.77")
        assert len(table) == 1

    def test_deregister_removes(self, sim):
        table = MobilityBindingTable(sim)
        table.register(HOME, CARE_OF, lifetime=s(60))
        removed = table.deregister(HOME)
        assert removed is not None
        assert table.get(HOME) is None

    def test_expiry_fires_callback(self, sim):
        expired = []
        table = MobilityBindingTable(sim, on_expire=expired.append)
        table.register(HOME, CARE_OF, lifetime=s(2))
        sim.run_for(s(3))
        assert [binding.home_address for binding in expired] == [HOME]
        assert table.get(HOME) is None

    def test_renewal_cancels_previous_expiry(self, sim):
        expired = []
        table = MobilityBindingTable(sim, on_expire=expired.append)
        table.register(HOME, CARE_OF, lifetime=s(2))
        sim.run_for(s(1))
        table.register(HOME, CARE_OF, lifetime=s(5))
        sim.run_for(s(3))
        assert expired == []
        assert table.get(HOME) is not None

    def test_remaining_and_activity(self, sim):
        table = MobilityBindingTable(sim)
        binding = table.register(HOME, CARE_OF, lifetime=s(10))
        sim.run_for(s(4))
        assert binding.remaining(sim.now) == pytest.approx(s(6))
        assert binding.is_active(sim.now)


class TestMessages:
    def test_deregistration_detection(self):
        by_lifetime = RegistrationRequest(HOME, CARE_OF, AGENT, lifetime=0,
                                          identification=1)
        by_address = RegistrationRequest(HOME, HOME, AGENT, lifetime=s(60),
                                         identification=2)
        normal = RegistrationRequest(HOME, CARE_OF, AGENT, lifetime=s(60),
                                     identification=3)
        assert by_lifetime.is_deregistration
        assert by_address.is_deregistration
        assert not normal.is_deregistration

    def test_reply_accept_flag(self):
        good = RegistrationReply(CODE_ACCEPTED, HOME, CARE_OF, s(60), 1)
        bad = RegistrationReply(128, HOME, CARE_OF, 0, 1)
        assert good.accepted and not bad.accepted

    def test_wire_sizes(self):
        request = RegistrationRequest(HOME, CARE_OF, AGENT, s(60), 1)
        assert request.wrap().size_bytes == 52
        reply = RegistrationReply(CODE_ACCEPTED, HOME, CARE_OF, s(60), 1)
        assert reply.wrap().size_bytes == 44


class TestClientRetransmission:
    def _client_with_fake_agent(self, lan, drop_first: int):
        """A registration client against a scripted agent on host b."""
        client = RegistrationClient(lan.a, HOME, ip("10.0.0.2"))
        seen = {"count": 0}
        agent_socket = lan.b.udp.open(REGISTRATION_PORT)

        def agent(data: AppData, src, src_port, dst):
            seen["count"] += 1
            if seen["count"] <= drop_first:
                return  # swallow it: simulates loss
            request = data.content
            reply = RegistrationReply(CODE_ACCEPTED, request.home_address,
                                      request.care_of_address,
                                      request.lifetime,
                                      request.identification)
            agent_socket.sendto(reply.wrap(), src, src_port)

        agent_socket.on_datagram(agent)
        return client, seen

    def test_reply_on_first_try(self, lan):
        client, seen = self._client_with_fake_agent(lan, drop_first=0)
        outcomes = []
        client.register(CARE_OF, on_done=outcomes.append,
                        via=lan.a.interfaces[1])
        lan.run(3000)
        assert outcomes and outcomes[0].accepted
        assert outcomes[0].transmissions == 1
        assert outcomes[0].round_trip > 0

    def test_retransmits_until_replied(self, lan):
        client, seen = self._client_with_fake_agent(lan, drop_first=2)
        outcomes = []
        client.register(CARE_OF, on_done=outcomes.append,
                        via=lan.a.interfaces[1])
        lan.sim.run_for(s(6))
        assert outcomes and outcomes[0].accepted
        assert outcomes[0].transmissions == 3
        assert seen["count"] == 3

    def test_gives_up_after_max_transmissions(self, lan):
        # Under capped exponential backoff (1 s, 2 s, 4 s between the four
        # transmissions, then an 8 s give-up wait) terminal failure lands
        # just past 15 s instead of the old fixed-interval 4 s.
        client, seen = self._client_with_fake_agent(lan, drop_first=99)
        failures = []
        client.register(CARE_OF, on_done=lambda outcome: failures.append("done"),
                        on_fail=lambda: failures.append("fail"),
                        via=lan.a.interfaces[1])
        lan.sim.run_for(s(20))
        assert failures == ["fail"]
        assert seen["count"] == lan.config.registration.max_transmissions

    def test_backoff_schedule_is_capped_exponential(self, lan):
        client, _seen = self._client_with_fake_agent(lan, drop_first=99)
        client.register(CARE_OF, on_done=lambda outcome: None,
                        via=lan.a.interfaces[1])
        lan.sim.run_for(s(20))
        sends = [record.time for record in lan.sim.trace.records
                 if record.category == "registration"
                 and record.event == "request_sent"]
        assert len(sends) == lan.config.registration.max_transmissions
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        timings = lan.config.registration
        # First retransmission waits exactly retransmit_interval; each
        # later one doubles, clamped at backoff_cap.
        expected = []
        delay = timings.retransmit_interval
        for _ in gaps:
            expected.append(min(delay, timings.backoff_cap))
            delay = int(delay * timings.backoff_multiplier)
        assert gaps == expected

    def test_give_up_fires_terminal_hook(self, lan):
        client, _seen = self._client_with_fake_agent(lan, drop_first=99)
        terminal = []
        client.on_give_up = lambda request, attempts: terminal.append(
            (request.identification, attempts))
        client.register(CARE_OF, on_done=lambda outcome: None,
                        via=lan.a.interfaces[1])
        lan.sim.run_for(s(20))
        assert terminal == [(1, lan.config.registration.max_transmissions)]

    def test_deregister_carries_home_as_care_of(self, lan):
        client, _seen = self._client_with_fake_agent(lan, drop_first=0)
        outcomes = []
        request = client.deregister(on_done=outcomes.append,
                                    via=lan.a.interfaces[1])
        assert request.is_deregistration
        lan.run(3000)
        assert outcomes and outcomes[0].accepted
