"""Unit tests for the parallel trial runner and seed partitioning."""

import pytest

from repro.obs import MetricsRegistry, capture_simulators
from repro.obs.capture import CapturedMetrics, capture_active, note_metrics_registry
from repro.parallel import (
    ParallelRunner,
    Trial,
    balanced_shards,
    resolve_trial,
    run_trials,
    shard_slices,
    spawn_seed,
    trial_seeds,
)
from repro.parallel.runner import effective_jobs
from repro.parallel.seeds import partition

ECHO = "repro.parallel.selftest:echo_trial"
SIM = "repro.parallel.selftest:seeded_sim_trial"
FAIL = "repro.parallel.selftest:failing_trial"


class TestSeeds:
    def test_spawn_seed_is_deterministic(self):
        assert spawn_seed(83, 2, 5) == spawn_seed(83, 2, 5)

    def test_spawn_seed_separates_paths(self):
        seeds = {spawn_seed(0, fleet, shard)
                 for fleet in range(8) for shard in range(8)}
        assert len(seeds) == 64  # no collisions on a small grid
        assert spawn_seed(0, 1, 2) != spawn_seed(0, 2, 1)  # order matters

    def test_spawn_seed_is_non_negative(self):
        assert all(spawn_seed(seed, index) >= 0
                   for seed in (0, 1, 2**63) for index in range(4))

    def test_trial_seeds_match_legacy_arithmetic(self):
        assert trial_seeds(11, 4) == [11, 12, 13, 14]
        assert trial_seeds(23, 3, stride=131) == [23, 154, 285]
        assert trial_seeds(5, 0) == []
        with pytest.raises(ValueError):
            trial_seeds(5, -1)

    def test_shard_slices_cover_in_order(self):
        items = list(range(10))
        pieces = shard_slices(len(items), 3)
        assert [len(items[piece]) for piece in pieces] == [4, 3, 3]
        assert [value for piece in pieces for value in items[piece]] == items

    def test_shard_slices_more_shards_than_items(self):
        assert len(shard_slices(2, 8)) == 2
        with pytest.raises(ValueError):
            shard_slices(4, 0)

    def test_balanced_shards_respect_capacity(self):
        assert balanced_shards(250, 100) == [84, 83, 83]
        assert balanced_shards(100, 100) == [100]
        assert balanced_shards(0, 100) == []
        assert sum(balanced_shards(1000, 100)) == 1000
        with pytest.raises(ValueError):
            balanced_shards(10, 0)

    def test_partition_materializes_slices(self):
        assert partition([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]


class TestResolveTrial:
    def test_resolves_module_function(self):
        func = resolve_trial(ECHO)
        assert func(value=7) == {"value": 7}

    @pytest.mark.parametrize("ref", [
        "no-colon", ":func", "module:", "repro.parallel.selftest:missing",
        "repro.parallel.selftest:ECHO_DOC",
    ])
    def test_rejects_bad_references(self, ref):
        with pytest.raises((ValueError, ModuleNotFoundError)):
            resolve_trial(ref)


class TestEffectiveJobs:
    def test_zero_and_none_mean_cpu_count(self):
        assert effective_jobs(0) >= 1
        assert effective_jobs(None) >= 1

    def test_positive_passthrough_and_negative_rejected(self):
        assert effective_jobs(3) == 3
        with pytest.raises(ValueError):
            effective_jobs(-2)


class TestRunner:
    def trials(self, count=6):
        return [Trial(SIM, dict(seed=seed, timers=4))
                for seed in trial_seeds(17, count)]

    def test_serial_matches_direct_calls(self):
        results = run_trials(self.trials(), jobs=1)
        func = resolve_trial(SIM)
        assert results == [func(seed=seed, timers=4)
                           for seed in trial_seeds(17, 6)]

    def test_parallel_matches_serial_in_order(self):
        serial = run_trials(self.trials(), jobs=1)
        parallel = run_trials(self.trials(), jobs=2)
        assert parallel == serial

    def test_spawn_start_method_is_safe(self):
        # The contract: trials are importable + picklable, so the pool
        # works under spawn (the macOS/Windows default), not just fork.
        runner = ParallelRunner(jobs=2, start_method="spawn")
        assert runner.run(self.trials(count=2)) == \
            run_trials(self.trials(count=2), jobs=1)

    def test_single_trial_stays_in_process(self):
        assert run_trials([Trial(ECHO, dict(value="x"))], jobs=8) \
            == [{"value": "x"}]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="kaput"):
            run_trials([Trial(FAIL, dict(message="kaput"))] * 3, jobs=2)

    def test_pool_failure_degrades_to_serial(self):
        runner = ParallelRunner(jobs=4, start_method="definitely-not-a-method")
        with pytest.warns(RuntimeWarning, match="multiprocessing unavailable"):
            results = runner.run(self.trials())
        assert results == run_trials(self.trials(), jobs=1)


class TestMetricsCollection:
    def test_serial_capture_sees_simulators_directly(self):
        with capture_simulators() as captured:
            run_trials(self.trials(), jobs=1)
        registry = MetricsRegistry.merged(sim.metrics for sim in captured)
        counter = registry.get("selftest", "fired")
        assert counter is not None and counter.value == 3 * 4

    def test_parallel_capture_merges_worker_registries(self):
        with capture_simulators() as captured:
            run_trials(self.trials(), jobs=2)
        assert captured and all(isinstance(item, CapturedMetrics)
                                for item in captured)
        registry = MetricsRegistry.merged(item.metrics for item in captured)
        assert registry.get("selftest", "fired").value == 3 * 4

    def test_note_metrics_registry_without_capture_is_noop(self):
        assert not capture_active()
        note_metrics_registry(MetricsRegistry())  # must not raise

    def trials(self):
        return [Trial(SIM, dict(seed=seed, timers=4))
                for seed in trial_seeds(29, 3)]
