"""Unit tests for routers and the transit-traffic filter."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import MACAllocator, ip, subnet
from repro.net.interface import EthernetInterface
from repro.net.packet import AppData, IPPacket, PROTO_UDP, UDPDatagram
from repro.net.router import Router
from repro.sim import Simulator


@pytest.fixture
def router(sim):
    node = Router(sim, "r", DEFAULT_CONFIG)
    macs = MACAllocator()
    left = EthernetInterface(sim, "left", macs.allocate(), DEFAULT_CONFIG)
    right = EthernetInterface(sim, "right", macs.allocate(), DEFAULT_CONFIG)
    node.add_interface(left)
    node.add_interface(right)
    from repro.net.link import EthernetSegment

    left.attach(EthernetSegment(sim, "seg-left", DEFAULT_CONFIG.ethernet))
    right.attach(EthernetSegment(sim, "seg-right", DEFAULT_CONFIG.ethernet))
    node.configure_interface(left, ip("10.1.0.1"), subnet("10.1.0.0/24"),
                             bring_up=True)
    node.configure_interface(right, ip("10.2.0.1"), subnet("10.2.0.0/24"),
                             bring_up=True)
    return node


def make(src, dst):
    return IPPacket(src=ip(src), dst=ip(dst), protocol=PROTO_UDP,
                    payload=UDPDatagram(1, 2, AppData("x", 10)))


def test_forwarding_enabled_by_default(router):
    assert router.ip.forwarding


def test_filter_disabled_forwards_everything(router, sim):
    left = router.interface("left")
    router.ip.receive_packet(make("99.0.0.1", "10.2.0.5"), left)
    sim.run()
    assert router.ip.dropped_filtered == 0


def test_transit_filter_semantics(router, sim):
    """Transit = neither endpoint local.  The four paper cases:

    * triangle-routed packet (foreign src, foreign dst): DROPPED;
    * tunneled packet to a local care-of (foreign src, local dst): passes;
    * local host sending out (local src, foreign dst): passes;
    * local-to-local forwarding: passes.
    """
    router.enable_transit_filter()
    left = router.interface("left")

    checks = [
        ("36.135.0.10", "36.8.0.20", False),  # transit: dropped
        ("36.135.0.1", "10.2.0.5", True),     # tunnel to local care-of
        ("10.1.0.5", "36.8.0.20", True),      # local source outbound
        ("10.1.0.5", "10.2.0.5", True),       # internal
    ]
    for src, dst, allowed in checks:
        before = router.transit_drops
        assert router._check_transit(make(src, dst), left) is allowed
        assert (router.transit_drops == before) is allowed


def test_exempt_prefixes_pass(router):
    router.enable_transit_filter(exempt=[subnet("36.135.0.0/24")])
    left = router.interface("left")
    assert router._check_transit(make("36.135.0.10", "99.0.0.1"), left)


def test_disable_restores_forwarding(router):
    router.enable_transit_filter()
    router.disable_transit_filter()
    assert not router.transit_filter_enabled
    assert router.ip.forward_filter is None


def test_drops_are_counted_and_traced(router, sim):
    router.enable_transit_filter()
    left = router.interface("left")
    router.ip.receive_packet(make("99.0.0.1", "88.0.0.1"), left)
    sim.run()
    assert router.ip.dropped_filtered == 1
    assert router.transit_drops == 1
    assert sim.trace.select("router", "transit_drop", router="r")
