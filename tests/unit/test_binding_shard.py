"""Unit tests for the consistent-hash home-agent plane."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.binding_shard import (
    BindingShardPlane,
    DEFAULT_VNODES,
    HashRing,
    stable_hash64,
)
from repro.faults import FaultInjector, FaultPlan, HomeAgentRestart
from repro.net.addressing import ip
from repro.sim import ms, s

HOME = ip("36.135.0.10")


def names(count):
    return [f"ha{index}" for index in range(count)]


class TestStableHash:
    def test_is_64_bit(self):
        value = stable_hash64("mosquito")
        assert 0 <= value < (1 << 64)

    def test_distinct_keys_distinct_hashes(self):
        values = {stable_hash64(f"key{i}") for i in range(1000)}
        assert len(values) == 1000

    def test_survives_hash_randomization(self):
        # Python's builtin hash() varies with PYTHONHASHSEED; the ring's
        # hash must not, or workers would disagree on placements.
        script = (
            "from repro.core.binding_shard import HashRing, stable_hash64\n"
            "ring = HashRing(['ha%d' % i for i in range(8)])\n"
            "print(stable_hash64('mosquito'))\n"
            "print(','.join(ring.lookup('host%d' % i) for i in range(64)))\n")
        src_dir = str(Path(repro.__file__).resolve().parents[1])

        def run(hash_seed):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=src_dir)
            return subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True, check=True)

        outputs = {run(seed).stdout for seed in ("0", "1", "12345")}
        assert len(outputs) == 1


class TestHashRing:
    def test_placements_ignore_insertion_order(self):
        forward = HashRing(names(8))
        backward = HashRing(reversed(names(8)))
        for index in range(500):
            key = f"host{index}"
            assert forward.lookup(key) == backward.lookup(key)

    def test_balance_within_20_percent_at_default_vnodes(self):
        # Ownership shares are the expected fraction of uniformly hashed
        # keys; with 64 virtual nodes each replica stays within +-20% of
        # its fair share for the plane sizes x7 uses.
        assert DEFAULT_VNODES == 64
        for count in (5, 8, 10):
            ring = HashRing(names(count))
            fair = 1.0 / count
            for name, share in ring.ownership().items():
                assert abs(share / fair - 1.0) <= 0.20, (count, name, share)

    def test_add_moves_keys_only_to_the_new_node(self):
        ring = HashRing(names(8))
        keys = [f"host{index}" for index in range(2000)]
        before = {key: ring.lookup(key) for key in keys}
        ring.add("ha8")
        moved = 0
        for key in keys:
            after = ring.lookup(key)
            if after != before[key]:
                assert after == "ha8"  # keys only ever move to the joiner
                moved += 1
        # The joiner takes roughly 1/9 of the keys, never a reshuffle.
        assert 0 < moved < len(keys) / 4

    def test_remove_moves_only_the_removed_nodes_keys(self):
        ring = HashRing(names(8))
        keys = [f"host{index}" for index in range(2000)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove("ha3")
        for key in keys:
            if before[key] != "ha3":
                assert ring.lookup(key) == before[key]
            else:
                assert ring.lookup(key) != "ha3"

    def test_replicas_are_distinct_and_led_by_the_primary(self):
        ring = HashRing(names(6))
        for index in range(200):
            key = f"host{index}"
            replicas = ring.replicas(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas[0] == ring.lookup(key)

    def test_replicas_cap_at_membership(self):
        ring = HashRing(names(2))
        assert sorted(ring.replicas("host0", 5)) == ["ha0", "ha1"]

    def test_lookup_avoid_walks_to_a_live_replica(self):
        ring = HashRing(names(4))
        downs = {"ha0", "ha2"}
        for index in range(200):
            owner = ring.lookup(f"host{index}", avoid=downs.__contains__)
            assert owner not in downs

    def test_ownership_sums_to_one(self):
        ring = HashRing(names(7))
        assert sum(ring.ownership().values()) == pytest.approx(1.0)

    def test_effective_ownership_fails_over_arcs(self):
        ring = HashRing(names(4))
        healthy = ring.ownership()
        degraded = ring.effective_ownership(frozenset({"ha1"}))
        assert degraded["ha1"] == 0.0
        assert sum(degraded.values()) == pytest.approx(1.0)
        # The lost share lands on live replicas, never vanishes.
        for name in ("ha0", "ha2", "ha3"):
            assert degraded[name] >= healthy[name]

    def test_empty_ring_and_bad_membership_raise(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.lookup("host0")
        with pytest.raises(LookupError):
            ring.replicas("host0", 1)
        ring.add("ha0")
        with pytest.raises(ValueError, match="already contains"):
            ring.add("ha0")
        with pytest.raises(ValueError, match="does not contain"):
            ring.remove("ha9")
        with pytest.raises(LookupError, match="avoided"):
            ring.lookup("host0", avoid=lambda name: True)
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)


class FakeAgent:
    """The duck-typed replica the plane documents as sufficient."""

    def __init__(self, sim):
        self.sim = sim
        self.served = set()
        self.crashes = 0
        self._down = False

    def serve(self, home_address):
        self.served.add(home_address)

    def crash(self, down_for, on_recovered=None):
        self._down = True
        self.crashes += 1

        def recover():
            self._down = False
            if on_recovered is not None:
                on_recovered()

        self.sim.call_at(self.sim.now + down_for, recover)

    @property
    def is_down(self):
        return self._down


def build_plane(sim, count=4, replication=2):
    agents = {name: FakeAgent(sim) for name in names(count)}
    return BindingShardPlane(sim, agents, replication=replication)


class TestBindingShardPlane:
    def test_serve_provisions_every_replica(self, sim):
        plane = build_plane(sim)
        owners = plane.serve(HOME)
        assert owners == plane.owners(HOME)
        assert len(owners) == 2
        for name in owners:
            assert HOME in plane.agents[name].served

    def test_agent_for_prefers_the_primary(self, sim):
        plane = build_plane(sim)
        primary = plane.owners(HOME)[0]
        assert plane.agent_for(HOME) is plane.agents[primary]
        assert plane.takeovers == 0

    def test_crash_fails_over_to_the_next_replica(self, sim):
        plane = build_plane(sim)
        primary, secondary = plane.owners(HOME)
        plane.crash(primary, down_for=s(1))
        assert plane.is_down(primary)
        assert plane.down_agents() == [primary]
        assert plane.agent_for(HOME) is plane.agents[secondary]
        assert plane.takeovers == 1
        sim.run_for(s(2))
        assert not plane.is_down(primary)
        assert plane.agent_for(HOME) is plane.agents[primary]

    def test_all_replicas_down_walks_the_whole_ring(self, sim):
        plane = build_plane(sim, count=4, replication=2)
        owners = plane.owners(HOME)
        for name in owners:
            plane.crash(name, down_for=s(1))
        survivor = plane.agent_for(HOME)
        assert survivor is not None
        assert not survivor.is_down
        for name in plane.agents:
            plane.crash(name, down_for=s(1))
        assert plane.agent_for(HOME) is None

    def test_serve_gauge_counts_distinct_addresses_once(self, sim):
        plane = build_plane(sim)
        plane.serve(HOME)
        plane.serve(HOME)  # idempotent: re-serving must not double-count
        name = plane.owners(HOME)[0]
        gauge = sim.metrics.gauge("binding_shard", "served", agent=name)
        assert gauge.value == 1

    def test_crash_of_unknown_agent_raises(self, sim):
        plane = build_plane(sim)
        with pytest.raises(ValueError, match="no agent"):
            plane.crash("ha99", down_for=s(1))

    def test_constructor_rejects_bad_arguments(self, sim):
        with pytest.raises(ValueError, match="at least one agent"):
            BindingShardPlane(sim, {})
        with pytest.raises(ValueError, match="replication"):
            build_plane(sim, replication=0)


class TestPlaneFaults:
    def test_targeted_restart_crashes_the_named_replica(self, sim):
        plane = build_plane(sim)
        plan = FaultPlan.of(
            HomeAgentRestart(at=s(1), down_for=ms(500), agent="ha1"))
        injector = FaultInjector.for_plane(plane, plan)
        injector.arm()
        sim.run_for(ms(1200))  # t=1.2s: mid-outage
        assert plane.is_down("ha1")
        assert plane.down_agents() == ["ha1"]
        sim.run_for(s(1))
        assert not plane.is_down("ha1")
        assert injector.injected == {"home_agent_restart": 1}
        assert plane.agents["ha1"].crashes == 1

    def test_unknown_agent_in_plan_fails_arming(self, sim):
        plane = build_plane(sim)
        plan = FaultPlan.of(
            HomeAgentRestart(at=s(1), down_for=ms(500), agent="ha99"))
        injector = FaultInjector.for_plane(plane, plan)
        with pytest.raises(ValueError, match="unknown agent"):
            injector.arm()

    def test_agentless_restart_still_drives_a_single_home_agent(self, testbed):
        # The PR-4 path: no agent name, the injector's home_agent crashes.
        plan = FaultPlan.of(HomeAgentRestart(at=s(1), down_for=ms(500)))
        injector = FaultInjector.for_testbed(testbed, plan)
        injector.arm()
        testbed.sim.run_for(ms(1200))
        assert testbed.home_agent.is_down

    def test_plane_wraps_a_real_home_agent_service(self, testbed):
        plane = BindingShardPlane(testbed.sim,
                                  {"ha": testbed.home_agent}, replication=1)
        plane.serve(HOME)
        assert testbed.home_agent.serves(HOME)
        plane.crash("ha", down_for=ms(800))
        assert plane.agent_for(HOME) is None  # sole replica is down
        testbed.sim.run_for(s(2))
        assert plane.agent_for(HOME) is testbed.home_agent
