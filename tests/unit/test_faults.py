"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.faults import (
    DhcpOutage,
    FaultInjector,
    FaultPlan,
    GilbertElliottPhase,
    HomeAgentRestart,
    InterfaceFlap,
    LossBurst,
    ReplyDropWindow,
)
from repro.faults.inject import _GilbertElliottWindow
from repro.net.addressing import ip
from repro.net.interface import InterfaceState
from repro.sim import Simulator, ms, s

HOME = ip("36.135.0.10")


class TestPlan:
    def test_of_sorts_events_by_time(self):
        plan = FaultPlan.of(
            HomeAgentRestart(at=s(9), down_for=s(1)),
            LossBurst(at=s(2), link="lan", duration=s(1)),
            InterfaceFlap(at=s(5), interface="eth0.mh", down_for=ms(500)),
        )
        assert [event.at for event in plan.events] == [s(2), s(5), s(9)]
        assert len(plan) == 3

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.empty()
        assert FaultPlan.empty().describe() == "(no faults)"

    def test_describe_names_every_kind(self):
        plan = FaultPlan.of(LossBurst(at=s(1), link="lan", duration=s(1)),
                            DhcpOutage(at=s(2), duration=s(1)))
        text = plan.describe()
        assert "loss_burst" in text and "dhcp_outage" in text

    def test_plans_are_picklable(self):
        import pickle

        plan = FaultPlan.of(
            GilbertElliottPhase(at=s(1), link="lan", duration=s(2),
                                p_good_bad=0.1, p_bad_good=0.3),
            ReplyDropWindow(at=s(4), duration=ms(500)),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestLinkFaults:
    def test_loss_burst_drops_only_inside_window(self, lan):
        plan = FaultPlan.of(LossBurst(at=s(2), link="lan", duration=s(1),
                                      loss_rate=1.0))
        injector = FaultInjector(lan.sim, plan,
                                 links={"lan": lan.segment})
        injector.arm()
        results = {}

        def ping_at(when, key):
            lan.sim.call_at(when, lambda: lan.a.icmp.ping(
                ip("10.0.0.2"),
                on_reply=lambda rtt: results.setdefault(key, "ok"),
                on_timeout=lambda: results.setdefault(key, "lost")))

        ping_at(s(1), "before")
        ping_at(ms(2500), "during")
        ping_at(s(4), "after")
        lan.sim.run_for(s(10))
        assert results == {"before": "ok", "during": "lost", "after": "ok"}
        assert injector.injected == {"loss_burst": 1}
        assert injector.total_injected() == 1

    def test_gilbert_elliott_decisions_are_seed_deterministic(self):
        event = GilbertElliottPhase(at=0, link="x", duration=s(10),
                                    p_good_bad=0.3, p_bad_good=0.3,
                                    loss_good=0.05, loss_bad=0.95)

        def decisions(seed):
            rng = Simulator(seed=seed).rng("fault-link:x")
            window = _GilbertElliottWindow(event, rng)
            return [window.decide() for _ in range(300)]

        same = decisions(9)
        assert same == decisions(9)
        assert same != decisions(10)
        assert any(same) and not all(same)  # both states visited

    def test_empty_plan_installs_no_hooks(self, lan):
        injector = FaultInjector(lan.sim, FaultPlan.empty(),
                                 links={"lan": lan.segment})
        injector.arm()
        assert lan.segment.fault_hook is None
        assert injector.total_injected() == 0

    def test_unknown_link_name_raises(self, lan):
        plan = FaultPlan.of(LossBurst(at=s(1), link="nope", duration=s(1)))
        injector = FaultInjector(lan.sim, plan, links={"lan": lan.segment})
        with pytest.raises(ValueError, match="unknown link"):
            injector.arm()

    def test_arming_twice_raises(self, lan):
        injector = FaultInjector(lan.sim, FaultPlan.empty())
        injector.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()


class TestTestbedFaults:
    def test_flap_takes_interface_down_then_restores_it(self, testbed):
        plan = FaultPlan.of(InterfaceFlap(at=s(1), interface="eth0.mh",
                                          down_for=ms(500)))
        injector = FaultInjector.for_testbed(testbed, plan)
        injector.arm()
        testbed.sim.run_for(ms(1300))  # past down_delay, inside the outage
        assert testbed.mh_eth.state == InterfaceState.DOWN
        testbed.sim.run_for(s(2))      # outage over, up_delay paid
        assert testbed.mh_eth.state == InterfaceState.UP
        assert injector.injected == {"interface_flap": 1}

    def test_home_agent_restart_loses_bindings(self, testbed):
        testbed.visit_dept()
        testbed.sim.run_for(s(1))
        assert testbed.home_agent.bindings.get(HOME) is not None
        plan = FaultPlan.of(HomeAgentRestart(at=s(2), down_for=ms(800)))
        injector = FaultInjector.for_testbed(testbed, plan)
        injector.arm()
        testbed.sim.run_for(ms(1500))  # t=2.5s: mid-outage
        assert testbed.home_agent.is_down
        assert testbed.home_agent.bindings.get(HOME) is None
        testbed.sim.run_for(s(1))
        assert not testbed.home_agent.is_down
        assert testbed.home_agent.restarts == 1

    def test_reply_drop_window_forces_retransmission(self, testbed):
        testbed.visit_dept(register=False)
        plan = FaultPlan.of(ReplyDropWindow(at=ms(100), duration=ms(1500)))
        injector = FaultInjector.for_testbed(testbed, plan)
        injector.arm()
        testbed.sim.run_for(ms(200))
        outcomes = []
        testbed.mobile.register_current(on_registered=outcomes.append)
        testbed.sim.run_for(s(8))
        assert outcomes and outcomes[0].accepted
        # The first reply (and any retransmission answered inside the
        # window) was dropped, so success took more than one transmission.
        assert outcomes[0].transmissions > 1
        assert testbed.home_agent.replies_dropped > 0

    def test_dhcp_outage_requires_a_dhcp_server(self, testbed):
        plan = FaultPlan.of(DhcpOutage(at=s(1), duration=s(1)))
        injector = FaultInjector.for_testbed(testbed, plan)  # no DHCP here
        with pytest.raises(ValueError, match="no DHCP server"):
            injector.arm()

    def test_dhcp_outage_silences_then_restores_the_server(self, full_testbed):
        plan = FaultPlan.of(DhcpOutage(at=ms(100), duration=s(3)))
        injector = FaultInjector.for_testbed(full_testbed, plan)
        injector.arm()
        sim = full_testbed.sim
        # Put the mobile host on the DHCP server's segment (net 36.8).
        full_testbed.move_mh_cable(full_testbed.dept_segment)
        full_testbed.mh_eth.remove_address(HOME)
        full_testbed.mobile.ip.routes.remove_matching(
            interface=full_testbed.mh_eth)
        full_testbed.mh_eth.subnet = full_testbed.addresses.dept_net
        sim.run_for(ms(200))
        outcomes = []
        full_testbed.mh_dhcp.acquire(
            on_bound=lambda lease: outcomes.append("bound"),
            on_failed=lambda: outcomes.append("failed"),
            timeout=ms(1500))
        sim.run_for(s(2))
        assert outcomes == ["failed"]
        assert full_testbed.dhcp_server.dropped_while_offline > 0
        sim.run_for(s(2))  # outage over
        full_testbed.mh_dhcp.acquire(
            on_bound=lambda lease: outcomes.append("bound"),
            on_failed=lambda: outcomes.append("failed"))
        sim.run_for(s(3))
        assert outcomes == ["failed", "bound"]
