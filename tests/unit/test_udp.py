"""Unit tests for UDP sockets and source-address semantics."""

import pytest

from repro.net.addressing import UNSPECIFIED, ip
from repro.net.packet import AppData
from repro.net.udp import UDPError


def test_ephemeral_ports_are_unique(lan):
    first = lan.a.udp.open(0)
    second = lan.a.udp.open(0)
    assert first.port != second.port
    assert first.port >= lan.a.udp.EPHEMERAL_START


def test_port_conflict_rejected(lan):
    lan.a.udp.open(5000)
    with pytest.raises(UDPError):
        lan.a.udp.open(5000)


def test_close_releases_port(lan):
    sock = lan.a.udp.open(5000)
    sock.close()
    lan.a.udp.open(5000)  # no conflict now
    with pytest.raises(UDPError):
        sock.sendto(AppData(), ip("10.0.0.2"), 9)


def test_unbound_socket_source_is_stack_chosen(lan):
    seen = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: seen.append(str(s)))
    lan.a.udp.open(0).sendto(AppData("x", 1), ip("10.0.0.2"), 9)
    lan.run()
    assert seen == ["10.0.0.1"]


def test_bound_socket_source_sticks(lan):
    second = ip("10.0.0.42")
    lan.a.interfaces[1].add_address(second)
    seen = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: seen.append(str(s)))
    lan.a.udp.open(0, bound_address=second).sendto(AppData("x", 1),
                                                   ip("10.0.0.2"), 9)
    lan.run()
    assert seen == ["10.0.0.42"]


def test_bound_socket_rejects_foreign_destination_address(lan):
    """A socket bound to one alias must not hear datagrams for another."""
    primary_only = []
    lan.b.interfaces[1].add_address(ip("10.0.0.42"))
    lan.b.udp.open(9, bound_address=ip("10.0.0.42")).on_datagram(
        lambda d, s, sp, dst: primary_only.append(d))
    lan.a.udp.open(0).sendto(AppData("x", 1), ip("10.0.0.2"), 9)
    lan.run()
    assert primary_only == []
    assert lan.b.udp.datagrams_dropped_no_port == 1


def test_datagram_to_unbound_port_is_dropped(lan):
    lan.a.udp.open(0).sendto(AppData("x", 1), ip("10.0.0.2"), 7777)
    lan.run()
    assert lan.b.udp.datagrams_dropped_no_port == 1


def test_broadcast_delivery(lan):
    heard = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: heard.append("b"))
    third = lan.host("10.0.0.3")
    third.udp.open(9).on_datagram(lambda d, s, sp, dst: heard.append("c"))
    sender = lan.a.udp.open(0)
    sender.sendto(AppData("x", 1), ip("255.255.255.255"), 9,
                  via=lan.a.interfaces[1])
    lan.run()
    assert sorted(heard) == ["b", "c"]


def test_subnet_broadcast_delivery(lan):
    heard = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: heard.append(str(dst)))
    lan.a.udp.open(0).sendto(AppData("x", 1), ip("10.0.0.255"), 9,
                             via=lan.a.interfaces[1])
    lan.run()
    assert heard == ["10.0.0.255"]


def test_reply_addressing_roundtrip(lan):
    """An echo implemented at the app layer ends up at the right socket."""
    server = lan.b.udp.open(9)
    server.on_datagram(lambda d, s, sp, dst: server.sendto(d, s, sp))
    got = []
    client = lan.a.udp.open(0).on_datagram(lambda d, s, sp, dst: got.append(d.content))
    client.sendto(AppData("ping", 4), ip("10.0.0.2"), 9)
    lan.run()
    assert got == ["ping"]


def test_counters(lan):
    server = lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: None)
    client = lan.a.udp.open(0)
    client.sendto(AppData("x", 1), ip("10.0.0.2"), 9)
    lan.run()
    assert client.datagrams_sent == 1
    assert server.datagrams_received == 1


def test_via_without_address_keeps_unspecified_source(sim, lan):
    """DHCP DISCOVER case: no address yet, source must stay 0.0.0.0."""
    from repro.config import DEFAULT_CONFIG
    from repro.net.host import Host
    from repro.net.interface import EthernetInterface, InterfaceState

    newcomer = Host(sim, "newcomer", DEFAULT_CONFIG)
    iface = EthernetInterface(sim, "eth.new", lan.macs.allocate(),
                              DEFAULT_CONFIG)
    newcomer.add_interface(iface)
    iface.attach(lan.segment)
    iface.state = InterfaceState.UP
    seen = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: seen.append(s))
    newcomer.udp.open(68).sendto(AppData("x", 1), ip("255.255.255.255"), 9,
                                 via=iface)
    lan.run()
    assert seen == [UNSPECIFIED]
