"""Unit tests for the simplified TCP."""

import pytest

from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.net.tcp import (
    DEFAULT_MSS,
    TCPError,
    TCPState,
)
from repro.sim import ms, s


def open_session(lan, on_server_data=None):
    """Connect a->b on port 23; returns (client_conn, server_holder)."""
    server = {}

    def on_connection(conn):
        server["conn"] = conn
        if on_server_data is not None:
            conn.on_data = on_server_data

    lan.b.tcp.listen(23, on_connection)
    client = lan.a.tcp.connect(ip("10.0.0.2"), 23)
    return client, server


class TestHandshake:
    def test_three_way_handshake(self, lan):
        established = []
        client, server = open_session(lan)
        client.on_established = lambda: established.append("client")
        lan.run(500)
        assert established == ["client"]
        assert client.state == TCPState.ESTABLISHED
        assert server["conn"].state == TCPState.ESTABLISHED

    def test_connect_without_route_raises(self, lan):
        with pytest.raises(TCPError):
            lan.a.tcp.connect(ip("99.0.0.1"), 23)

    def test_syn_to_closed_port_gets_reset(self, lan):
        client = lan.a.tcp.connect(ip("10.0.0.2"), 4444)
        resets = []
        client.on_reset = lambda: resets.append(1)
        lan.run(500)
        assert resets == [1]
        assert client.state == TCPState.CLOSED

    def test_duplicate_listen_rejected(self, lan):
        lan.b.tcp.listen(23, lambda conn: None)
        with pytest.raises(TCPError):
            lan.b.tcp.listen(23, lambda conn: None)

    def test_closed_listener_refuses(self, lan):
        listener = lan.b.tcp.listen(23, lambda conn: None)
        listener.close()
        client = lan.a.tcp.connect(ip("10.0.0.2"), 23)
        resets = []
        client.on_reset = lambda: resets.append(1)
        lan.run(500)
        assert resets == [1]


class TestDataTransfer:
    def test_data_flows_in_order(self, lan):
        got = []
        client, _server = open_session(lan, on_server_data=lambda d: got.append(d.content))
        client.on_established = lambda: [client.send(AppData(i, 100))
                                         for i in range(5)]
        lan.run(2000)
        assert got == [0, 1, 2, 3, 4]

    def test_bidirectional_transfer(self, lan):
        to_server, to_client = [], []
        client, server = open_session(lan, on_server_data=lambda d: to_server.append(d.content))
        client.on_data = lambda d: to_client.append(d.content)

        def kickoff():
            client.send(AppData("question", 50))

        client.on_established = kickoff
        lan.run(500)
        server["conn"].send(AppData("answer", 50))
        lan.run(500)
        assert to_server == ["question"]
        assert to_client == ["answer"]

    def test_send_before_established_raises(self, lan):
        client, _ = open_session(lan)
        with pytest.raises(TCPError):
            client.send(AppData("early", 5))

    def test_empty_send_rejected(self, lan):
        client, _ = open_session(lan)
        lan.run(500)
        with pytest.raises(TCPError):
            client.send(AppData("", 0))

    def test_byte_counters(self, lan):
        got = []
        client, server = open_session(lan, on_server_data=got.append)
        client.on_established = lambda: client.send(AppData("x", 300))
        lan.run(1000)
        assert client.bytes_sent == 300
        assert server["conn"].bytes_received == 300


class TestRetransmission:
    def test_loss_is_recovered(self, lan):
        """Drop the wire for a while mid-transfer; TCP must recover."""
        got = []
        client, _server = open_session(lan, on_server_data=lambda d: got.append(d.content))
        lan.run(500)
        for i in range(3):
            client.send(AppData(i, 100))
        lan.run(500)
        # Outage: b's interface goes down, sender keeps sending.
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        for i in range(3, 6):
            client.send(AppData(i, 100))
        lan.run(1500)
        iface_b.state = iface_b.state.__class__.UP
        lan.run(8000)
        assert got == [0, 1, 2, 3, 4, 5]
        assert client.segments_retransmitted > 0

    def test_timeout_collapses_cwnd(self, lan):
        client, _server = open_session(lan)
        lan.run(500)
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        client.send(AppData("black hole", 100))
        lan.run(3000)
        assert client.cwnd == DEFAULT_MSS
        assert client.ssthresh >= DEFAULT_MSS

    def test_gives_up_after_max_retries(self, lan):
        client, _server = open_session(lan)
        lan.run(500)
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        dead = []
        client.on_reset = lambda: dead.append(1)
        client.send(AppData("doomed", 100))
        lan.sim.run_for(s(400))
        assert dead == [1]
        assert client.state == TCPState.CLOSED

    def test_rtt_estimator_converges(self, lan):
        got = []
        client, _server = open_session(lan, on_server_data=got.append)
        client.on_established = lambda: None
        lan.run(500)
        for i in range(10):
            client.send(AppData(i, 100))
            lan.run(200)
        assert client._srtt is not None
        # LAN RTT is ~1-2 ms; the estimate must be in that ballpark.
        assert client._srtt < ms(20)


class TestTeardown:
    def test_clean_close_both_sides(self, lan):
        closed = []
        client, server = open_session(lan)
        client.on_close = lambda: closed.append("client")
        lan.run(500)
        server["conn"].on_close = lambda: closed.append("server")
        client.close()
        lan.run(500)
        server["conn"].close()
        lan.run(5000)
        assert "server" in closed and "client" in closed
        assert client.state == TCPState.CLOSED

    def test_close_flushes_pending_data_first(self, lan):
        got = []
        client, _server = open_session(lan, on_server_data=lambda d: got.append(d.content))
        lan.run(500)
        client.send(AppData("last words", 100))
        client.close()
        lan.run(3000)
        assert got == ["last words"]

    def test_abort_sends_reset(self, lan):
        client, server = open_session(lan)
        lan.run(500)
        resets = []
        server["conn"].on_reset = lambda: resets.append(1)
        client.abort()
        lan.run(500)
        assert resets == [1]
        assert client.state == TCPState.CLOSED
