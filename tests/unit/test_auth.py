"""Unit tests for registration authentication (the Section 5.1 extension)."""

import pytest

from repro.core.auth import (
    CODE_DENIED_AUTHENTICATION,
    AuthenticatedRegistrationSigner,
    RegistrationAuthenticator,
    compute_authenticator,
)
from repro.core.registration import RegistrationRequest
from repro.net.addressing import ip
from repro.sim import s

HOME = ip("36.135.0.10")
CARE_OF = ip("36.8.0.50")
AGENT = ip("36.135.0.1")
KEY = b"a shared secret"


def request(ident=1, care_of=CARE_OF, lifetime=s(60), authenticator=None):
    return RegistrationRequest(home_address=HOME, care_of_address=care_of,
                               home_agent=AGENT, lifetime=lifetime,
                               identification=ident,
                               authenticator=authenticator)


class TestMac:
    def test_mac_is_deterministic(self):
        assert compute_authenticator(KEY, request()) == \
            compute_authenticator(KEY, request())

    def test_mac_depends_on_every_protected_field(self):
        base = compute_authenticator(KEY, request())
        assert compute_authenticator(KEY, request(ident=2)) != base
        assert compute_authenticator(KEY, request(care_of=ip("1.2.3.4"))) != base
        assert compute_authenticator(KEY, request(lifetime=s(30))) != base

    def test_mac_depends_on_key(self):
        assert compute_authenticator(KEY, request()) != \
            compute_authenticator(b"other", request())


class TestVerification:
    def test_unprovisioned_hosts_pass_unauthenticated(self):
        verifier = RegistrationAuthenticator()
        assert verifier.verify(request())

    def test_provisioned_host_requires_valid_mac(self):
        verifier = RegistrationAuthenticator()
        verifier.provision(HOME, KEY)
        assert not verifier.verify(request())  # no MAC at all
        assert verifier.rejected_bad_mac == 1
        signed = AuthenticatedRegistrationSigner(KEY).sign(request())
        assert verifier.verify(signed)

    def test_forged_mac_rejected(self):
        verifier = RegistrationAuthenticator()
        verifier.provision(HOME, KEY)
        forged = AuthenticatedRegistrationSigner(b"wrong key").sign(request())
        assert not verifier.verify(forged)
        assert verifier.rejected_bad_mac == 1

    def test_replays_rejected(self):
        verifier = RegistrationAuthenticator()
        verifier.provision(HOME, KEY)
        signer = AuthenticatedRegistrationSigner(KEY)
        first = signer.sign(request(ident=5))
        assert verifier.verify(first)
        assert not verifier.verify(first)  # byte-for-byte replay
        assert verifier.rejected_replay == 1
        # Older identifications are also rejected.
        stale = signer.sign(request(ident=4))
        assert not verifier.verify(stale)
        # Newer ones proceed.
        fresh = signer.sign(request(ident=6))
        assert verifier.verify(fresh)

    def test_revoke_restores_open_policy(self):
        verifier = RegistrationAuthenticator()
        verifier.provision(HOME, KEY)
        verifier.revoke(HOME)
        assert verifier.verify(request())

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RegistrationAuthenticator().provision(HOME, b"")
        with pytest.raises(ValueError):
            AuthenticatedRegistrationSigner(b"")


class TestEndToEnd:
    def test_fraudulent_registration_denied_by_home_agent(self, testbed):
        """The attack the paper names: a malicious fraudulent registration
        hijacking the mobile host's traffic."""
        agent = testbed.home_agent
        verifier = RegistrationAuthenticator()
        verifier.provision(HOME, KEY)
        agent.authenticator = verifier
        AuthenticatedRegistrationSigner(KEY).install(
            testbed.mobile.registration)

        # The legitimate mobile host registers fine.
        outcomes = []
        testbed.visit_dept(on_registered=outcomes.append)
        testbed.sim.run_for(s(2))
        assert outcomes and outcomes[0].accepted

        # An attacker on the department net tries to steal the binding.
        from repro.core.registration import REGISTRATION_PORT

        attacker_socket = testbed.correspondent.udp.open(0)
        fraud = request(ident=10_000, care_of=ip("36.8.0.20"))
        attacker_socket.sendto(fraud.wrap(), agent.address,
                               REGISTRATION_PORT)
        testbed.sim.run_for(s(1))
        # Binding unchanged; denial traced.
        assert agent.current_care_of(HOME) == testbed.addresses.mh_dept_care_of
        assert testbed.sim.trace.select("registration", "auth_failed")

    def test_denial_code_is_authentication_specific(self, testbed):
        agent = testbed.home_agent
        verifier = RegistrationAuthenticator()
        verifier.provision(HOME, KEY)
        agent.authenticator = verifier
        # The MH did NOT get a signer: its own registrations now fail
        # with the authentication code (mirrors a key mismatch).
        outcomes = []
        testbed.visit_dept(on_registered=outcomes.append)
        testbed.sim.run_for(s(2))
        assert outcomes and not outcomes[0].accepted
        assert outcomes[0].reply.code == CODE_DENIED_AUTHENTICATION
