"""Unit tests for the packet model and IP-in-IP encapsulation."""

import pytest

from repro.net.addressing import ip
from repro.net.ethernet import (
    ETHERTYPE_IPV4,
    FRAME_OVERHEAD_BYTES,
    MIN_PAYLOAD_BYTES,
    EthernetFrame,
)
from repro.net.addressing import MACAddress
from repro.net.packet import (
    IP_HEADER_BYTES,
    PROTO_IPIP,
    PROTO_UDP,
    AppData,
    IPPacket,
    UDPDatagram,
    decapsulate,
    encapsulate,
    encapsulation_depth,
)


def make_packet(payload_bytes: int = 100) -> IPPacket:
    datagram = UDPDatagram(src_port=1000, dst_port=2000,
                           payload=AppData("x", payload_bytes))
    return IPPacket(src=ip("10.0.0.1"), dst=ip("10.0.0.2"),
                    protocol=PROTO_UDP, payload=datagram)


class TestSizes:
    def test_ip_packet_size_includes_header(self):
        packet = make_packet(100)
        assert packet.size_bytes == IP_HEADER_BYTES + 8 + 100

    def test_encapsulation_adds_exactly_20_bytes(self):
        # The paper: "encapsulation adds 20 bytes or more to the packet
        # length" — ours adds exactly the minimal IP header.
        inner = make_packet()
        outer = encapsulate(inner, ip("36.8.0.50"), ip("36.135.0.1"))
        assert outer.size_bytes == inner.size_bytes + IP_HEADER_BYTES

    def test_negative_payload_size_rejected(self):
        with pytest.raises(ValueError):
            AppData("x", -1)

    def test_bad_udp_port_rejected(self):
        with pytest.raises(ValueError):
            UDPDatagram(src_port=70000, dst_port=1, payload=AppData())

    def test_frame_pads_short_payloads(self):
        mac = MACAddress(1)
        small = make_packet(0)  # 28 bytes, below the 46-byte minimum
        frame = EthernetFrame(src=mac, dst=mac, ethertype=ETHERTYPE_IPV4,
                              payload=small)
        assert frame.size_bytes == FRAME_OVERHEAD_BYTES + MIN_PAYLOAD_BYTES


class TestEncapsulation:
    def test_roundtrip(self):
        inner = make_packet()
        outer = encapsulate(inner, ip("36.8.0.50"), ip("36.135.0.1"))
        assert outer.protocol == PROTO_IPIP
        assert outer.is_tunneled
        assert decapsulate(outer) is inner

    def test_depth_counting(self):
        inner = make_packet()
        assert encapsulation_depth(inner) == 0
        once = encapsulate(inner, ip("1.1.1.1"), ip("2.2.2.2"))
        assert encapsulation_depth(once) == 1
        twice = encapsulate(once, ip("3.3.3.3"), ip("4.4.4.4"))
        assert encapsulation_depth(twice) == 2

    def test_inner_of_plain_packet_raises(self):
        with pytest.raises(ValueError):
            make_packet().inner

    def test_ttl_decrement_copies(self):
        packet = make_packet()
        lower = packet.decremented()
        assert lower.ttl == packet.ttl - 1
        assert packet.ttl == 64  # original untouched

    def test_describe_shows_tunnel_nesting(self):
        outer = encapsulate(make_packet(), ip("36.8.0.50"), ip("36.135.0.1"))
        text = outer.describe()
        assert "IPIP" in text and "[" in text and "UDP" in text

    def test_packet_idents_are_unique(self):
        assert make_packet().ident != make_packet().ident
