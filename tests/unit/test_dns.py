"""Unit tests for the DNS substrate (the Section 8 release component)."""

import pytest

from repro.net.addressing import ip
from repro.net.dns import (
    DNSResolver,
    DNSServer,
    send_dynamic_update,
)
from repro.sim import ms, s


@pytest.fixture
def dns(lan):
    """Server on host b for zone mosquitonet.stanford.edu; resolver on a."""
    server = DNSServer(lan.b, "mosquitonet.stanford.edu")
    server.add_record("mh.mosquitonet.stanford.edu", ip("36.135.0.10"))
    resolver = DNSResolver(lan.a, ip("10.0.0.2"))
    return lan, server, resolver


def test_query_resolves_a_record(dns):
    lan, _server, resolver = dns
    answers = []
    resolver.resolve("mh.mosquitonet.stanford.edu", answers.append)
    lan.run(2000)
    assert answers == [ip("36.135.0.10")]


def test_names_are_case_insensitive_and_dot_tolerant(dns):
    lan, _server, resolver = dns
    answers = []
    resolver.resolve("MH.MosquitoNet.Stanford.EDU.", answers.append)
    lan.run(2000)
    assert answers == [ip("36.135.0.10")]


def test_nxdomain_yields_none(dns):
    lan, _server, resolver = dns
    answers = []
    resolver.resolve("nope.mosquitonet.stanford.edu", answers.append)
    lan.run(2000)
    assert answers == [None]


def test_cache_hit_avoids_the_wire(dns):
    lan, server, resolver = dns
    answers = []
    resolver.resolve("mh.mosquitonet.stanford.edu", answers.append)
    lan.run(2000)
    wire_queries = resolver.queries_sent
    resolver.resolve("mh.mosquitonet.stanford.edu", answers.append)
    lan.run(2000)
    assert answers == [ip("36.135.0.10")] * 2
    assert resolver.queries_sent == wire_queries
    assert resolver.cache_hits == 1


def test_cache_expires_with_ttl(dns):
    lan, server, resolver = dns
    server.add_record("short.mosquitonet.stanford.edu", ip("36.135.0.20"),
                      ttl=s(2))
    answers = []
    resolver.resolve("short.mosquitonet.stanford.edu", answers.append)
    lan.run(1000)
    lan.sim.run_for(s(3))
    wire_before = resolver.queries_sent
    resolver.resolve("short.mosquitonet.stanford.edu", answers.append)
    lan.run(2000)
    assert resolver.queries_sent == wire_before + 1  # cache was stale


def test_resolver_retransmits_then_gives_up(lan):
    resolver = DNSResolver(lan.a, ip("10.0.0.99"))  # no server there
    answers = []
    resolver.resolve("mh.mosquitonet.stanford.edu", answers.append)
    lan.sim.run_for(s(10))
    assert answers == [None]
    assert resolver.queries_sent == DNSResolver.MAX_ATTEMPTS


class TestDynamicUpdate:
    def test_authorized_update_changes_the_zone(self, dns):
        lan, server, resolver = dns
        server.allow_updates_from(ip("10.0.0.1"))
        acks = []
        send_dynamic_update(lan.a, ip("10.0.0.2"),
                            "new.mosquitonet.stanford.edu",
                            ip("36.135.0.30"), on_ack=acks.append)
        lan.run(2000)
        assert acks == [True]
        assert server.lookup("new.mosquitonet.stanford.edu").address == \
            ip("36.135.0.30")
        assert server.updates_applied == 1

    def test_unauthorized_update_refused(self, dns):
        lan, server, _resolver = dns
        acks = []
        send_dynamic_update(lan.a, ip("10.0.0.2"),
                            "evil.mosquitonet.stanford.edu",
                            ip("6.6.6.6"), on_ack=acks.append)
        lan.run(2000)
        assert acks == [False]
        assert server.lookup("evil.mosquitonet.stanford.edu") is None
        assert server.updates_refused == 1

    def test_out_of_zone_update_refused(self, dns):
        lan, server, _resolver = dns
        server.allow_updates_from(ip("10.0.0.1"))
        acks = []
        send_dynamic_update(lan.a, ip("10.0.0.2"), "victim.example.com",
                            ip("6.6.6.6"), on_ack=acks.append)
        lan.run(2000)
        assert acks == [False]

    def test_delete_via_none_address(self, dns):
        lan, server, _resolver = dns
        server.allow_updates_from(ip("10.0.0.1"))
        acks = []
        send_dynamic_update(lan.a, ip("10.0.0.2"),
                            "mh.mosquitonet.stanford.edu", None,
                            on_ack=acks.append)
        lan.run(2000)
        assert acks == [True]
        assert server.lookup("mh.mosquitonet.stanford.edu") is None


def test_name_to_mobile_host_end_to_end(testbed):
    """The architectural point: applications resolve a *name* to the
    stable home address, then mobility is someone else's problem."""
    from repro.workloads import UdpEchoResponder, UdpEchoStream

    server = DNSServer(testbed.home_agent_host, "mosquitonet.stanford.edu")
    server.add_record("mh.mosquitonet.stanford.edu",
                      testbed.addresses.mh_home)
    resolver = DNSResolver(testbed.correspondent,
                           testbed.home_agent.address)
    testbed.visit_dept()
    testbed.sim.run_for(s(1))

    UdpEchoResponder(testbed.mobile)
    streams = []

    def connected(address):
        assert address == testbed.addresses.mh_home
        stream = UdpEchoStream(testbed.correspondent, address,
                               interval=ms(100))
        stream.start()
        streams.append(stream)

    resolver.resolve("mh.mosquitonet.stanford.edu", connected)
    testbed.sim.run_for(s(2))
    streams[0].stop()
    testbed.sim.run_for(s(1))
    assert streams[0].received == streams[0].sent
