"""Unit/smoke tests for the repro.bench package."""

import json

from repro.bench.baseline import BaselineSimulator
from repro.bench.engine_bench import _run_workload
from repro.bench.guard import (
    CACHE_METRIC_PREFIX,
    canonical_json,
    strip_cache_metrics,
)
from repro.sim import Simulator


class TestEngineWorkload:
    def test_all_engines_dispatch_identical_event_counts(self):
        results = [
            _run_workload(BaselineSimulator(), 3_000),
            _run_workload(Simulator(scheduler="heap"), 3_000),
            _run_workload(Simulator(scheduler="wheel"), 3_000),
        ]
        counts = {r["events_run"] for r in results}
        assert len(counts) == 1
        assert counts.pop() >= 3_000

    def test_workload_reports_sane_figures(self):
        result = _run_workload(Simulator(), 2_000)
        assert result["wall_ns"] > 0
        assert result["ns_per_event"] > 0
        assert result["events_per_sec"] > 0

    def test_baseline_replica_dispatch_counters_match_current(self):
        baseline = BaselineSimulator()
        current = Simulator()
        _run_workload(baseline, 2_000)
        _run_workload(current, 2_000)
        assert baseline.metrics.snapshot() == current.metrics.snapshot()


class TestGuardHelpers:
    def test_strip_cache_metrics_drops_only_diagnostics(self):
        snapshot = {
            f"{CACHE_METRIC_PREFIX}{{host=mh,result=hit}}": 9,
            f"{CACHE_METRIC_PREFIX}{{host=mh,result=miss}}": 2,
            "policy/lookups{host=mh,mode=tunnel,result=hit}": 11,
            "ip/packets_sent{host=mh}": 40,
        }
        stripped = strip_cache_metrics(snapshot)
        assert stripped == {
            "policy/lookups{host=mh,mode=tunnel,result=hit}": 11,
            "ip/packets_sent{host=mh}": 40,
        }

    def test_canonical_json_is_order_insensitive_and_compact(self):
        a = canonical_json({"b": 1, "a": 2})
        b = canonical_json({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'
        assert json.loads(a) == {"a": 2, "b": 1}


class TestAuditedChurnStage:
    def test_quick_stage_gates_and_reports(self):
        from repro.bench.fleet_bench import run_audited_churn_stage

        doc = run_audited_churn_stage(quick=True)
        assert doc["violations"] == 0
        assert doc["rerun_identical"]
        assert doc["faults_injected"] == 4
        assert doc["registrations"] > 0
        assert doc["takeovers"] > 0
