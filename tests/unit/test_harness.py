"""Unit tests for the experiment harness utilities."""

import pytest

from repro.experiments.harness import (
    Stats,
    format_histogram,
    format_table,
    histogram,
    spread_phases,
    summarize,
    summarize_ms,
)
from repro.sim import ms


class TestSummarize:
    def test_empty_input(self):
        stats = summarize([])
        assert stats.count == 0
        assert stats.mean == 0.0 and stats.std == 0.0

    def test_single_value_has_zero_std(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 7.0

    def test_known_distribution(self):
        stats = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        # Sample std of this classic example is ~2.138.
        assert stats.std == pytest.approx(2.138, abs=0.01)
        assert stats.minimum == 2.0 and stats.maximum == 9.0

    def test_summarize_ms_converts_nanoseconds(self):
        stats = summarize_ms([ms(5), ms(7)])
        assert stats.mean == pytest.approx(6.0)

    def test_format_ms_is_paper_style(self):
        stats = Stats(count=10, mean=7.392, std=0.181, minimum=7.0,
                      maximum=7.8)
        assert stats.format_ms() == "7.39 (0.18)"


class TestHistogram:
    def test_counts_occurrences_sorted(self):
        assert histogram([1, 0, 1, 4, 0, 0]) == {0: 3, 1: 2, 4: 1}

    def test_format_histogram_bars(self):
        text = format_histogram({0: 3, 1: 1})
        assert "0 packets lost: ### (3)" in text
        assert "1 packets lost: # (1)" in text

    def test_format_empty_histogram(self):
        assert format_histogram({}) == "(no data)"


class TestFormatTable:
    def test_columns_align(self):
        text = format_table(("name", "value"),
                            [("short", 1), ("a-much-longer-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        header, rule = lines[0], lines[1]
        assert header.startswith("name")
        assert set(rule) <= {"-", " "}
        # Every "value" column starts at the same offset.
        offset = header.index("value")
        assert lines[2][offset - 1] == " "

    def test_handles_non_string_cells(self):
        text = format_table(("a",), [(3.14,), (None,)])
        assert "3.14" in text and "None" in text


class TestSpreadPhases:
    def test_phases_cover_one_interval_uniformly(self):
        phases = spread_phases(10, ms(10), base_ns=ms(100))
        assert len(phases) == 10
        assert phases[0] == ms(100)
        assert phases[-1] == ms(100) + 9 * ms(10) // 10
        deltas = [b - a for a, b in zip(phases, phases[1:])]
        assert all(delta == ms(1) for delta in deltas)

    def test_single_iteration(self):
        assert spread_phases(1, ms(10), base_ns=0) == [0]
