"""Unit tests for the experiment harness utilities."""

import pytest

from repro.experiments.harness import (
    Stats,
    Welford,
    format_histogram,
    format_table,
    histogram,
    merge_stats,
    spread_phases,
    summarize,
    summarize_ms,
)
from repro.sim import ms


class TestSummarize:
    def test_empty_input(self):
        stats = summarize([])
        assert stats.count == 0
        assert stats.mean == 0.0 and stats.std == 0.0

    def test_single_value_has_zero_std(self):
        stats = summarize([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 7.0

    def test_known_distribution(self):
        stats = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        # Sample std of this classic example is ~2.138.
        assert stats.std == pytest.approx(2.138, abs=0.01)
        assert stats.minimum == 2.0 and stats.maximum == 9.0

    def test_summarize_ms_converts_nanoseconds(self):
        stats = summarize_ms([ms(5), ms(7)])
        assert stats.mean == pytest.approx(6.0)

    def test_format_ms_is_paper_style(self):
        stats = Stats(count=10, mean=7.392, std=0.181, minimum=7.0,
                      maximum=7.8)
        assert stats.format_ms() == "7.39 (0.18)"


class TestWelford:
    def test_matches_two_pass_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = Welford().add_many(values).finalize()
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.std == pytest.approx(variance ** 0.5)
        assert stats.minimum == 2.0 and stats.maximum == 9.0

    def test_empty_finalizes_to_zero_stats(self):
        stats = Welford().finalize()
        assert stats == Stats(count=0, mean=0.0, std=0.0,
                              minimum=0.0, maximum=0.0)

    def test_merge_equals_single_accumulator(self):
        left_values = [1.0, 2.0, 3.5, 10.0]
        right_values = [-4.0, 7.25, 0.5]
        merged = Welford().add_many(left_values).merge(
            Welford().add_many(right_values)).finalize()
        combined = Welford().add_many(left_values + right_values).finalize()
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.std == pytest.approx(combined.std)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty_sides(self):
        values = [3.0, 4.0]
        assert Welford().merge(
            Welford().add_many(values)).finalize().count == 2
        assert Welford().add_many(values).merge(
            Welford()).finalize().count == 2

    def test_merge_stats_recovers_partial(self):
        shard = summarize([5.0, 6.0, 9.0])
        merged = Welford().add_many([1.0, 2.0]).merge_stats(shard).finalize()
        direct = summarize([1.0, 2.0, 5.0, 6.0, 9.0])
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.std == pytest.approx(direct.std)
        assert merged.count == 5


class TestMergeStats:
    def test_merges_shard_summaries(self):
        shards = [[2.0, 4.0, 4.0], [4.0, 5.0], [5.0, 7.0, 9.0]]
        merged = merge_stats([summarize(shard) for shard in shards])
        direct = summarize([v for shard in shards for v in shard])
        assert merged.count == direct.count == 8
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.std == pytest.approx(direct.std)
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum

    def test_single_part_is_returned_unchanged(self):
        part = summarize([1.5, 2.5, 8.0])
        assert merge_stats([part]) is part

    def test_empty_parts_are_skipped(self):
        part = summarize([3.0])
        assert merge_stats([summarize([]), part, summarize([])]) is part
        assert merge_stats([]).count == 0


class TestHistogram:
    def test_counts_occurrences_sorted(self):
        assert histogram([1, 0, 1, 4, 0, 0]) == {0: 3, 1: 2, 4: 1}

    def test_format_histogram_bars(self):
        text = format_histogram({0: 3, 1: 1})
        assert "0 packets lost: ### (3)" in text
        assert "1 packets lost: # (1)" in text

    def test_format_empty_histogram(self):
        assert format_histogram({}) == "(no data)"


class TestFormatTable:
    def test_columns_align(self):
        text = format_table(("name", "value"),
                            [("short", 1), ("a-much-longer-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        header, rule = lines[0], lines[1]
        assert header.startswith("name")
        assert set(rule) <= {"-", " "}
        # Every "value" column starts at the same offset.
        offset = header.index("value")
        assert lines[2][offset - 1] == " "

    def test_handles_non_string_cells(self):
        text = format_table(("a",), [(3.14,), (None,)])
        assert "3.14" in text and "None" in text


class TestSpreadPhases:
    def test_phases_cover_one_interval_uniformly(self):
        phases = spread_phases(10, ms(10), base_ns=ms(100))
        assert len(phases) == 10
        assert phases[0] == ms(100)
        assert phases[-1] == ms(100) + 9 * ms(10) // 10
        deltas = [b - a for a, b in zip(phases, phases[1:])]
        assert all(delta == ms(1) for delta in deltas)

    def test_single_iteration(self):
        assert spread_phases(1, ms(10), base_ns=0) == [0]
