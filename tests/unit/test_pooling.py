"""Event-pool and packet-arena safety: recycling must never leak state."""

import pytest

from repro.net.addressing import IPAddress
from repro.net.packet import (
    PROTO_UDP,
    AppData,
    IPPacket,
    UDPDatagram,
    arena_enabled,
    release,
    set_arena_enabled,
)
from repro.sim.arena import ARENA_CAP, arena_stats
from repro.sim.engine import Simulator

SRC = IPAddress.parse("36.135.0.10")
DST = IPAddress.parse("36.8.0.20")


@pytest.fixture(autouse=True)
def fresh_arenas():
    """Drain every packet arena before and after each test (pools are
    process-global, and these tests inspect their exact contents)."""
    set_arena_enabled(False)
    set_arena_enabled(True)
    yield
    set_arena_enabled(False)
    set_arena_enabled(True)


# ------------------------------------------------------------- event pool

def test_post_events_recycle_with_callback_cleared():
    sim = Simulator()
    sim.post_later(10, lambda: None, "a")
    sim.post_later(20, lambda: None, "b")
    sim.run()
    assert len(sim._event_pool) == 2
    for event in sim._event_pool:
        # A pooled event holding its old callback would pin the closure
        # (and everything it captures) alive — the classic arena leak.
        assert event.callback is None
        assert event._owner is None


def test_recycled_event_runs_only_its_new_callback():
    sim = Simulator()
    ran = []
    sim.post_later(10, lambda: ran.append("first"))
    sim.run()
    recycled = sim._event_pool[0]
    sim.post_later(10, lambda: ran.append("second"))
    assert sim._event_pool == []  # the pooled event was reused...
    sim.run()
    assert ran == ["first", "second"]  # ...and ran the new callback once
    assert sim._event_pool == [recycled]


def test_call_at_events_are_never_pooled():
    sim = Simulator()
    handle = sim.call_at(10, lambda: None)
    sim.call_later(20, lambda: None)
    sim.run()
    # Handles escape to callers (handle.cancel() must stay valid), so
    # call_at/call_later events are excluded from recycling.
    assert sim._event_pool == []
    assert not handle.cancelled


def test_cancelled_events_are_not_pooled():
    sim = Simulator()
    sim.call_later(10, lambda: None).cancel()
    sim.post_later(20, lambda: None)
    sim.run()
    assert len(sim._event_pool) == 1  # only the post event recycled


def test_pooling_off_disables_the_event_pool():
    sim = Simulator(pooling=False)
    sim.post_later(10, lambda: None)
    sim.run()
    assert sim._event_pool == []
    assert sim.profile()["pooling"] is False


def test_pool_reuses_surface_in_profile():
    sim = Simulator()
    sim.post_later(10, lambda: None)
    sim.run()
    sim.post_later(10, lambda: None)
    sim.run()
    profile = sim.profile()
    assert profile["event_pool"]["reuses"] == 1
    assert sim.metrics.counter("engine", "pool_reuses").value == 1


def test_unprofiled_snapshot_has_no_pool_counter():
    sim = Simulator()
    sim.post_later(10, lambda: None)
    sim.run()
    sim.post_later(10, lambda: None)
    sim.run()
    # The lazy counter only materialises via profile(); a plain snapshot
    # stays byte-identical to an unpooled run.
    assert "engine/pool_reuses" not in sim.metrics.snapshot()


# ---------------------------------------------------------- packet arenas

def _packet(ident=1):
    return IPPacket(SRC, DST, PROTO_UDP, UDPDatagram(7, 9, AppData(None, 64)),
                    ident=ident)


def test_release_recycles_a_solo_reference():
    packet = _packet()
    assert release(packet, held=1) is True
    assert arena_stats()["IPPacket"]["free"] == 1


def test_release_vetoes_when_another_reference_exists():
    packet = _packet()
    alias = packet  # noqa: F841 - the extra reference under test
    assert release(packet, held=1) is False
    assert arena_stats()["IPPacket"]["free"] == 0


def test_double_release_is_self_protecting():
    packet = _packet()
    assert release(packet, held=1) is True
    # The pool's own reference now raises the refcount past the guard, so
    # a buggy second release cannot create a double-free.
    assert release(packet, held=1) is False
    assert arena_stats()["IPPacket"]["free"] == 1


def test_release_clears_reference_slots():
    packet = _packet()
    release(packet, held=1)
    pooled = IPPacket._pool[-1]
    assert pooled.src is None and pooled.dst is None and pooled.payload is None


def test_acquire_reuses_and_fully_reinitialises():
    release(_packet(ident=1), held=1)
    pooled = IPPacket._pool[-1]
    fresh = IPPacket.acquire(DST, SRC, PROTO_UDP, AppData(None, 100),
                             ttl=9, ident=42)
    assert fresh is pooled
    assert (fresh.src, fresh.dst, fresh.ttl, fresh.ident) == (DST, SRC, 9, 42)
    assert fresh.size_bytes == 20 + 100
    assert fresh == IPPacket(DST, SRC, PROTO_UDP, AppData(None, 100),
                             ttl=9, ident=42)


def test_acquire_validation_matches_constructor():
    release(UDPDatagram(7, 9), held=1)
    with pytest.raises(ValueError):
        UDPDatagram.acquire(-1, 9)
    with pytest.raises(ValueError):
        AppData.acquire(None, -5)


def test_disabled_arena_never_recycles():
    set_arena_enabled(False)
    assert not arena_enabled()
    packet = _packet()
    assert release(packet, held=1) is False
    assert arena_stats()["IPPacket"]["free"] == 0
    fresh = IPPacket.acquire(SRC, DST, PROTO_UDP, AppData(None, 1))
    assert isinstance(fresh, IPPacket)  # acquire still works, unpooled


def test_disabling_drains_existing_pools():
    release(_packet(), held=1)
    assert arena_stats()["IPPacket"]["free"] == 1
    set_arena_enabled(False)
    set_arena_enabled(True)
    assert arena_stats()["IPPacket"]["free"] == 0


def test_pool_is_capped():
    for i in range(ARENA_CAP + 10):
        release(AppData(None, i), held=1)
    assert arena_stats()["AppData"]["free"] == ARENA_CAP
