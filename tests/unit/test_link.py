"""Unit tests for the link media: Ethernet, point-to-point, radio."""

import pytest

from repro.config import DEFAULT_CONFIG, LinkTimings
from repro.net.addressing import ip
from repro.net.packet import AppData, IPPacket, PROTO_UDP, UDPDatagram
from repro.net.link import PointToPointLink, RadioChannel
from repro.sim import MBPS, Simulator, ms, us


def make_packet(size=100, src="1.1.1.1", dst="2.2.2.2"):
    return IPPacket(src=ip(src), dst=ip(dst), protocol=PROTO_UDP,
                    payload=UDPDatagram(1, 2, AppData("x", size - 28)))


class FakeEndpoint:
    def __init__(self):
        self.received = []

    def deliver_from_link(self, packet):
        self.received.append(packet)


class TestPointToPoint:
    def test_delivery_with_latency_and_serialization(self):
        sim = Simulator()
        link = PointToPointLink(sim, "p2p",
                                LinkTimings(latency=ms(1), bandwidth_bps=MBPS))
        a, b = FakeEndpoint(), FakeEndpoint()
        link.connect(a)
        link.connect(b)
        packet = make_packet(125)  # 125 B at 1 Mbit/s = 1 ms
        link.transmit(packet, a)
        sim.run_for(ms(1.9))
        assert b.received == []
        sim.run_for(ms(0.2))
        assert b.received == [packet]
        assert a.received == []

    def test_serialization_queues_fifo(self):
        sim = Simulator()
        link = PointToPointLink(sim, "p2p",
                                LinkTimings(latency=0, bandwidth_bps=MBPS))
        a, b = FakeEndpoint(), FakeEndpoint()
        link.connect(a)
        link.connect(b)
        first, second = make_packet(125), make_packet(125)
        link.transmit(first, a)
        link.transmit(second, a)
        sim.run_for(ms(1.5))
        assert b.received == [first]
        sim.run_for(ms(1))
        assert b.received == [first, second]

    def test_directions_are_independent(self):
        sim = Simulator()
        link = PointToPointLink(sim, "p2p",
                                LinkTimings(latency=0, bandwidth_bps=MBPS))
        a, b = FakeEndpoint(), FakeEndpoint()
        link.connect(a)
        link.connect(b)
        link.transmit(make_packet(125), a)
        link.transmit(make_packet(125), b)
        sim.run_for(ms(1.2))
        # Full duplex: both arrive after one serialization, not two.
        assert len(a.received) == 1 and len(b.received) == 1

    def test_third_endpoint_rejected(self):
        sim = Simulator()
        link = PointToPointLink(sim, "p2p", DEFAULT_CONFIG.backbone)
        link.connect(FakeEndpoint())
        link.connect(FakeEndpoint())
        with pytest.raises(ValueError):
            link.connect(FakeEndpoint())

    def test_unknown_sender_rejected(self):
        sim = Simulator()
        link = PointToPointLink(sim, "p2p", DEFAULT_CONFIG.backbone)
        link.connect(FakeEndpoint())
        with pytest.raises(ValueError):
            link.transmit(make_packet(), FakeEndpoint())

    def test_lossy_link_drops(self):
        sim = Simulator()
        link = PointToPointLink(sim, "p2p",
                                LinkTimings(latency=0, bandwidth_bps=0,
                                            loss_rate=1.0))
        a, b = FakeEndpoint(), FakeEndpoint()
        link.connect(a)
        link.connect(b)
        link.transmit(make_packet(), a)
        sim.run_for(ms(10))
        assert b.received == []
        assert link.frames_dropped == 1


class FakeRadio:
    def __init__(self):
        self.received = []

    def deliver_from_radio(self, packet):
        self.received.append(packet)


class TestRadioChannel:
    def _channel(self, sim, loss=0.0):
        return RadioChannel(sim, "air",
                            LinkTimings(latency=ms(10), bandwidth_bps=MBPS,
                                        loss_rate=loss))

    def test_unicast_by_published_address(self):
        sim = Simulator()
        channel = self._channel(sim)
        a, b = FakeRadio(), FakeRadio()
        channel.attach(a)  # type: ignore[arg-type]
        channel.attach(b)  # type: ignore[arg-type]
        channel.publish(ip("36.134.0.77"), b)  # type: ignore[arg-type]
        packet = make_packet(dst="36.134.0.77")
        channel.transmit(packet, ip("36.134.0.77"), a)  # type: ignore[arg-type]
        sim.run_for(ms(20))
        assert b.received == [packet]
        assert a.received == []

    def test_unpublished_address_vanishes(self):
        sim = Simulator()
        channel = self._channel(sim)
        a = FakeRadio()
        channel.attach(a)  # type: ignore[arg-type]
        channel.transmit(make_packet(), ip("36.134.0.99"), a)  # type: ignore[arg-type]
        sim.run_for(ms(20))
        assert channel.frames_dropped == 1
        assert sim.trace.select("link", "radio_unreachable")

    def test_withdraw_makes_address_unreachable(self):
        sim = Simulator()
        channel = self._channel(sim)
        a, b = FakeRadio(), FakeRadio()
        channel.attach(a)  # type: ignore[arg-type]
        channel.attach(b)  # type: ignore[arg-type]
        channel.publish(ip("36.134.0.77"), b)  # type: ignore[arg-type]
        channel.withdraw(ip("36.134.0.77"))
        channel.transmit(make_packet(), ip("36.134.0.77"), a)  # type: ignore[arg-type]
        sim.run_for(ms(20))
        assert b.received == []

    def test_broadcast_reaches_all_but_sender(self):
        sim = Simulator()
        channel = self._channel(sim)
        radios = [FakeRadio() for _ in range(3)]
        for radio in radios:
            channel.attach(radio)  # type: ignore[arg-type]
        channel.transmit(make_packet(), ip("255.255.255.255"), radios[0])  # type: ignore[arg-type]
        sim.run_for(ms(20))
        assert radios[0].received == []
        assert len(radios[1].received) == 1
        assert len(radios[2].received) == 1

    def test_detach_withdraws_addresses(self):
        sim = Simulator()
        channel = self._channel(sim)
        a, b = FakeRadio(), FakeRadio()
        channel.attach(a)  # type: ignore[arg-type]
        channel.attach(b)  # type: ignore[arg-type]
        channel.publish(ip("36.134.0.77"), b)  # type: ignore[arg-type]
        channel.detach(b)  # type: ignore[arg-type]
        channel.transmit(make_packet(), ip("36.134.0.77"), a)  # type: ignore[arg-type]
        sim.run_for(ms(20))
        assert b.received == []

    def test_shared_air_serializes_all_senders(self):
        sim = Simulator()
        channel = RadioChannel(sim, "air",
                               LinkTimings(latency=0, bandwidth_bps=MBPS))
        a, b, c = FakeRadio(), FakeRadio(), FakeRadio()
        for radio in (a, b, c):
            channel.attach(radio)  # type: ignore[arg-type]
        channel.publish(ip("36.134.0.3"), c)  # type: ignore[arg-type]
        # Two senders transmit simultaneously: the second waits for the air.
        channel.transmit(make_packet(125), ip("36.134.0.3"), a)  # type: ignore[arg-type]
        channel.transmit(make_packet(125), ip("36.134.0.3"), b)  # type: ignore[arg-type]
        sim.run_for(ms(1.5))
        assert len(c.received) == 1
        sim.run_for(ms(1))
        assert len(c.received) == 2
