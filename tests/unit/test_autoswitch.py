"""Unit tests for the connectivity manager (Section 6's 'when to switch')."""

import pytest

from repro.core.autoswitch import AttachmentOption, ConnectivityManager
from repro.net.addressing import ip
from repro.sim import ms, s
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


@pytest.fixture
def managed(testbed):
    """MH visiting the dept net over Ethernet, radio also up, manager
    provisioned with both options."""
    testbed.visit_dept()
    testbed.connect_radio(register=False)
    testbed.sim.run_for(s(1))
    manager = ConnectivityManager(testbed.mobile,
                                  probe_interval=ms(200),
                                  probe_timeout=ms(150))
    a = testbed.addresses
    manager.add_option(AttachmentOption(
        name="ethernet", interface=testbed.mh_eth,
        care_of=a.mh_dept_care_of, subnet=a.dept_net,
        gateway=a.router_dept))
    manager.add_option(AttachmentOption(
        name="radio", interface=testbed.mh_radio,
        care_of=a.mh_radio, subnet=a.radio_net, gateway=a.router_radio,
        # The real radio RTT (~200 ms) exceeds a snappy probe timeout, so
        # score/probe the radio with a generous timeout via its own score.
        score=1.0))
    return testbed, manager


def test_probing_marks_reachable_options_eligible(managed):
    testbed, manager = managed
    manager.probe_timeout = ms(600)
    manager.start()
    testbed.sim.run_for(s(3))
    assert manager.option("ethernet").eligible
    assert manager.option("radio").eligible
    assert manager.option("ethernet").probes_answered > 0


def test_prefers_highest_score_and_stays_there(managed):
    testbed, manager = managed
    manager.probe_timeout = ms(600)
    manager.start()
    testbed.sim.run_for(s(3))
    # Ethernet scores by bandwidth (10 Mbit/s) >> radio's explicit 1.0.
    assert manager.best_option().name == "ethernet"
    assert manager.current_option().name == "ethernet"
    # Already attached there: no switch was needed.
    assert manager.switches_performed == 0


def test_fails_over_when_current_network_dies(managed):
    testbed, manager = managed
    manager.probe_timeout = ms(600)
    manager.start()
    testbed.sim.run_for(s(3))
    assert manager.current_option().name == "ethernet"
    # The building's Ethernet dies.
    testbed.mh_eth.detach()
    testbed.sim.run_for(s(4))
    assert not manager.option("ethernet").eligible
    assert manager.current_option().name == "radio"
    assert manager.switches_performed == 1
    assert testbed.home_agent.current_care_of(HOME) == \
        testbed.addresses.mh_radio


def test_switches_back_when_better_network_returns(managed):
    testbed, manager = managed
    manager.probe_timeout = ms(600)
    manager.start()
    testbed.sim.run_for(s(3))
    testbed.mh_eth.detach()
    testbed.sim.run_for(s(4))
    assert manager.current_option().name == "radio"
    # Ethernet comes back.
    testbed.mh_eth.attach(testbed.dept_segment)
    testbed.sim.run_for(s(4))
    assert manager.current_option().name == "ethernet"
    assert manager.switches_performed == 2


def test_hysteresis_tolerates_single_probe_loss(managed):
    """One lost probe must not trigger a switch (down_threshold=2)."""
    testbed, manager = managed
    manager.probe_timeout = ms(600)
    manager.start()
    testbed.sim.run_for(s(3))
    option = manager.option("ethernet")
    # Simulate one lost probe.
    option.consecutive_failures = 1
    option.consecutive_successes = 0
    manager._apply_hysteresis(option)
    assert option.eligible
    assert manager.switches_performed == 0


def test_traffic_continues_across_automatic_failover(managed):
    """The paper's 'sufficient warning' scenario end-to-end: the manager
    hot-switches, so the stream sees only the failed network's gap."""
    testbed, manager = managed
    manager.probe_timeout = ms(600)
    manager.start()
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent, HOME, interval=ms(250))
    stream.start()
    testbed.sim.run_for(s(3))
    testbed.mh_eth.detach()
    testbed.sim.run_for(s(8))
    stream.stop()
    testbed.sim.run_for(s(3))
    assert manager.current_option().name == "radio"
    # Loss is bounded by the detection time (a few probe intervals), not
    # by any device bring-up: the radio was already hot.
    assert stream.lost_count() <= 8
    # And traffic genuinely resumed after the failover.
    post_switch_losses = stream.lost_sequences(since=s(7))
    assert post_switch_losses == []


def test_stop_halts_probing(managed):
    testbed, manager = managed
    manager.start()
    testbed.sim.run_for(s(1))
    manager.stop()
    sent_before = manager.option("ethernet").probes_sent
    testbed.sim.run_for(s(2))
    assert manager.option("ethernet").probes_sent == sent_before


def test_unknown_option_name_raises(managed):
    _testbed, manager = managed
    with pytest.raises(KeyError):
        manager.option("token-ring")
