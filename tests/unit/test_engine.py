"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, ms
from repro.sim.engine import SimulationError


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(ms(30), lambda: order.append("c"))
    sim.call_at(ms(10), lambda: order.append("a"))
    sim.call_at(ms(20), lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_run_fifo():
    sim = Simulator()
    order = []
    for index in range(10):
        sim.call_at(ms(5), lambda index=index: order.append(index))
    sim.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.call_at(ms(42), lambda: seen.append(sim.now))
    sim.run()
    assert seen == [ms(42)]


def test_call_later_is_relative_to_now():
    sim = Simulator()
    times = []

    def first():
        sim.call_later(ms(5), lambda: times.append(sim.now))

    sim.call_at(ms(10), first)
    sim.run()
    assert times == [ms(15)]


def test_cancelled_events_do_not_run():
    sim = Simulator()
    ran = []
    event = sim.call_at(ms(10), lambda: ran.append(1))
    event.cancel()
    sim.run()
    assert ran == []


def test_run_until_stops_and_tiles():
    sim = Simulator()
    ran = []
    sim.call_at(ms(10), lambda: ran.append("early"))
    sim.call_at(ms(100), lambda: ran.append("late"))
    sim.run(until=ms(50))
    assert ran == ["early"]
    assert sim.now == ms(50)
    sim.run(until=ms(150))
    assert ran == ["early", "late"]


def test_event_exactly_at_until_boundary_runs():
    sim = Simulator()
    ran = []
    sim.call_at(ms(50), lambda: ran.append(1))
    sim.run(until=ms(50))
    assert ran == [1]


def test_run_for_advances_duration():
    sim = Simulator()
    sim.run_for(ms(25))
    sim.run_for(ms(25))
    assert sim.now == ms(50)


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(ms(10), lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(ms(5), lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-1, lambda: None)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_at(ms(1), reenter)
    sim.run()
    assert len(errors) == 1


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def loop():
        sim.call_later(1, loop)

    sim.call_later(1, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_pending_counts_live_events():
    sim = Simulator()
    keep = sim.call_at(ms(10), lambda: None)
    gone = sim.call_at(ms(20), lambda: None)
    gone.cancel()
    assert sim.pending() == 1
    assert keep is not None


def test_rng_streams_are_independent_and_deterministic():
    sim1 = Simulator(seed=5)
    sim2 = Simulator(seed=5)
    a1 = [sim1.rng("a").random() for _ in range(5)]
    # Interleave another stream in sim2; stream "a" must not shift.
    rng_a = sim2.rng("a")
    rng_b = sim2.rng("b")
    a2 = []
    for _ in range(5):
        a2.append(rng_a.random())
        rng_b.random()
    assert a1 == a2


def test_rng_streams_differ_by_name_and_seed():
    sim = Simulator(seed=5)
    assert sim.rng("a").random() != sim.rng("b").random()
    other = Simulator(seed=6)
    assert Simulator(seed=5).rng("a").random() != other.rng("a").random()


def test_events_run_counter():
    sim = Simulator()
    for index in range(7):
        sim.call_at(ms(index), lambda: None)
    sim.run()
    assert sim.events_run == 7


def test_max_events_budget_is_per_call():
    """Regression: the budget used to compare against the lifetime total,

    so a simulation that had already run N events would trip
    ``run(max_events=N)`` immediately even if the new call only had a
    handful of events to dispatch.
    """
    sim = Simulator()
    for index in range(50):
        sim.call_at(ms(index), lambda: None)
    sim.run()
    assert sim.events_run == 50
    # A fresh run() gets a fresh budget: 10 events under a 20-event cap
    # must succeed despite the 50 already on the lifetime counter.
    for index in range(10):
        sim.call_at(ms(100 + index), lambda: None)
    sim.run(max_events=20)
    assert sim.events_run == 60


def test_max_events_exact_budget_is_allowed():
    sim = Simulator()
    for index in range(5):
        sim.call_at(ms(index), lambda: None)
    sim.run(max_events=5)  # exactly at the cap: fine
    assert sim.events_run == 5
