"""Unit tests for the IP layer: delivery, forwarding, hooks."""

import pytest

from repro.net.addressing import ip
from repro.net.packet import AppData, IPPacket, PROTO_UDP, UDPDatagram
from repro.net.routing import RouteResult
from repro.sim import ms


def datagram_packet(src, dst, port=9, size=10):
    return IPPacket(src=ip(src), dst=ip(dst), protocol=PROTO_UDP,
                    payload=UDPDatagram(5000, port, AppData("x", size)))


def test_local_delivery_and_demux(lan):
    got = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: got.append((d.content, str(s))))
    lan.a.udp.open(0).sendto(AppData("hello", 5), ip("10.0.0.2"), 9)
    lan.run()
    assert got == [("hello", "10.0.0.1")]


def test_send_to_own_address_loops_back(lan):
    got = []
    lan.a.udp.open(9).on_datagram(lambda d, s, sp, dst: got.append(d.content))
    lan.a.udp.open(0).sendto(AppData("self", 4), ip("10.0.0.1"), 9)
    lan.run()
    assert got == ["self"]


def test_no_route_is_counted(lan):
    lan.a.udp.open(0).sendto(AppData("x", 1), ip("99.0.0.1"), 9)
    lan.run()
    assert lan.a.ip.dropped_no_route == 1


def test_not_local_without_forwarding_drops(lan):
    packet = datagram_packet("10.0.0.1", "99.0.0.1")
    lan.b.ip.receive_packet(packet, lan.b.interfaces[1])
    assert lan.b.ip.dropped_not_local == 1


def test_forwarding_decrements_ttl(lan):
    lan.b.ip.forwarding = True
    seen = []
    third = lan.host("10.0.0.3")
    third.udp.open(9).on_datagram(lambda d, s, sp, dst: seen.append(d))
    packet = datagram_packet("10.0.0.1", "10.0.0.3")
    lan.b.ip.receive_packet(packet, lan.b.interfaces[1])
    lan.run()
    assert lan.b.ip.forwarded == 1


def test_ttl_expiry_drops_and_reports(lan):
    lan.b.ip.forwarding = True
    packet = IPPacket(src=ip("10.0.0.1"), dst=ip("10.0.0.3"),
                      protocol=PROTO_UDP,
                      payload=UDPDatagram(1, 2, AppData("x", 1)), ttl=1)
    lan.b.ip.receive_packet(packet, lan.b.interfaces[1])
    lan.run()
    assert lan.b.ip.dropped_ttl == 1
    # The sender hears about it via ICMP time exceeded.
    assert lan.sim.trace.select("icmp", "error_received", host="a")


def test_forward_filter_blocks(lan):
    lan.b.ip.forwarding = True
    lan.b.ip.forward_filter = lambda packet, iface: False
    lan.host("10.0.0.3")
    lan.b.ip.receive_packet(datagram_packet("10.0.0.1", "10.0.0.3"),
                            lan.b.interfaces[1])
    lan.run()
    assert lan.b.ip.dropped_filtered == 1
    assert lan.b.ip.forwarded == 0


def test_route_hook_takes_over(lan):
    calls = []
    loop = lan.a.loopback

    def hook(dst, src_hint, default):
        calls.append((dst, src_hint))
        return RouteResult(interface=loop, source=ip("10.0.0.1"))

    lan.a.ip.route_hook = hook
    got = []
    lan.a.udp.open(9).on_datagram(lambda d, s, sp, dst: got.append(d.content))
    lan.a.udp.open(0).sendto(AppData("looped", 6), ip("10.0.0.2"), 9)
    lan.run()
    assert calls
    # The hook redirected the send into the loopback; nothing on the wire.
    assert lan.b.udp.datagrams_dropped_no_port == 0


def test_route_hook_none_falls_through(lan):
    lan.a.ip.route_hook = lambda dst, src_hint, default: None
    got = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: got.append(d.content))
    lan.a.udp.open(0).sendto(AppData("thru", 4), ip("10.0.0.2"), 9)
    lan.run()
    assert got == ["thru"]


def test_duplicate_protocol_registration_rejected(lan):
    with pytest.raises(ValueError):
        lan.a.ip.register_protocol(PROTO_UDP, lambda packet, iface: None)


def test_unknown_protocol_is_traced_not_fatal(lan):
    packet = IPPacket(src=ip("10.0.0.2"), dst=ip("10.0.0.1"), protocol=99,
                      payload=AppData("?", 4))
    lan.a.ip.receive_packet(packet, lan.a.interfaces[1])
    assert lan.sim.trace.select("ip", "no_protocol", host="a")


def test_next_hop_via_on_link_and_gateway(lan):
    iface = lan.a.interfaces[1]
    # On-link destination: next hop is the destination itself.
    assert lan.a.ip._next_hop_via(ip("10.0.0.7"), iface) == ip("10.0.0.7")
    # Off-link with a default gateway on the interface.
    lan.a.ip.routes.add_default(iface, gateway=ip("10.0.0.254"))
    assert lan.a.ip._next_hop_via(ip("99.0.0.1"), iface) == ip("10.0.0.254")
    # Broadcast goes direct.
    assert lan.a.ip._next_hop_via(ip("255.255.255.255"), iface).is_limited_broadcast


def test_next_hop_via_prefers_specific_host_route(lan):
    iface = lan.a.interfaces[1]
    lan.a.ip.routes.add_default(iface, gateway=ip("10.0.0.254"))
    lan.a.ip.routes.add_host_route(ip("99.0.0.1"), iface,
                                   gateway=ip("10.0.0.9"))
    assert lan.a.ip._next_hop_via(ip("99.0.0.1"), iface) == ip("10.0.0.9")


def test_source_selection_uses_interface_primary(lan):
    route = lan.a.ip.ip_rt_route(ip("10.0.0.2"))
    assert route is not None
    assert route.source == ip("10.0.0.1")


def test_source_hint_is_respected(lan):
    route = lan.a.ip.ip_rt_route(ip("10.0.0.2"), ip("10.0.0.42"))
    assert route.source == ip("10.0.0.42")
