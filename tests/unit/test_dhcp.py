"""Unit tests for DHCP: the care-of address supply chain."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import ip, subnet
from repro.net.dhcp import DHCPClient, DHCPServer
from repro.net.host import Host
from repro.net.interface import EthernetInterface, InterfaceState
from repro.sim import ms, s


@pytest.fixture
def dhcp_lan(lan):
    """The shared LAN plus a DHCP server on host b (pool .100-.102)."""
    server = DHCPServer(lan.b, lan.b.interfaces[1], lan.net,
                        first_host=100, last_host=102,
                        gateway=ip("10.0.0.1"))
    return lan, server


def make_client(lan, name="newcomer"):
    host = Host(lan.sim, name, DEFAULT_CONFIG)
    iface = EthernetInterface(lan.sim, f"eth.{name}", lan.macs.allocate(),
                              DEFAULT_CONFIG)
    host.add_interface(iface)
    iface.attach(lan.segment)
    iface.state = InterfaceState.UP
    return DHCPClient(host, iface, client_id=name), iface


def test_full_handshake_binds_an_address(dhcp_lan):
    lan, server = dhcp_lan
    client, _iface = make_client(lan)
    leases = []
    client.acquire(on_bound=leases.append)
    lan.run(2000)
    assert leases
    lease = leases[0]
    assert lease.address == ip("10.0.0.100")
    assert lease.subnet == lan.net
    assert lease.gateway == ip("10.0.0.1")
    assert server.lease_for("newcomer").address == lease.address


def test_two_clients_get_distinct_addresses(dhcp_lan):
    lan, server = dhcp_lan
    client1, _ = make_client(lan, "one")
    client2, _ = make_client(lan, "two")
    leases = []
    client1.acquire(on_bound=leases.append)
    lan.run(2000)
    client2.acquire(on_bound=leases.append)
    lan.run(2000)
    assert len(leases) == 2
    assert leases[0].address != leases[1].address
    assert len(server.active_leases()) == 2


def test_release_returns_address_to_back_of_pool(dhcp_lan):
    """Section 5.1: avoid reassigning a released address for as long as
    possible — the free list is a FIFO."""
    lan, server = dhcp_lan
    client, _ = make_client(lan)
    leases = []
    client.acquire(on_bound=leases.append)
    lan.run(2000)
    released = leases[0].address
    client.release()
    lan.run(500)
    assert server.free_addresses()[-1] == released  # back of the queue
    # The next two clients exhaust the rest of the pool before reuse.
    other1, _ = make_client(lan, "o1")
    other2, _ = make_client(lan, "o2")
    got = []
    other1.acquire(on_bound=got.append)
    lan.run(2000)
    other2.acquire(on_bound=got.append)
    lan.run(2000)
    assert released not in [lease.address for lease in got]


def test_reacquire_same_client_renews_in_place(dhcp_lan):
    lan, server = dhcp_lan
    client, _ = make_client(lan)
    leases = []
    client.acquire(on_bound=leases.append)
    lan.run(2000)
    client.acquire(on_bound=leases.append)
    lan.run(2000)
    assert leases[0].address == leases[1].address
    assert len(server.active_leases()) == 1


def test_pool_exhaustion_fails_gracefully(dhcp_lan):
    lan, _server = dhcp_lan
    winners = []
    for index in range(3):
        client, _ = make_client(lan, f"c{index}")
        client.acquire(on_bound=winners.append)
        lan.run(2000)
    unlucky, _ = make_client(lan, "unlucky")
    failures = []
    unlucky.acquire(on_bound=lambda lease: failures.append("bound"),
                    on_failed=lambda: failures.append("failed"))
    lan.run(6000)
    assert len(winners) == 3
    assert failures == ["failed"]


def test_acquire_timeout_without_server(lan):
    client, _ = make_client(lan)
    outcomes = []
    client.acquire(on_bound=lambda lease: outcomes.append("bound"),
                   on_failed=lambda: outcomes.append("failed"),
                   timeout=ms(1500))
    lan.run(5000)
    assert outcomes == ["failed"]


def test_lease_renewal_is_unicast_local_role(dhcp_lan):
    """Renewal happens at half the lease time, unicast from the leased
    address (the paper's canonical local-role traffic)."""
    lan, server = dhcp_lan
    client, _iface = make_client(lan)
    client.acquire(on_bound=lambda lease: None)
    lan.run(2000)
    first_expiry = server.lease_for("newcomer").expires_at
    lan.sim.run_for(DEFAULT_CONFIG.dhcp_lease_time // 2 + s(1))
    renewed_expiry = server.lease_for("newcomer").expires_at
    assert renewed_expiry > first_expiry


def test_renew_honors_configured_timeout(dhcp_lan):
    """Regression: renewals used to wait a hard-coded 4 s regardless of
    the timeout passed to acquire()."""
    lan, server = dhcp_lan
    client, _iface = make_client(lan)
    bound_at = []
    client.acquire(on_bound=lambda lease: bound_at.append(lan.sim.now),
                   timeout=ms(1000))
    lan.run(2000)
    assert bound_at
    server.online = False  # every renewal request now falls on the floor
    renew_at = bound_at[0] + DEFAULT_CONFIG.dhcp_lease_time // 2
    lan.sim.run(until=renew_at + ms(500))
    assert client.renew_failures == 0  # configured timeout not yet reached
    lan.sim.run_for(ms(700))           # now past the 1 s timeout
    assert client.renew_failures == 1  # ...but well short of the old 4 s


def test_failed_renew_rearms_and_recovers(dhcp_lan):
    """A timed-out renewal retries at half the remaining lifetime and
    succeeds once the server is reachable again."""
    lan, server = dhcp_lan
    client, _iface = make_client(lan)
    bound_at = []
    client.acquire(on_bound=lambda lease: bound_at.append(lan.sim.now),
                   timeout=ms(1000))
    lan.run(2000)
    server.online = False
    lease_time = DEFAULT_CONFIG.dhcp_lease_time
    lan.sim.run(until=bound_at[0] + lease_time // 2 + ms(1500))
    assert client.renew_failures >= 1
    assert client.lease is not None  # still within the lease: not lost
    server.online = True
    first_expiry = server.lease_for("newcomer").expires_at
    # The retry at half the remaining lifetime lands within lease_time//4.
    lan.sim.run_for(lease_time // 4 + s(2))
    assert server.lease_for("newcomer").expires_at > first_expiry
    assert client.lease is not None


def test_lease_lost_fires_when_lease_expires_unrenewed(dhcp_lan):
    lan, server = dhcp_lan
    client, _iface = make_client(lan)
    lost = []
    client.on_lease_lost = lambda: lost.append(lan.sim.now)
    client.acquire(on_bound=lambda lease: None, timeout=ms(1000))
    lan.run(2000)
    server.online = False  # server gone for good
    lan.sim.run_for(DEFAULT_CONFIG.dhcp_lease_time + s(10))
    assert lost
    assert client.lease is None
    from repro.net.dhcp import DHCPClientState
    assert client.state == DHCPClientState.IDLE


def test_expired_leases_are_reclaimed(dhcp_lan):
    lan, server = dhcp_lan
    client, _ = make_client(lan)
    client.acquire(on_bound=lambda lease: None)
    lan.run(2000)
    client._cancel_renewal()  # simulate a client that vanished
    lan.sim.run_for(DEFAULT_CONFIG.dhcp_lease_time + s(5))
    # A new DISCOVER triggers the server's expiry sweep.
    other, _ = make_client(lan, "other")
    got = []
    other.acquire(on_bound=got.append)
    lan.run(2000)
    assert got
    assert server.lease_for("newcomer") is None
