"""Unit tests for ICMP: ping, errors, redirects, the local-role echo rule."""

from repro.net.addressing import ip
from repro.net.icmp import TYPE_REDIRECT, ICMPMessage
from repro.net.packet import IPPacket, PROTO_ICMP
from repro.sim import ms


def test_ping_reply_measures_rtt(lan):
    rtts = []
    lan.a.icmp.ping(ip("10.0.0.2"), on_reply=rtts.append,
                    on_timeout=lambda: rtts.append(None))
    lan.run()
    assert rtts and rtts[0] is not None
    assert ms(0.1) < rtts[0] < ms(10)


def test_ping_timeout_fires_exactly_once(lan):
    outcomes = []
    lan.a.icmp.ping(ip("10.0.0.99"), on_reply=lambda rtt: outcomes.append("reply"),
                    on_timeout=lambda: outcomes.append("timeout"),
                    timeout=ms(500))
    lan.run(5000)
    assert outcomes == ["timeout"]


def test_late_reply_after_timeout_is_ignored(lan):
    """A reply arriving after the timeout must not fire on_reply."""
    outcomes = []
    # Timeout shorter than the LAN RTT is impossible to hit here, so
    # simulate by setting an absurdly small timeout.
    lan.a.icmp.ping(ip("10.0.0.2"), on_reply=lambda rtt: outcomes.append("reply"),
                    on_timeout=lambda: outcomes.append("timeout"),
                    timeout=1)
    lan.run()
    assert outcomes == ["timeout"]


def test_echo_reply_sources_from_probed_address(lan):
    """Section 5.2: a ping of a particular address is answered *from* that
    address — the local role."""
    second = ip("10.0.0.42")
    lan.b.interfaces[1].add_address(second)
    replies = []
    records = lan.sim.trace
    lan.a.icmp.ping(second, on_reply=replies.append,
                    on_timeout=lambda: replies.append(None))
    lan.run()
    assert replies and replies[0] is not None
    sends = [r for r in records.select("ip", "send", host="b")
             if "ICMP" in r["packet"]]
    assert sends and sends[-1]["packet"].startswith("10.0.0.42 ->")


def test_echoes_answered_counter(lan):
    lan.a.icmp.ping(ip("10.0.0.2"), on_reply=lambda rtt: None,
                    on_timeout=lambda: None)
    lan.run()
    assert lan.b.icmp.echoes_answered == 1


def test_redirect_installs_host_route(lan):
    iface = lan.a.interfaces[1]
    message = ICMPMessage(icmp_type=TYPE_REDIRECT,
                          body={"destination": ip("99.0.0.1"),
                                "gateway": ip("10.0.0.77")})
    packet = IPPacket(src=ip("10.0.0.2"), dst=ip("10.0.0.1"),
                      protocol=PROTO_ICMP, payload=message)
    lan.a.ip.receive_packet(packet, iface)
    lan.run()
    assert lan.a.icmp.redirects_received == 1
    entry = lan.a.ip.routes.lookup(ip("99.0.0.1"))
    assert entry is not None and entry.gateway == ip("10.0.0.77")


def test_redirects_can_be_disabled(lan):
    lan.a.icmp.accept_redirects = False
    message = ICMPMessage(icmp_type=TYPE_REDIRECT,
                          body={"destination": ip("99.0.0.1"),
                                "gateway": ip("10.0.0.77")})
    packet = IPPacket(src=ip("10.0.0.2"), dst=ip("10.0.0.1"),
                      protocol=PROTO_ICMP, payload=message)
    lan.a.ip.receive_packet(packet, iface=lan.a.interfaces[1])
    lan.run()
    assert lan.a.ip.routes.lookup(ip("99.0.0.1")) is None


def test_router_emits_redirect_for_same_interface_forwarding(lan):
    """Forwarding back out the arrival interface advises the sender."""
    router = lan.b
    router.ip.forwarding = True
    router.ip.routes.add_host_route(ip("99.0.0.1"), router.interfaces[1],
                                    gateway=ip("10.0.0.3"))
    lan.host("10.0.0.3")
    lan.a.ip.routes.add_default(lan.a.interfaces[1], gateway=ip("10.0.0.2"))
    lan.a.udp.open(0).sendto(__import__("repro.net.packet",
                                        fromlist=["AppData"]).AppData("x", 4),
                             ip("99.0.0.1"), 9)
    lan.run()
    assert lan.a.icmp.redirects_received >= 1
    entry = lan.a.ip.routes.lookup(ip("99.0.0.1"))
    assert entry is not None and entry.gateway == ip("10.0.0.3")


def test_dest_unreachable_not_sent_for_icmp(lan):
    """No ICMP errors about ICMP (error storm guard)."""
    lan.b.ip.forwarding = True
    probe = []
    lan.a.icmp.ping(ip("88.0.0.1"), on_reply=lambda rtt: None,
                    on_timeout=lambda: probe.append("timeout"),
                    timeout=ms(800))
    # a has no route; the ping dies locally without an ICMP error loop.
    lan.run(3000)
    assert probe == ["timeout"]
