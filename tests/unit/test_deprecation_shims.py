"""Unit tests for the positional-argument deprecation shims.

Each shimmed constructor must (a) warn with ``DeprecationWarning`` exactly
once per call, (b) honour the positionally-passed values, and (c) let
explicit keyword arguments win over the shim.
"""

import warnings

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.autoswitch import ConnectivityManager
from repro.core.mobile_host import MobileHost
from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.core.tunnel import VirtualInterface
from repro.net.addressing import ip, subnet
from repro.sim import ms


def assert_single_deprecation(caught, needle):
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert needle in str(deprecations[0].message)


class TestMobilePolicyTableShim:
    def test_positional_default_mode_warns_once_and_lands(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table = MobilePolicyTable(RoutingMode.LOCAL)
        assert_single_deprecation(caught, "MobilePolicyTable")
        assert table.default_mode is RoutingMode.LOCAL

    def test_keyword_wins_over_shim(self):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            table = MobilePolicyTable(RoutingMode.LOCAL,
                                      default_mode=RoutingMode.TRIANGLE)
        assert table.default_mode is RoutingMode.TRIANGLE

    def test_keyword_form_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MobilePolicyTable(default_mode=RoutingMode.LOCAL)
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []


class TestVirtualInterfaceShim:
    def test_positional_config_warns_once_and_lands(self, sim):
        config = DEFAULT_CONFIG.with_overrides(route_cache_size=7)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            vif = VirtualInterface(sim, "vif0", config)
        assert_single_deprecation(caught, "VirtualInterface")
        assert vif.config is config

    def test_keyword_form_does_not_warn(self, sim):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            vif = VirtualInterface(sim, "vif0", config=DEFAULT_CONFIG)
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []
        assert vif.config is DEFAULT_CONFIG


class TestMobileHostShim:
    ARGS = (ip("36.135.0.10"), subnet("36.135.0.0/24"), ip("36.135.0.1"))

    def test_positional_config_and_mode_warn_once_and_land(self, sim):
        config = DEFAULT_CONFIG.with_overrides(policy_cache_size=5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            mobile = MobileHost(sim, "mh", *self.ARGS,
                                config, RoutingMode.LOCAL)
        assert_single_deprecation(caught, "MobileHost")
        assert mobile.config is config
        assert mobile.policy.default_mode is RoutingMode.LOCAL

    def test_keyword_form_does_not_warn(self, sim):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            mobile = MobileHost(sim, "mh", *self.ARGS,
                                default_mode=RoutingMode.TRIANGLE)
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []
        assert mobile.policy.default_mode is RoutingMode.TRIANGLE


class TestTCPConnectionShim:
    def make_conn(self, lan, *shim_args, **kwargs):
        from repro.net.tcp import TCPConnection

        return TCPConnection(lan.a.tcp, ip("10.0.0.1"), 40000,
                             ip("10.0.0.2"), 23, *shim_args, **kwargs)

    def test_positional_tuning_warns_once_and_lands(self, lan):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            conn = self.make_conn(lan, 2048, 3072)
        assert_single_deprecation(caught, "TCPConnection")
        assert conn.cwnd == 2048
        assert conn.ssthresh == 3072

    def test_keyword_wins_over_shim(self, lan):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            conn = self.make_conn(lan, 2048, initial_cwnd=1024)
        assert conn.cwnd == 1024

    def test_keyword_form_does_not_warn(self, lan):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            conn = self.make_conn(lan, initial_cwnd=2048,
                                  initial_ssthresh=3072,
                                  congestion_control="reno")
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []
        assert conn.cwnd == 2048
        assert conn.ssthresh == 3072
        assert conn.cc.name == "reno"

    def test_too_many_positionals_rejected(self, lan):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                self.make_conn(lan, 2048, 3072, 99)


class TestConnectivityManagerShim:
    @pytest.fixture
    def mobile(self, testbed):
        return testbed.mobile

    def test_positional_probe_knobs_warn_once_and_land(self, mobile):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager = ConnectivityManager(mobile, ms(250), ms(100), 3, 4)
        assert_single_deprecation(caught, "ConnectivityManager")
        assert manager.probe_interval == ms(250)
        assert manager.probe_timeout == ms(100)
        assert manager.up_threshold == 3
        assert manager.down_threshold == 4

    def test_keyword_wins_over_shim(self, mobile):
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            manager = ConnectivityManager(mobile, ms(250),
                                          probe_interval=ms(500))
        assert manager.probe_interval == ms(500)

    def test_keyword_form_does_not_warn(self, mobile):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ConnectivityManager(mobile, probe_interval=ms(500))
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []
