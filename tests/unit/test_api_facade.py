"""The repro.api Scenario facade and the keyword-only constructor shims."""

import warnings

import pytest

from repro import DEFAULT_CONFIG, RoutingMode, Scenario, Simulator, s
from repro.core.autoswitch import ConnectivityManager
from repro.core.mobile_host import MobileHost
from repro.core.policy import MobilePolicyTable
from repro.core.tunnel import VirtualInterface
from repro.net.addressing import IPAddress, Subnet
from repro.sim.units import ms
from repro.testbed import build_testbed


# -------------------------------------------------------------------- facade

def test_scenario_is_importable_from_package_root():
    import repro

    assert repro.Scenario is Scenario
    assert "Scenario" in repro.__all__


def test_scenario_matches_manual_path_byte_for_byte():
    manual_sim = Simulator(seed=7)
    manual_tb = build_testbed(manual_sim)
    manual_sim.call_at(ms(100), manual_tb.visit_dept, label="scenario-step")
    manual_sim.run_for(s(5))

    result = (Scenario(seed=7)
              .with_testbed()
              .with_step(ms(100), lambda tb: tb.visit_dept())
              .run(duration=s(5)))

    from repro.obs import snapshot_to_json
    assert result.snapshot_json() == snapshot_to_json(manual_sim.metrics)
    assert len(result.trace) == len(manual_sim.trace)


def test_with_config_overrides_match_manual_config_byte_for_byte():
    from repro.obs import snapshot_to_json

    config = DEFAULT_CONFIG.with_overrides(tcp_congestion_control="reno",
                                           tcp_sack=True)
    manual_sim = Simulator(seed=11, scheduler=config.engine_scheduler)
    manual_tb = build_testbed(manual_sim, config=config)
    manual_sim.call_at(ms(100), manual_tb.visit_dept, label="scenario-step")
    manual_sim.run_for(s(3))

    result = (Scenario(seed=11)
              .with_config(tcp_congestion_control="reno", tcp_sack=True)
              .with_testbed()
              .with_step(ms(100), lambda tb: tb.visit_dept())
              .run(duration=s(3)))

    assert result.snapshot_json() == snapshot_to_json(manual_sim.metrics)


def test_with_config_is_cumulative_and_later_calls_win():
    scenario = (Scenario(seed=0)
                .with_config(tcp_congestion_control="reno")
                .with_config(tcp_sack=True)
                .with_config(tcp_congestion_control="cubic"))
    assert scenario.config.tcp_congestion_control == "cubic"
    assert scenario.config.tcp_sack is True
    assert scenario.config.jitter == DEFAULT_CONFIG.jitter


def test_with_faults_matches_manual_injector_byte_for_byte():
    from repro import FaultPlan, InterfaceFlap
    from repro.faults import FaultInjector
    from repro.obs import snapshot_to_json

    plan = FaultPlan.of(InterfaceFlap(at=s(1), interface="eth0.mh",
                                      down_for=ms(800)))

    manual_sim = Simulator(seed=5)
    manual_tb = build_testbed(manual_sim)
    manual_injector = FaultInjector.for_testbed(manual_tb, plan)
    manual_injector.arm()
    manual_sim.run_for(s(4))

    result = (Scenario(seed=5)
              .with_testbed()
              .with_faults(plan)
              .run(duration=s(4)))

    assert result.fault_injector is not None
    assert result.fault_injector.total_injected() \
        == manual_injector.total_injected()
    assert result.snapshot_json() == snapshot_to_json(manual_sim.metrics)


def test_with_faults_requires_testbed():
    from repro import FaultPlan

    with pytest.raises(RuntimeError, match="with_testbed"):
        Scenario(seed=0).with_faults(FaultPlan.of()).run(duration=ms(1))


def test_fault_types_are_importable_from_package_root():
    import repro

    for name in ("FaultPlan", "FaultInjector", "LossBurst",
                 "GilbertElliottPhase", "InterfaceFlap", "HomeAgentRestart",
                 "DhcpOutage", "ReplyDropWindow"):
        assert hasattr(repro, name), name
        assert name in repro.__all__


def test_scenario_collects_workload_returns():
    result = (Scenario(seed=1)
              .with_testbed()
              .with_workload(lambda tb: "sentinel", name="probe")
              .with_workload(lambda tb: 42)
              .run(duration=ms(10)))
    assert result.workloads["probe"] == "sentinel"
    assert result.workloads["workload1"] == 42


def test_scenario_runs_only_once():
    scenario = Scenario(seed=1).with_testbed()
    scenario.run(duration=ms(1))
    with pytest.raises(RuntimeError):
        scenario.run(duration=ms(1))


def test_scenario_without_testbed_still_runs():
    result = Scenario(seed=3).run(duration=ms(1))
    assert result.testbed is None
    assert result.sim.now == ms(1)


# ------------------------------------------------------- deprecation shims

def _home_pieces(sim):
    return (IPAddress.parse("36.123.0.10"), Subnet.parse("36.123.0.0/24"),
            IPAddress.parse("36.123.0.1"))


def test_virtual_interface_positional_config_warns_but_works():
    sim = Simulator()
    with pytest.warns(DeprecationWarning):
        vif = VirtualInterface(sim, "vif0", DEFAULT_CONFIG)
    assert vif.config is DEFAULT_CONFIG


def test_mobile_host_positional_config_warns_but_works():
    sim = Simulator()
    home, subnet, agent = _home_pieces(sim)
    with pytest.warns(DeprecationWarning):
        mh = MobileHost(sim, "mh", home, subnet, agent,
                        DEFAULT_CONFIG, RoutingMode.TRIANGLE)
    assert mh.config is DEFAULT_CONFIG
    assert mh.policy.default_mode is RoutingMode.TRIANGLE


def test_policy_table_positional_default_mode_warns_but_works():
    with pytest.warns(DeprecationWarning):
        table = MobilePolicyTable(RoutingMode.ENCAP_DIRECT)
    assert table.default_mode is RoutingMode.ENCAP_DIRECT


def test_connectivity_manager_positional_knobs_warn_but_work():
    sim = Simulator()
    home, subnet, agent = _home_pieces(sim)
    mh = MobileHost(sim, "mh", home, subnet, agent)
    with pytest.warns(DeprecationWarning):
        manager = ConnectivityManager(mh, ms(250), ms(200), 3, 4)
    assert manager.probe_interval == ms(250)
    assert manager.probe_timeout == ms(200)
    assert manager.up_threshold == 3
    assert manager.down_threshold == 4


def test_keyword_constructors_do_not_warn():
    sim = Simulator()
    home, subnet, agent = _home_pieces(sim)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        mh = MobileHost(sim, "mh", home, subnet, agent,
                        config=DEFAULT_CONFIG,
                        default_mode=RoutingMode.TUNNEL)
        ConnectivityManager(mh, probe_interval=ms(100))
        MobilePolicyTable(default_mode=RoutingMode.LOCAL)
        VirtualInterface(sim, "vif1", config=DEFAULT_CONFIG)


def test_connectivity_manager_defaults_come_from_config():
    sim = Simulator()
    home, subnet, agent = _home_pieces(sim)
    mh = MobileHost(sim, "mh", home, subnet, agent)
    manager = ConnectivityManager(mh)
    timings = DEFAULT_CONFIG.autoswitch
    assert manager.probe_interval == timings.probe_interval
    assert manager.probe_timeout == timings.probe_timeout
    assert manager.up_threshold == timings.up_threshold
    assert manager.down_threshold == timings.down_threshold
