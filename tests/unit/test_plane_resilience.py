"""Plane membership churn, partitions, bounded staleness, the auditor.

These drive the *real* x8 shard topology (real home-agent replicas, a
router hub, live :class:`RegistrationClient` traffic) at tiny scale, so
every behaviour tested here is the one the chaos experiment gates on.
"""

from dataclasses import replace

import pytest

from repro.core.binding_shard import BindingShardPlane
from repro.experiments.exp_plane_chaos import (
    _build_shard,
    home_address_of,
    plane_chaos_config,
    run_plane_chaos_trial,
)
from repro.faults import (
    AuditViolation,
    FaultInjector,
    FaultPlan,
    PlaneAuditor,
    PlanePartition,
    ReplicaDrain,
    ReplicaJoin,
)
from repro.sim import Simulator, ms, s

CONFIG = plane_chaos_config()


def build_shard(n_hosts=6, seed=42, config=CONFIG):
    sim = Simulator(seed=seed)
    plane, registrants, stats = _build_shard(sim, config, n_hosts, 0)
    return sim, plane, registrants, stats


def start_traffic(sim, registrants, warmup=s(4)):
    """Begin renewals and run until every host has registered once."""
    for registrant in registrants:
        registrant.start()
    sim.run_for(warmup)


def live_holders(plane, home):
    """Members holding a live binding for *home* right now."""
    return sorted(name for name, agent in plane.agents.items()
                  if agent.bindings.get(home) is not None)


class TestMembership:
    def test_add_replica_promotes_the_spare(self):
        sim, plane, _, _ = build_shard()
        assert "ha4" in plane.spares
        joined = plane.add_replica("ha4")
        assert plane.agents["ha4"] is joined
        assert "ha4" not in plane.spares
        assert "ha4" in plane.ring.nodes

    def test_add_replica_rejects_members_and_strangers(self):
        sim, plane, _, _ = build_shard()
        with pytest.raises(ValueError, match="already has agent"):
            plane.add_replica("ha0")
        with pytest.raises(ValueError, match="no spare"):
            plane.add_replica("ha9")

    def test_drain_hands_over_every_live_binding(self):
        sim, plane, registrants, _ = build_shard(n_hosts=8)
        start_traffic(sim, registrants)
        held = [home_address_of(g) for g in range(8)
                if plane.agents["ha0"].bindings.get(home_address_of(g))
                is not None]
        assert held, "warmup must land some bindings on ha0"
        moved = plane.drain_replica("ha0")
        assert moved == len(held)
        assert "ha0" in plane.spares and "ha0" not in plane.agents
        for home in held:
            # Adopted at a reachable replica: still answerable, zero gap.
            care_of, source = plane.lookup_binding(home)
            assert source == "authoritative"

    def test_drain_rejects_unknown_and_last_replica(self):
        sim, plane, _, _ = build_shard()
        with pytest.raises(ValueError, match="no agent"):
            plane.drain_replica("ha9")
        for name in ("ha0", "ha1", "ha2"):
            plane.drain_replica(name)
        with pytest.raises(ValueError, match="last replica"):
            plane.drain_replica("ha3")

    def test_drained_replica_can_rejoin(self):
        sim, plane, _, _ = build_shard()
        plane.drain_replica("ha1")
        rejoined = plane.add_replica("ha1")
        assert plane.agents["ha1"] is rejoined


class TestPartition:
    def test_partition_is_unreachable_but_keeps_state(self):
        sim, plane, registrants, _ = build_shard(n_hosts=8)
        start_traffic(sim, registrants)
        victim = next(name for name in plane.agents
                      if plane.agents[name].bindings.all_active())
        survivors = len(plane.agents[victim].bindings.all_active())
        plane.partition((victim,), s(2))
        assert not plane.reachable(victim)
        assert plane.partitioned_agents() == [victim]
        assert not plane.agents[victim].is_down
        # The nasty part: the partitioned replica's bindings survive.
        assert len(plane.agents[victim].bindings.all_active()) == survivors
        sim.run_for(s(3))
        assert plane.reachable(victim)

    def test_heal_reconciles_stale_copies_newest_wins(self):
        sim, plane, registrants, _ = build_shard(n_hosts=8)
        auditor = PlaneAuditor(plane)
        auditor.attach()
        start_traffic(sim, registrants)
        bound = [home_address_of(g) for g in range(8)]
        victim = plane.owners(bound[0])[0]
        plane.partition((victim,), s(4))
        # Renewals re-win the victim's addresses elsewhere while it is
        # away; at heal its stale copies must be flushed, never revived.
        sim.run_for(s(8))
        for home in bound:
            assert len(live_holders(plane, home)) <= 1
        assert auditor.finish(raise_on_violation=True) == []

    def test_partition_faults_inject_through_the_plan(self):
        sim, plane, registrants, _ = build_shard(n_hosts=4)
        plan = FaultPlan.of(
            PlanePartition(at=s(1), duration=s(2), agents=("ha1", "ha3")))
        injector = FaultInjector.for_plane(plane, plan)
        injector.arm()
        start_traffic(sim, registrants, warmup=s(2))
        assert plane.partitioned_agents() == ["ha1", "ha3"]
        sim.run_for(s(2))
        assert plane.partitioned_agents() == []
        assert injector.injected == {"plane_partition": 1}

    def test_membership_plan_validation_names_replicas_and_spares(self):
        sim, plane, _, _ = build_shard()
        for plan in (FaultPlan.of(ReplicaJoin(at=s(1), agent="ha9")),
                     FaultPlan.of(ReplicaDrain(at=s(1), agent="ha9")),
                     FaultPlan.of(PlanePartition(at=s(1), duration=s(1),
                                                 agents=("ha0", "ha9")))):
            injector = FaultInjector.for_plane(plane, plan)
            with pytest.raises(ValueError) as err:
                injector.arm()
            message = str(err.value)
            assert "unknown agent 'ha9'" in message
            assert "ha0" in message and "ha4" in message  # members + spares


class TestBoundedStaleness:
    def all_partitioned(self, plane, duration=s(60)):
        plane.partition(tuple(sorted(plane.agents)), duration)

    def test_stale_serve_answers_from_the_replicated_copy(self):
        sim, plane, registrants, _ = build_shard(n_hosts=2)
        start_traffic(sim, registrants)
        home = home_address_of(0)
        assert plane.lookup_binding(home)[1] == "authoritative"
        self.all_partitioned(plane)
        care_of, source = plane.lookup_binding(home)
        assert source == "stale"
        assert plane.stale_served == 1

    def test_staleness_is_capped(self):
        sim, plane, registrants, _ = build_shard(n_hosts=2)
        start_traffic(sim, registrants)
        self.all_partitioned(plane, duration=s(600))
        home = home_address_of(0)
        assert plane.lookup_binding(home)[1] == "stale"
        sim.run_for(CONFIG.fleet.stale_serve_cap + s(1))
        assert plane.lookup_binding(home) is None

    def test_stale_serve_is_opt_in(self):
        config = replace(CONFIG, fleet=replace(CONFIG.fleet,
                                               stale_serve=False))
        sim, plane, registrants, _ = build_shard(n_hosts=2, config=config)
        start_traffic(sim, registrants)
        self.all_partitioned(plane)
        assert plane.lookup_binding(home_address_of(0)) is None
        assert plane.stale_served == 0


class TestTakeoverAccounting:
    def test_repeated_lookups_count_one_takeover(self):
        sim, plane, _, _ = build_shard()
        home = home_address_of(0)
        primary = plane.owners(home)[0]
        plane.crash(primary, down_for=s(2))
        for _ in range(5):
            plane.agent_for(home)
        assert plane.takeovers == 1
        sim.run_for(s(3))
        assert plane.agent_for(home) is plane.agents[primary]
        plane.crash(primary, down_for=s(2))
        plane.agent_for(home)
        assert plane.takeovers == 2

    def test_fault_free_run_creates_no_takeover_metrics(self):
        sim, plane, registrants, _ = build_shard(n_hosts=4)
        start_traffic(sim, registrants, warmup=s(6))
        assert plane.takeovers == 0
        assert not any("takeover" in key
                       for key in sim.metrics.snapshot())


class TestPlaneAuditor:
    def test_clean_chaos_cell_passes_the_audit(self):
        result = run_plane_chaos_trial(fleet_size=24, n_hosts=24,
                                       host_offset=0, churn=True,
                                       partition=True, seed=7)
        assert result["violations"] == 0
        assert result["accepted"] > 0
        assert result["faults_injected"] == 4

    def test_broken_takeover_is_caught(self, monkeypatch):
        sim, plane, registrants, _ = build_shard(n_hosts=4)
        auditor = PlaneAuditor(plane)
        auditor.attach()
        start_traffic(sim, registrants)

        def broken_agent_for(self, home_address):
            # The bug under test: fail over although the primary is
            # perfectly reachable.
            names = self.owners(home_address)
            primary, backup = names[0], names[1]
            key = str(home_address)
            if self._takeover_from.get(key) != backup:
                self._takeover_from[key] = backup
                self._count_takeover(primary, backup)
            return self.agents[backup]

        monkeypatch.setattr(BindingShardPlane, "agent_for", broken_agent_for)
        plane.agent_for(home_address_of(0))
        with pytest.raises(AuditViolation, match="live and\\s+reachable"):
            auditor.finish()

    def test_double_ownership_is_caught(self):
        sim, plane, _, _ = build_shard()
        auditor = PlaneAuditor(plane)
        auditor.attach()
        home = str(home_address_of(0))
        sim.trace.emit("binding", "registered", agent="ha0",
                       home_address=home, care_of="36.192.0.2")
        sim.trace.emit("binding", "registered", agent="ha1",
                       home_address=home, care_of="36.192.0.6")
        with pytest.raises(AuditViolation, match="double-owned"):
            auditor.finish()

    def test_unconverged_binding_is_caught(self):
        sim, plane, _, _ = build_shard()
        auditor = PlaneAuditor(plane)
        auditor.attach()
        home = home_address_of(0)
        holder = plane.owners(home)[0]
        sim.trace.emit("binding", "registered", agent=holder,
                       home_address=str(home), care_of="36.192.0.2")
        plane.crash(holder, down_for=s(1))
        # Nobody re-wins the binding: the deadline must fire at finish.
        sim.run_for(CONFIG.fleet.convergence_deadline + s(1))
        with pytest.raises(AuditViolation, match="not re-won"):
            auditor.finish()
        assert auditor.finish(raise_on_violation=False)

    def test_takeover_counter_mismatch_is_caught(self):
        sim, plane, _, _ = build_shard()
        auditor = PlaneAuditor(plane)
        auditor.attach()
        plane.takeovers += 1  # counted but never traced
        with pytest.raises(AuditViolation, match="takeover counter"):
            auditor.finish()

    def test_detach_freezes_the_view(self):
        sim, plane, _, _ = build_shard()
        auditor = PlaneAuditor(plane)
        auditor.attach()
        auditor.detach()
        home = str(home_address_of(0))
        sim.trace.emit("binding", "registered", agent="ha0",
                       home_address=home, care_of="36.192.0.2")
        sim.trace.emit("binding", "registered", agent="ha1",
                       home_address=home, care_of="36.192.0.6")
        assert auditor.finish(raise_on_violation=False) == []
