"""Unit tests for the routing table's LPM result cache."""

from repro.net.addressing import ip, subnet
from repro.net.interface import InterfaceState, NetworkInterface
from repro.net.routing import RouteEntry, RoutingTable


class FakeInterface:
    """Just enough interface for RoutingTable: a name and an up/down bit."""

    def __init__(self, name, up=True):
        self.name = name
        self.is_up = up


def make_table(cache_size=256):
    table = RoutingTable(cache_size=cache_size)
    eth = FakeInterface("eth0")
    table.add(RouteEntry(destination=subnet("10.0.0.0/24"), interface=eth))
    table.add_default(eth, gateway=ip("10.0.0.1"))
    return table, eth


def test_cache_hit_returns_same_entry():
    table, _ = make_table()
    first = table.lookup(ip("10.0.0.5"))
    second = table.lookup(ip("10.0.0.5"))
    assert first is second
    info = table.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1


def test_negative_results_are_cached_too():
    table = RoutingTable()
    assert table.lookup(ip("1.1.1.1")) is None
    assert table.lookup(ip("1.1.1.1")) is None
    assert table.cache_info()["hits"] == 1


def test_cache_size_zero_disables_caching():
    table, _ = make_table(cache_size=0)
    table.lookup(ip("10.0.0.5"))
    table.lookup(ip("10.0.0.5"))
    info = table.cache_info()
    assert info["hits"] == 0 and info["misses"] == 2 and info["size"] == 0


def test_require_up_false_bypasses_cache():
    table, eth = make_table()
    eth.is_up = False
    assert table.lookup(ip("10.0.0.5"), require_up=False) is not None
    assert table.cache_info()["misses"] == 0


def test_mutations_invalidate():
    table, eth = make_table()
    table.lookup(ip("10.0.0.5"))
    better = RouteEntry(destination=subnet("10.0.0.5/32"),
                        interface=FakeInterface("ppp0"))
    table.add(better)
    assert table.lookup(ip("10.0.0.5")) is better
    table.remove(better)
    assert table.lookup(ip("10.0.0.5")).destination == subnet("10.0.0.0/24")
    table.remove_matching(interface=eth)
    assert table.lookup(ip("10.0.0.5")) is None


def test_down_interface_under_cached_route_is_rescanned():
    """Belt and braces: even without invalidation, a cached route whose

    interface dropped is rejected on hit and the table re-scanned."""
    table, eth = make_table()
    fallback = RouteEntry(destination=subnet("10.0.0.0/16"),
                          interface=FakeInterface("backup0"))
    table.add(fallback)
    assert table.lookup(ip("10.0.0.5")).interface is eth
    eth.is_up = False  # FakeInterface: no property hook, cache NOT cleared
    assert table.lookup(ip("10.0.0.5")) is fallback


def test_lru_eviction_is_bounded():
    table, _ = make_table(cache_size=3)
    for n in range(8):
        table.lookup(ip(f"10.0.0.{n}"))
    info = table.cache_info()
    assert info["size"] == 3 and info["max_size"] == 3


def test_interface_state_property_invalidates_host_table(sim, lan):
    """Real interfaces clear their host's route cache on any state change."""
    host = lan.a
    iface = next(i for i in host.interfaces if i.name.startswith("eth"))
    assert isinstance(iface, NetworkInterface)
    dst = ip("10.0.0.2")
    assert host.ip.routes.lookup(dst) is not None
    assert host.ip.routes.cache_info()["size"] > 0
    iface.state = InterfaceState.DOWN
    assert host.ip.routes.cache_info()["size"] == 0
    assert host.ip.routes.lookup(dst) is None
    iface.state = InterfaceState.UP
    assert host.ip.routes.lookup(dst) is not None
