"""Additional TCP edge cases: segmentation, closes, window behaviour."""

from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.net.tcp import DEFAULT_MSS, DEFAULT_WINDOW_BYTES, TCPState
from repro.sim import ms, s

from tests.unit.test_tcp import open_session


def test_large_write_is_segmented_at_mss(lan):
    got = []
    client, server = open_session(lan, on_server_data=got.append)
    lan.run(500)
    client.send(AppData("big", DEFAULT_MSS * 3 + 100))
    lan.run(2000)
    total = sum(chunk.size_bytes for chunk in got)
    assert total == DEFAULT_MSS * 3 + 100
    assert len(got) == 4
    assert all(chunk.size_bytes <= DEFAULT_MSS for chunk in got)
    # First segment keeps the content; continuations are marked.
    assert got[0].content == "big"
    assert got[1].content == ("segment-of", "big")
    assert server["conn"].bytes_received == total


def test_large_write_survives_loss(lan):
    got = []
    client, _server = open_session(lan, on_server_data=got.append)
    lan.run(500)
    iface_b = lan.b.interfaces[1]
    iface_b.state = iface_b.state.__class__.DOWN
    client.send(AppData("big", DEFAULT_MSS * 5))
    lan.run(800)
    iface_b.state = iface_b.state.__class__.UP
    lan.sim.run_for(s(20))
    assert sum(chunk.size_bytes for chunk in got) == DEFAULT_MSS * 5


def test_simultaneous_close(lan):
    closed = []
    client, server = open_session(lan)
    lan.run(500)
    client.on_close = lambda: closed.append("client")
    server["conn"].on_close = lambda: closed.append("server")
    client.close()
    server["conn"].close()
    lan.sim.run_for(s(10))
    assert sorted(closed) == ["client", "server"]
    assert client.state == TCPState.CLOSED
    assert server["conn"].state == TCPState.CLOSED


def test_half_close_still_receives(lan):
    """After our FIN, the peer can keep sending until its own close."""
    to_client = []
    client, server = open_session(lan)
    client.on_data = lambda data: to_client.append(data.content)
    lan.run(500)
    client.close()
    lan.run(500)
    assert server["conn"].state == TCPState.CLOSE_WAIT
    server["conn"].send(AppData("parting words", 100))
    lan.run(500)
    assert to_client == ["parting words"]
    server["conn"].close()
    lan.sim.run_for(s(8))
    assert client.state == TCPState.CLOSED


def test_window_limits_inflight_bytes(lan):
    client, _server = open_session(lan)
    lan.run(500)
    # Freeze the receiver so ACKs stop coming back.
    iface_b = lan.b.interfaces[1]
    iface_b.state = iface_b.state.__class__.DOWN
    for _ in range(30):
        client.send(AppData("x", DEFAULT_MSS))
    lan.run(100)
    inflight = client.snd_nxt - client.snd_una
    assert inflight <= DEFAULT_WINDOW_BYTES


def test_cwnd_grows_with_successful_transfer(lan):
    client, _server = open_session(lan)
    lan.run(500)
    start_cwnd = client.cwnd
    for index in range(20):
        client.send(AppData(index, 256))
        lan.run(100)
    assert client.cwnd > start_cwnd


def test_duplicate_data_is_not_redelivered(lan):
    """A retransmitted segment the receiver already has is re-ACKed but
    not handed to the application twice."""
    got = []
    client, _server = open_session(lan, on_server_data=lambda d: got.append(d.content))
    lan.run(500)
    client.send(AppData("once", 100))
    lan.run(500)
    # Inject a spurious duplicate of the same bytes at the same sequence.
    from repro.net.tcp import FLAG_ACK

    client._emit(flags=frozenset({FLAG_ACK}), seq=client.iss + 1,
                 payload=AppData("once", 100))
    lan.run(500)
    assert got == ["once"]


def test_ephemeral_ports_do_not_collide_across_connections(lan):
    lan.b.tcp.listen(23, lambda conn: None)
    first = lan.a.tcp.connect(ip("10.0.0.2"), 23)
    second = lan.a.tcp.connect(ip("10.0.0.2"), 23)
    assert first.local_port != second.local_port


def test_reset_during_handshake_cleans_up(lan):
    client = lan.a.tcp.connect(ip("10.0.0.2"), 4567)  # nobody listening
    lan.run(1000)
    assert client.state == TCPState.CLOSED
    # The connection is gone from the service table.
    assert client.key not in lan.a.tcp._connections
