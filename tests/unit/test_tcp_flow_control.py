"""RFC 9293 flow control, delayed ACKs, Nagle — and the close-path fixes.

Two families:

* Regression tests for the state-machine bugfixes that ride with the
  flow-control work (simultaneous close via CLOSING, TIME_WAIT re-ACK of
  a retransmitted FIN with 2MSL restart, out-of-window RST rejection) —
  these run on the *default* config, because the fixes are unconditional.
* Behavior tests for the new ``tcp_flow_control`` / ``tcp_delayed_ack``
  / ``tcp_nagle`` knobs: advertised-window enforcement, zero-window
  stall + persist-probe recovery, consume-driven window updates, ACK
  coalescing, and small-segment holdback.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.net.tcp import (
    DEFAULT_WINDOW_BYTES,
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    TCPSegment,
    TCPState,
)
from repro.sim import Simulator, ms
from tests.conftest import Lan

from tests.unit.test_tcp import open_session

FC_CONFIG = DEFAULT_CONFIG.with_overrides(tcp_flow_control=True,
                                          tcp_recv_buffer=1024)


@pytest.fixture
def fc_lan():
    return Lan(Simulator(seed=1234), config=FC_CONFIG)


def lan_with(**overrides):
    return Lan(Simulator(seed=1234),
               config=DEFAULT_CONFIG.with_overrides(**overrides))


# --------------------------------------------------------- close-path fixes


class TestSimultaneousClose:
    def test_crossing_fins_pass_through_closing(self, lan):
        client, server = open_session(lan)
        lan.run(500)
        # Both ends close in the same instant: the FINs cross in flight.
        client.close()
        server["conn"].close()
        # on_close fires as the peer FIN is consumed — with our own FIN
        # still unacknowledged, RFC 9293 says that moment is CLOSING.
        at_close = {}
        client.on_close = lambda: at_close.update(client=client.state)
        server["conn"].on_close = (
            lambda: at_close.update(server=server["conn"].state))
        lan.run(1000)
        assert at_close == {"client": TCPState.CLOSING,
                            "server": TCPState.CLOSING}
        assert client.state == TCPState.TIME_WAIT
        assert server["conn"].state == TCPState.TIME_WAIT
        lan.run(5000)  # let 2MSL expire
        assert client.state == TCPState.CLOSED
        assert server["conn"].state == TCPState.CLOSED

    def test_closing_keeps_retransmitting_fin(self, lan):
        """A FIN lost during simultaneous close is recovered from CLOSING."""
        client, server = open_session(lan)
        lan.run(500)
        iface_b = lan.b.interfaces[1]
        client.close()
        server["conn"].close()
        # Drop b's side mid-close, then restore: retransmission must
        # finish the close from whatever state the loss left behind.
        lan.run(2)
        iface_b.state = iface_b.state.__class__.DOWN
        lan.run(1500)
        iface_b.state = iface_b.state.__class__.UP
        lan.run(10000)
        assert client.state == TCPState.CLOSED
        assert server["conn"].state == TCPState.CLOSED


class TestTimeWaitFinRetransmit:
    def _into_time_wait(self, lan):
        client, server = open_session(lan)
        lan.run(500)
        client.close()
        lan.run(500)
        server["conn"].close()
        lan.run(500)
        assert client.state == TCPState.TIME_WAIT
        return client, server["conn"]

    def test_retransmitted_fin_elicits_ack(self, lan):
        client, server_conn = self._into_time_wait(lan)
        sent_before = client.segments_sent
        fin = TCPSegment(server_conn.local_port, client.local_port,
                         seq=client.rcv_nxt - 1, ack=client.snd_nxt,
                         flags=frozenset({FLAG_FIN, FLAG_ACK}))
        client.handle_segment(fin)
        assert client.segments_sent == sent_before + 1
        assert client.state == TCPState.TIME_WAIT

    def test_retransmitted_fin_restarts_2msl(self, lan):
        client, server_conn = self._into_time_wait(lan)
        # 2MSL is 2000 ms.  A FIN arriving 1500 ms in must push expiry out.
        lan.run(1500)
        # Keep the re-ACK from reaching b's (long gone) connection: its
        # RST answer would legitimately assassinate TIME_WAIT and hide
        # the timer restart this test is about.
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        fin = TCPSegment(server_conn.local_port, client.local_port,
                         seq=client.rcv_nxt - 1, ack=client.snd_nxt,
                         flags=frozenset({FLAG_FIN, FLAG_ACK}))
        client.handle_segment(fin)
        lan.run(1500)  # original timer would have expired by now
        assert client.state == TCPState.TIME_WAIT
        lan.run(1000)  # restarted timer expires
        assert client.state == TCPState.CLOSED

    def test_pure_ack_does_not_restart_or_reply(self, lan):
        client, server_conn = self._into_time_wait(lan)
        sent_before = client.segments_sent
        ack = TCPSegment(server_conn.local_port, client.local_port,
                         seq=client.rcv_nxt, ack=client.snd_nxt,
                         flags=frozenset({FLAG_ACK}))
        client.handle_segment(ack)
        assert client.segments_sent == sent_before
        lan.run(2500)
        assert client.state == TCPState.CLOSED


class TestRstValidation:
    def test_out_of_window_rst_ignored(self, lan):
        client, _server = open_session(lan)
        lan.run(500)
        resets = []
        client.on_reset = lambda: resets.append(1)
        blind = TCPSegment(23, client.local_port,
                           seq=client.rcv_nxt + DEFAULT_WINDOW_BYTES + 1,
                           ack=0, flags=frozenset({FLAG_RST}))
        client.handle_segment(blind)
        assert resets == []
        assert client.state == TCPState.ESTABLISHED

    def test_in_window_rst_still_resets(self, lan):
        client, _server = open_session(lan)
        lan.run(500)
        resets = []
        client.on_reset = lambda: resets.append(1)
        rst = TCPSegment(23, client.local_port, seq=client.rcv_nxt,
                         ack=0, flags=frozenset({FLAG_RST}))
        client.handle_segment(rst)
        assert resets == [1]
        assert client.state == TCPState.CLOSED

    def test_syn_sent_rst_must_ack_the_syn(self, lan):
        client = lan.a.tcp.connect(ip("10.0.0.2"), 4444)
        resets = []
        client.on_reset = lambda: resets.append(1)
        bogus = TCPSegment(4444, client.local_port, seq=0,
                           ack=client.iss + 999,  # not our SYN's ack
                           flags=frozenset({FLAG_RST}))
        client.handle_segment(bogus)
        assert resets == []
        assert client.state == TCPState.SYN_SENT
        # The real closed-port reset still lands (end to end).
        lan.run(500)
        assert resets == [1]


# ----------------------------------------------------------- flow control


class TestAdvertisedWindow:
    def test_flight_never_exceeds_receive_buffer(self, fc_lan):
        """Receiver-limited: unacked flight stays within the buffer."""
        client, server = open_session(fc_lan)
        fc_lan.run(500)
        server["conn"].auto_consume = False
        for i in range(40):
            client.send(AppData(i, 256))
        max_flight = 0
        for _ in range(600):
            fc_lan.run(5)
            max_flight = max(max_flight, client.snd_max - client.snd_una)
        assert 0 < max_flight <= FC_CONFIG.tcp_recv_buffer
        assert server["conn"].rcv_buffered <= FC_CONFIG.tcp_recv_buffer
        assert server["conn"].bytes_received <= FC_CONFIG.tcp_recv_buffer

    def test_auto_consume_transfers_everything(self, fc_lan):
        got = []
        client, _server = open_session(
            fc_lan, on_server_data=lambda d: got.append(d.content))
        fc_lan.run(500)
        for i in range(40):
            client.send(AppData(i, 256))
        fc_lan.run(30000)
        assert got == list(range(40))

    def test_zero_window_stall_recovers_via_probes(self, fc_lan):
        """A closed window with the update lost is healed by probing."""
        client, server = open_session(fc_lan)
        fc_lan.run(500)
        server["conn"].auto_consume = False
        for i in range(8):
            client.send(AppData(i, 256))
        fc_lan.run(5000)  # fill the 1024-byte buffer, then stall
        assert client.zero_window_ns > 0
        assert client.persist_probes > 0
        assert server["conn"].rcv_buffered == FC_CONFIG.tcp_recv_buffer
        # The application finally reads: the window update releases the
        # rest without waiting for the next (backed-off) probe.
        server["conn"].consume(1024)
        fc_lan.run(8000)
        assert server["conn"].bytes_received == 8 * 256

    def test_probe_interval_backs_off(self, fc_lan):
        client, server = open_session(fc_lan)
        fc_lan.run(500)
        server["conn"].auto_consume = False
        for i in range(8):
            client.send(AppData(i, 256))
        fc_lan.run(4000)
        early = client.persist_probes
        fc_lan.run(4000)
        late = client.persist_probes
        # Backoff doubles the spacing: the second interval adds fewer
        # probes than the first.
        assert 0 < late - early <= early

    def test_consume_sends_window_update(self, fc_lan):
        client, server = open_session(fc_lan)
        fc_lan.run(500)
        server["conn"].auto_consume = False
        for i in range(8):
            client.send(AppData(i, 256))
        fc_lan.run(3000)
        sent_before = server["conn"].segments_sent
        server["conn"].consume(1024)
        assert server["conn"].segments_sent == sent_before + 1

    def test_window_field_on_wire_only_with_knob(self, fc_lan, lan):
        for net, expect_advertised in ((fc_lan, True), (lan, False)):
            client, _server = open_session(net)
            net.run(500)
            seen = []
            original = client.handle_segment
            client.handle_segment = lambda seg: (seen.append(seg.wnd),
                                                 original(seg))
            client.send(AppData("ping", 64))
            net.run(500)
            assert seen
            if expect_advertised:
                assert all(wnd >= 0 for wnd in seen)
            else:
                assert all(wnd == -1 for wnd in seen)


class TestDelayedAck:
    def test_acks_coalesce_every_second_segment(self):
        net = lan_with(tcp_delayed_ack=True)
        client, server = open_session(net)
        net.run(500)
        acks_before = server["conn"].segments_sent
        for i in range(6):
            client.send(AppData(i, 100))
        net.run(2000)
        acks = server["conn"].segments_sent - acks_before
        # 6 in-order segments: every second one forces an ACK -> 3, not 6.
        assert acks == 3
        assert server["conn"].delayed_acks >= 3

    def test_lone_segment_acked_on_timeout(self):
        net = lan_with(tcp_delayed_ack=True)
        client, server = open_session(net)
        net.run(500)
        client.send(AppData("only", 100))
        net.run(50)  # < delack timeout: no ACK yet
        assert client.snd_una < client.snd_max
        net.run(ms(DEFAULT_CONFIG.tcp_delayed_ack_timeout) / ms(1) + 200)
        assert client.snd_una == client.snd_max
        assert server["conn"].delayed_acks == 1

    def test_fin_is_acked_immediately(self):
        net = lan_with(tcp_delayed_ack=True)
        client, server = open_session(net)
        net.run(500)
        client.send(AppData("bye", 100))
        client.close()
        net.run(5000)
        assert server["conn"].state in (TCPState.CLOSE_WAIT, TCPState.CLOSED)
        assert client.state in (TCPState.FIN_WAIT_2, TCPState.CLOSED)


class TestNagle:
    def test_small_writes_held_until_ack(self):
        net = lan_with(tcp_nagle=True)
        client, _server = open_session(net)
        net.run(500)
        for i in range(5):
            client.send(AppData(i, 50))
        # Only the first sub-MSS segment may be in flight unACKed.
        assert client.snd_max - client.snd_una == 50
        net.run(3000)
        assert client.bytes_sent == 250  # everything drains eventually

    def test_mss_sized_writes_not_held(self):
        net = lan_with(tcp_nagle=True)
        client, _server = open_session(net)
        net.run(500)
        client.send(AppData("a", 512))
        client.send(AppData("b", 512))
        assert client.snd_max - client.snd_una == 1024

    def test_default_off_sends_immediately(self, lan):
        client, _server = open_session(lan)
        lan.run(500)
        for i in range(5):
            client.send(AppData(i, 50))
        assert client.snd_max - client.snd_una == 250
