"""Unit tests for the handoff engines (Section 4's procedures)."""

import pytest

from repro.core.handoff import (
    STAGE_ADD_ROUTE,
    STAGE_CONFIGURE,
    STAGE_DELETE_ROUTE,
    STAGE_IF_DOWN,
    STAGE_IF_UP,
    STAGE_POST,
    STAGE_REGISTRATION,
    STAGE_ROUTE_UPDATE,
    AddressSwitcher,
    DeviceSwitcher,
)
from repro.net.addressing import ip
from repro.sim import ms, s

HOME = ip("36.135.0.10")


def run_switch(testbed, action):
    timelines = []
    action(timelines.append)
    testbed.sim.run_for(s(8))
    assert timelines, "switch never completed"
    return timelines[0]


class TestAddressSwitcher:
    def test_stage_sequence_and_success(self, testbed):
        testbed.visit_dept()
        testbed.sim.run_for(s(1))
        switcher = AddressSwitcher(testbed.mobile)
        timeline = run_switch(
            testbed,
            lambda done: switcher.switch_address(
                testbed.addresses.mh_dept_care_of_2, on_done=done))
        assert timeline.success
        assert [stage.name for stage in timeline.stages] == [
            STAGE_CONFIGURE, STAGE_ROUTE_UPDATE, STAGE_REGISTRATION,
            STAGE_POST]
        assert timeline.kind == "same-subnet"

    def test_total_time_matches_figure7(self, testbed):
        testbed.visit_dept()
        testbed.sim.run_for(s(1))
        switcher = AddressSwitcher(testbed.mobile)
        timeline = run_switch(
            testbed,
            lambda done: switcher.switch_address(
                testbed.addresses.mh_dept_care_of_2, on_done=done))
        total_ms = timeline.total / 1e6
        assert 6.0 < total_ms < 9.5  # the paper's 7.39 ms, plus jitter/ARP
        assert 4.0 < timeline.registration_round_trip / 1e6 < 6.0

    def test_old_address_survives_until_route_update(self, testbed):
        """The new address is an alias first; the old one dies at the
        route-change stage — this is what bounds E1's loss window."""
        old = testbed.visit_dept()
        testbed.sim.run_for(s(1))
        switcher = AddressSwitcher(testbed.mobile)
        observations = []

        def observe():
            observations.append((testbed.sim.now,
                                 testbed.mh_eth.owns_address(old)))
            if observations[-1][1]:
                testbed.sim.call_later(ms(0.5), observe)

        switcher.switch_address(testbed.addresses.mh_dept_care_of_2,
                                on_done=lambda timeline: None)
        observe()
        testbed.sim.run_for(s(2))
        held_until = max(t for t, owned in observations if owned)
        # The old address was still valid ~1 ms in (during configure).
        assert held_until >= ms(1)
        assert testbed.mobile.care_of == testbed.addresses.mh_dept_care_of_2

    def test_switch_requires_visiting(self, testbed):
        with pytest.raises(ValueError):
            AddressSwitcher(testbed.mobile).switch_address(
                testbed.addresses.mh_dept_care_of, on_done=lambda t: None)


class TestColdSwitch:
    def test_stage_sequence(self, testbed):
        testbed.visit_dept()
        testbed.mh_radio.subnet = testbed.addresses.radio_net
        testbed.mh_radio.add_address(testbed.addresses.mh_radio,
                                     make_primary=True)
        testbed.sim.run_for(s(1))
        switcher = DeviceSwitcher(testbed.mobile)
        timeline = run_switch(
            testbed,
            lambda done: switcher.cold_switch(
                testbed.mh_eth, testbed.mh_radio,
                testbed.addresses.mh_radio, testbed.addresses.radio_net,
                testbed.addresses.router_radio, on_done=done))
        assert timeline.success
        names = [stage.name for stage in timeline.stages]
        assert names == [STAGE_DELETE_ROUTE, STAGE_IF_DOWN, STAGE_IF_UP,
                         STAGE_CONFIGURE, STAGE_ADD_ROUTE,
                         STAGE_REGISTRATION, STAGE_POST]
        # "The longer time interval is due to bringing up the new
        # interface" — interface_up dominates.
        up = timeline.duration_of(STAGE_IF_UP)
        assert up > timeline.total / 2
        assert timeline.total < s(1.6)

    def test_cold_switch_flips_interfaces(self, testbed):
        testbed.visit_dept()
        testbed.mh_radio.subnet = testbed.addresses.radio_net
        testbed.mh_radio.add_address(testbed.addresses.mh_radio,
                                     make_primary=True)
        testbed.sim.run_for(s(1))
        switcher = DeviceSwitcher(testbed.mobile)
        run_switch(
            testbed,
            lambda done: switcher.cold_switch(
                testbed.mh_eth, testbed.mh_radio,
                testbed.addresses.mh_radio, testbed.addresses.radio_net,
                testbed.addresses.router_radio, on_done=done))
        assert not testbed.mh_eth.is_up
        assert testbed.mh_radio.is_up
        assert testbed.mobile.care_of == testbed.addresses.mh_radio
        assert testbed.home_agent.current_care_of(HOME) == \
            testbed.addresses.mh_radio

    def test_cold_switch_with_dhcp_acquires_address(self, full_testbed):
        testbed = full_testbed
        testbed.connect_radio(register=True)
        testbed.move_mh_cable(testbed.dept_segment)
        testbed.mh_eth.remove_address(HOME)
        testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
        testbed.mh_eth.state = testbed.mh_eth.state.__class__.DOWN
        testbed.mh_eth.subnet = testbed.addresses.dept_net
        testbed.sim.run_for(s(2))

        switcher = DeviceSwitcher(testbed.mobile)
        timeline = run_switch(
            testbed,
            lambda done: switcher.cold_switch(
                testbed.mh_radio, testbed.mh_eth,
                care_of=ip("0.0.0.0"), net=testbed.addresses.dept_net,
                gateway=testbed.addresses.router_dept, on_done=done,
                dhcp=testbed.mh_dhcp))
        assert timeline.success
        assert timeline.stage("acquire_address") is not None
        leased = testbed.mobile.care_of
        assert leased in testbed.addresses.dept_net
        assert testbed.home_agent.current_care_of(HOME) == leased


class TestHotSwitch:
    def test_requires_new_interface_up(self, testbed):
        testbed.visit_dept()
        with pytest.raises(ValueError):
            DeviceSwitcher(testbed.mobile).hot_switch(
                testbed.mh_radio, testbed.addresses.mh_radio,
                testbed.addresses.radio_net, testbed.addresses.router_radio,
                on_done=lambda t: None)

    def test_hot_switch_is_fast_and_keeps_old_interface_up(self, testbed):
        testbed.visit_dept()
        testbed.connect_radio(register=False)
        testbed.sim.run_for(s(1))
        switcher = DeviceSwitcher(testbed.mobile)
        timeline = run_switch(
            testbed,
            lambda done: switcher.hot_switch(
                testbed.mh_radio, testbed.addresses.mh_radio,
                testbed.addresses.radio_net, testbed.addresses.router_radio,
                on_done=done))
        assert timeline.success
        names = [stage.name for stage in timeline.stages]
        assert names == [STAGE_ROUTE_UPDATE, STAGE_REGISTRATION, STAGE_POST]
        assert testbed.mh_eth.is_up  # "merely changes its route"
        # Registration over the radio dominates; the switch itself is
        # a route change plus one radio round trip.
        assert timeline.total < ms(600)
