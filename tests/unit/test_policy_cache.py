"""Unit tests for the Mobile Policy Table's lookup cache and inspection."""

from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.net.addressing import ip, subnet
from repro.obs import capture_policy_tables, format_policy_table
from repro.obs.metrics import MetricsRegistry


def make_table(cache_size=128, metrics=None, owner="mh"):
    table = MobilePolicyTable(default_mode=RoutingMode.TUNNEL,
                              metrics=metrics, owner=owner,
                              cache_size=cache_size)
    table.set_policy(subnet("36.8.0.0/24"), RoutingMode.LOCAL)
    table.set_policy(ip("36.8.0.99"), RoutingMode.TRIANGLE)
    return table


class TestLookupCache:
    def test_hit_and_miss_diagnostics(self):
        table = make_table()
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL
        assert table._cache_miss_counter.value == 1
        assert table._cache_hit_counter.value == 1

    def test_cached_default_mode_counts_as_policy_miss(self):
        """A cached no-entry result must replay the lookups{miss} count."""
        metrics = MetricsRegistry()
        table = make_table(metrics=metrics)
        for _ in range(3):
            assert table.lookup(ip("99.9.9.9")) is RoutingMode.TUNNEL
        snap = metrics.snapshot()
        assert snap[
            "policy/lookups{host=mh,mode=tunnel,result=miss}"] == 3

    def test_snapshot_identical_with_cache_on_and_off(self):
        """The cache must not perturb anything but its own diagnostics."""
        destinations = [ip(f"36.8.0.{n}") for n in (20, 20, 99, 99, 7)] \
            + [ip("10.0.0.1")] * 4
        registries = {}
        for size in (0, 128):
            metrics = MetricsRegistry()
            table = make_table(cache_size=size, metrics=metrics)
            for dst in destinations:
                table.lookup(dst)
            registries[size] = {
                key: value for key, value in metrics.snapshot().items()
                if not key.startswith("policy/lookup_cache")
            }
        assert registries[0] == registries[128]

    def test_cache_size_zero_disables_memoisation(self):
        table = make_table(cache_size=0)
        table.lookup(ip("36.8.0.20"))
        table.lookup(ip("36.8.0.20"))
        assert table._cache_hit_counter.value == 0
        assert table._cache_miss_counter.value == 2

    def test_lru_eviction_is_bounded(self):
        table = make_table(cache_size=4)
        for n in range(10):
            table.lookup(ip(f"36.8.0.{n}"))
        assert len(table._cache) == 4

    def test_set_policy_invalidates(self):
        table = make_table()
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL
        table.set_policy(ip("36.8.0.20"), RoutingMode.ENCAP_DIRECT)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.ENCAP_DIRECT

    def test_clear_policy_invalidates(self):
        table = make_table()
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL
        table.clear_policy(subnet("36.8.0.0/24"))
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.TUNNEL

    def test_default_mode_setter_invalidates(self):
        table = make_table()
        assert table.lookup(ip("1.2.3.4")) is RoutingMode.TUNNEL
        table.default_mode = RoutingMode.TRIANGLE
        assert table.lookup(ip("1.2.3.4")) is RoutingMode.TRIANGLE

    def test_probe_fallback_invalidates(self):
        table = make_table()
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL
        table.record_probe_result(ip("36.8.0.20"), reachable=False)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.TUNNEL
        table.record_probe_result(ip("36.8.0.20"), reachable=True)
        assert table.lookup(ip("36.8.0.20")) is RoutingMode.LOCAL

    def test_handoff_invalidates_mobile_hosts_cache(self, testbed):
        policy = testbed.mobile.policy
        policy.lookup(ip("36.8.0.20"))
        assert len(policy._cache) > 0
        testbed.visit_dept()
        assert len(policy._cache) == 0


class TestInspection:
    def test_snapshot_sorts_most_specific_first(self):
        snap = make_table().snapshot()
        assert snap["owner"] == "mh"
        assert snap["default_mode"] == "tunnel"
        assert [e["destination"] for e in snap["entries"]] == [
            "36.8.0.99/32", "36.8.0.0/24"]
        assert snap["entries"][0]["mode"] == "triangle"
        assert snap["entries"][0]["origin"] == "static"

    def test_repr_mentions_owner_default_and_entries(self):
        text = repr(make_table())
        assert "owner='mh'" in text
        assert "default=tunnel" in text
        assert "36.8.0.0/24->local(static)" in text

    def test_format_policy_table_renders_snapshot(self):
        report = format_policy_table(make_table())
        assert "mh" in report
        assert "default" in report and "tunnel" in report
        assert "36.8.0.99/32" in report and "triangle" in report

    def test_capture_policy_tables_collects_new_tables(self):
        with capture_policy_tables() as tables:
            inside = make_table(owner="captured")
        outside = make_table(owner="not-captured")
        assert inside in tables
        assert outside not in tables
