"""Unit tests for the VIF + IPIP pair and its invariants."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.net.addressing import UNSPECIFIED, ip
from repro.net.packet import (
    AppData,
    IPPacket,
    PROTO_IPIP,
    PROTO_UDP,
    UDPDatagram,
    encapsulation_depth,
)
from repro.core.tunnel import TunnelError, VirtualInterface, install_tunnel
from repro.sim import ms


def make_inner(src="36.135.0.10", dst="36.8.0.20"):
    return IPPacket(src=ip(src), dst=ip(dst), protocol=PROTO_UDP,
                    payload=UDPDatagram(1, 2, AppData("x", 10)))


def test_install_tunnel_registers_vif_and_ipip(lan):
    vif = install_tunnel(lan.a)
    assert vif in lan.a.interfaces
    assert vif.is_up
    assert getattr(lan.a, "ipip", None) is not None


def test_second_vif_shares_the_ipip_module(lan):
    install_tunnel(lan.a, name="vif1")
    first_module = lan.a.ipip
    install_tunnel(lan.a, name="vif2")
    assert lan.a.ipip is first_module


def test_encapsulation_wraps_and_reinjects(lan):
    vif = install_tunnel(lan.a)
    sent = []
    original_send = lan.a.ip.send
    lan.a.ip.send = lambda packet, via=None, next_hop=None: sent.append(packet)
    vif.endpoint_selector = lambda inner: (ip("10.0.0.1"), ip("10.0.0.2"))
    inner = make_inner()
    vif.send_ip(inner, ip("10.0.0.2"))
    lan.run(100)
    lan.a.ip.send = original_send
    assert len(sent) == 1
    outer = sent[0]
    assert outer.protocol == PROTO_IPIP
    assert outer.src == ip("10.0.0.1")
    assert outer.dst == ip("10.0.0.2")
    assert outer.inner is inner
    assert vif.packets_encapsulated == 1


def test_unspecified_outer_source_is_rejected(lan):
    """The paper's re-encapsulation guard: the outer source must be a
    concrete physical address."""
    vif = install_tunnel(lan.a)
    vif.endpoint_selector = lambda inner: (UNSPECIFIED, ip("10.0.0.2"))
    with pytest.raises(TunnelError):
        vif.send_ip(make_inner(), ip("10.0.0.2"))


def test_missing_endpoint_drops_and_counts(lan):
    vif = install_tunnel(lan.a)
    vif.endpoint_selector = lambda inner: None
    vif.send_ip(make_inner(), ip("10.0.0.2"))
    assert vif.packets_dropped_no_endpoint == 1


def test_no_selector_raises(lan):
    vif = install_tunnel(lan.a)
    with pytest.raises(TunnelError):
        vif.send_ip(make_inner(), ip("10.0.0.2"))


def test_decapsulation_reinjects_inner(lan):
    install_tunnel(lan.b)
    got = []
    lan.b.udp.open(2).on_datagram(lambda d, s, sp, dst: got.append(d.content))
    inner = IPPacket(src=ip("10.0.0.1"), dst=ip("10.0.0.2"),
                     protocol=PROTO_UDP,
                     payload=UDPDatagram(1, 2, AppData("inner", 5)))
    outer = IPPacket(src=ip("10.0.0.1"), dst=ip("10.0.0.2"),
                     protocol=PROTO_IPIP, payload=inner)
    lan.b.ip.receive_packet(outer, lan.b.interfaces[1])
    lan.run(100)
    assert got == ["inner"]
    assert lan.b.ipip.packets_decapsulated == 1


def test_end_to_end_tunnel_over_the_wire(lan):
    """a tunnels a packet to b; b decapsulates and delivers it."""
    vif = install_tunnel(lan.a)
    install_tunnel(lan.b)
    vif.endpoint_selector = lambda inner: (ip("10.0.0.1"), ip("10.0.0.2"))
    got = []
    lan.b.udp.open(9).on_datagram(lambda d, s, sp, dst: got.append(d.content))
    inner = IPPacket(src=ip("10.0.0.1"), dst=ip("10.0.0.2"),
                     protocol=PROTO_UDP,
                     payload=UDPDatagram(1, 9, AppData("through", 7)))
    vif.send_ip(inner, ip("10.0.0.2"))
    lan.run(500)
    assert got == ["through"]


def test_encapsulation_depth_never_exceeds_one_in_practice(testbed):
    """Drive real traffic through the testbed and assert the paper's
    exactly-once-encapsulation invariant over every traced packet."""
    from repro.sim import s as seconds
    from repro.workloads import UdpEchoResponder, UdpEchoStream

    testbed.visit_dept()
    UdpEchoResponder(testbed.mobile)
    stream = UdpEchoStream(testbed.correspondent,
                           testbed.addresses.mh_home, interval=ms(50))
    stream.start()
    testbed.sim.run_for(seconds(2))
    for record in testbed.sim.trace.select("tunnel", "encapsulated"):
        assert record["outer"].count("IPIP") == 1
