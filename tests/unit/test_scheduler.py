"""Unit tests for the pluggable event schedulers (heap and timer wheel)."""

import random

import pytest

from repro.sim.engine import Event, Simulator
from repro.sim.scheduler import (
    SCHEDULERS,
    HeapScheduler,
    Scheduler,
    TimerWheelScheduler,
    create_scheduler,
)


def make_events(times):
    """Events with seq equal to list position (the engine's FIFO rule)."""
    return [Event(time, seq, lambda: None) for seq, time in enumerate(times)]


def drain(scheduler, until=None):
    """Pop every batch, flattening to (time, seq) pairs."""
    out = []
    while True:
        batch = scheduler.pop_batch(until)
        if batch is None:
            return out
        out.extend((event.time, event.seq) for event in batch)


@pytest.fixture(params=["heap", "wheel"])
def scheduler(request):
    return create_scheduler(request.param)


class TestSchedulerContract:
    def test_pops_in_time_then_seq_order(self, scheduler):
        for event in make_events([500, 100, 300, 100, 200]):
            scheduler.push(event)
        assert drain(scheduler) == [(100, 1), (100, 3), (200, 4),
                                    (300, 2), (500, 0)]

    def test_batches_group_identical_timestamps(self, scheduler):
        for event in make_events([70, 70, 30, 70, 30]):
            scheduler.push(event)
        first = scheduler.pop_batch()
        second = scheduler.pop_batch()
        assert [(e.time, e.seq) for e in first] == [(30, 2), (30, 4)]
        assert [(e.time, e.seq) for e in second] == [(70, 0), (70, 1), (70, 3)]

    def test_until_bound_is_inclusive(self, scheduler):
        for event in make_events([10, 20]):
            scheduler.push(event)
        assert [e.time for e in scheduler.pop_batch(until=10)] == [10]
        assert scheduler.pop_batch(until=10) is None
        assert len(scheduler) == 1  # the t=20 event is still queued

    def test_empty_pop_returns_none(self, scheduler):
        assert scheduler.pop_batch() is None
        assert len(scheduler) == 0

    def test_cancelled_events_are_returned_not_hidden(self, scheduler):
        events = make_events([10, 10])
        events[0].cancelled = True
        for event in events:
            scheduler.push(event)
        batch = scheduler.pop_batch()
        assert [e.seq for e in batch] == [0, 1]

    def test_interleaved_push_and_pop(self, scheduler):
        scheduler.push(Event(100, 0, lambda: None))
        assert [e.time for e in scheduler.pop_batch()] == [100]
        # Pushing at the popped timestamp after the cursor reached it must
        # still surface the event (the wheel clamps it to the current slot).
        scheduler.push(Event(100, 1, lambda: None))
        scheduler.push(Event(90, 2, lambda: None))
        assert drain(scheduler) == [(90, 2), (100, 1)]


class TestTimerWheel:
    def test_far_future_goes_to_overflow_and_comes_back(self):
        wheel = TimerWheelScheduler(tick=16, slots=4)
        # Horizons: level 0 = 4*16 = 64 ns, level 1 = 4*64 = 256 ns.
        times = [1_000_000, 5, 200, 70]
        for event in make_events(times):
            wheel.push(event)
        assert len(wheel._overflow) == 1  # only the 1 ms event overflows
        assert drain(wheel) == [(5, 1), (70, 3), (200, 2), (1_000_000, 0)]
        assert len(wheel) == 0

    def test_level1_cascade_preserves_order(self):
        wheel = TimerWheelScheduler(tick=16, slots=4)
        # All land in level 1 (beyond 64 ns, within 256 ns), same slot.
        for event in make_events([200, 195, 200]):
            wheel.push(event)
        assert drain(wheel) == [(195, 1), (200, 0), (200, 2)]

    def test_empty_revolution_skipping(self):
        wheel = TimerWheelScheduler(tick=16, slots=4)
        wheel.push(Event(10_000, 0, lambda: None))
        assert [e.time for e in wheel.pop_batch()] == [10_000]
        # Cursors must have advanced past the popped time, not wrapped.
        assert wheel._cursor0 >= 10_000 // 16

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TimerWheelScheduler(tick=0)
        with pytest.raises(ValueError):
            TimerWheelScheduler(slots=1)

    def test_randomized_equivalence_with_heap(self):
        rng = random.Random(2026)
        for trial in range(20):
            heap, wheel = HeapScheduler(), TimerWheelScheduler()
            events = []
            t = 0
            for seq in range(400):
                # Mix of short gaps, exact ties, and far-future spikes.
                roll = rng.random()
                if roll < 0.2:
                    pass  # tie with the previous event
                elif roll < 0.9:
                    t += rng.randrange(1, 200_000)
                else:
                    t += rng.randrange(1, 60) * 100_000_000
                events.append((t, seq))
            rng.shuffle(events)
            for time, seq in events:
                heap.push(Event(time, seq, lambda: None))
                wheel.push(Event(time, seq, lambda: None))
            assert drain(heap) == drain(wheel), f"trial {trial} diverged"

    def test_randomized_equivalence_interleaved(self):
        """Pops interleaved with pushes relative to the advancing cursor."""
        rng = random.Random(9)
        heap, wheel = HeapScheduler(), TimerWheelScheduler(tick=64, slots=8)
        now, seq = 0, 0
        popped = []
        for _ in range(300):
            for _ in range(rng.randrange(0, 4)):
                when = now + rng.randrange(0, 5_000_000)
                heap.push(Event(when, seq, lambda: None))
                wheel.push(Event(when, seq, lambda: None))
                seq += 1
            if rng.random() < 0.6:
                a, b = heap.pop_batch(), wheel.pop_batch()
                assert (a is None) == (b is None)
                if a is not None:
                    pairs = [(e.time, e.seq) for e in a]
                    assert pairs == [(e.time, e.seq) for e in b]
                    popped.extend(pairs)
                    now = pairs[0][0]
        remaining_heap, remaining_wheel = drain(heap), drain(wheel)
        assert remaining_heap == remaining_wheel
        popped.extend(remaining_heap)
        assert sorted(popped, key=lambda p: p[0]) == popped


class TestCreateScheduler:
    def test_registry_names(self):
        assert set(SCHEDULERS) == {"heap", "wheel"}
        assert isinstance(create_scheduler("heap"), HeapScheduler)
        assert isinstance(create_scheduler("wheel"), TimerWheelScheduler)

    def test_none_means_default_heap(self):
        assert isinstance(create_scheduler(None), HeapScheduler)

    def test_instance_passes_through(self):
        wheel = TimerWheelScheduler()
        assert create_scheduler(wheel) is wheel

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            create_scheduler("splay-tree")

    def test_simulator_exposes_scheduler(self):
        sim = Simulator(scheduler="wheel")
        assert sim.scheduler.name == "wheel"
        assert sim.profile()["scheduler"] == "wheel"
        assert Simulator().scheduler.name == "heap"

    def test_base_class_is_abstract(self):
        base = Scheduler()
        with pytest.raises(NotImplementedError):
            base.push(Event(0, 0, lambda: None))
        with pytest.raises(NotImplementedError):
            base.pop_batch()
        with pytest.raises(NotImplementedError):
            len(base)
