"""Unit tests for the measurement workloads."""

from repro.net.addressing import ip
from repro.sim import ms, s
from repro.workloads import (
    TcpBulkReceiver,
    TcpBulkSender,
    UdpEchoResponder,
    UdpEchoStream,
)


class TestUdpEcho:
    def test_all_probes_echoed_on_healthy_lan(self, lan):
        UdpEchoResponder(lan.b)
        stream = UdpEchoStream(lan.a, ip("10.0.0.2"), interval=ms(50))
        stream.start()
        lan.sim.run_for(s(1))
        stream.stop()
        lan.sim.run_for(ms(500))
        assert stream.sent == 21
        assert stream.received == 21
        assert stream.lost_count() == 0
        assert len(stream.rtts()) == 21

    def test_loss_counting_during_an_outage(self, lan):
        UdpEchoResponder(lan.b)
        stream = UdpEchoStream(lan.a, ip("10.0.0.2"), interval=ms(50))
        stream.start()
        lan.sim.run_for(ms(500))
        iface = lan.b.interfaces[1]
        iface.state = iface.state.__class__.DOWN
        lan.sim.run_for(ms(300))
        iface.state = iface.state.__class__.UP
        lan.sim.run_for(ms(500))
        stream.stop()
        lan.sim.run_for(ms(500))
        assert 4 <= stream.lost_count() <= 8
        assert stream.longest_outage() == stream.lost_count()
        # The lost probes are contiguous sequence numbers.
        lost = stream.lost_sequences()
        assert lost == list(range(lost[0], lost[0] + len(lost)))

    def test_windowed_loss_counting(self, lan):
        UdpEchoResponder(lan.b)
        stream = UdpEchoStream(lan.a, ip("10.0.0.2"), interval=ms(50))
        stream.start()
        lan.sim.run_for(s(1))
        stream.stop()
        lan.sim.run_for(ms(500))
        assert stream.lost_count(since=ms(100), until=ms(200)) == 0
        assert stream.lost_sequences(since=ms(2000)) == []

    def test_start_is_idempotent_and_stop_halts(self, lan):
        UdpEchoResponder(lan.b)
        stream = UdpEchoStream(lan.a, ip("10.0.0.2"), interval=ms(100))
        stream.start()
        stream.start()
        lan.sim.run_for(ms(250))
        stream.stop()
        sent_at_stop = stream.sent
        lan.sim.run_for(ms(500))
        assert stream.sent == sent_at_stop

    def test_responder_counts(self, lan):
        responder = UdpEchoResponder(lan.b)
        stream = UdpEchoStream(lan.a, ip("10.0.0.2"), interval=ms(100))
        stream.start()
        lan.sim.run_for(ms(450))
        stream.stop()
        lan.sim.run_for(ms(200))
        assert responder.echoed == stream.received


class TestTcpSession:
    def test_chunks_arrive_in_order(self, lan):
        receiver = TcpBulkReceiver(lan.b)
        sender = TcpBulkSender(lan.a, ip("10.0.0.2"), interval=ms(50))
        sender.start()
        lan.sim.run_for(s(1))
        sender.finish()
        lan.sim.run_for(s(3))
        assert sender.established
        assert receiver.received_chunks == list(range(sender.sent_chunks))
        assert receiver.in_order
        assert receiver.closed

    def test_sender_stop_pauses_stream(self, lan):
        receiver = TcpBulkReceiver(lan.b)
        sender = TcpBulkSender(lan.a, ip("10.0.0.2"), interval=ms(50))
        sender.start()
        lan.sim.run_for(ms(500))
        sender.stop()
        count = sender.sent_chunks
        lan.sim.run_for(ms(500))
        assert sender.sent_chunks == count
        assert receiver.connection is not None
