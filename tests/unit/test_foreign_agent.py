"""Unit tests for the foreign-agent baseline."""

import pytest

from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream

HOME = ip("36.135.0.10")


@pytest.fixture
def fa_testbed():
    sim = Simulator(seed=321)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False, with_foreign_agent=True)
    return testbed


def attach(testbed):
    """Attach the MH to net 36.8 through the Ethernet foreign agent."""
    fa = testbed.foreign_agent
    testbed.move_mh_cable(testbed.dept_segment)
    testbed.mh_eth.remove_address(HOME)
    testbed.mobile.ip.routes.remove_matching(interface=testbed.mh_eth)
    outcomes = []
    testbed.mobile.attach_via_foreign_agent(
        testbed.mh_eth, fa.care_of_address, testbed.addresses.dept_net,
        on_registered=outcomes.append)
    testbed.sim.run_for(s(2))
    return fa, outcomes


def test_registration_is_relayed_and_binding_points_at_fa(fa_testbed):
    fa, outcomes = attach(fa_testbed)
    assert outcomes and outcomes[0].accepted
    assert fa.requests_relayed == 1
    assert fa.replies_relayed == 1
    assert fa_testbed.home_agent.current_care_of(HOME) == fa.care_of_address
    assert fa.visitor_count() == 1


def test_visitor_route_is_on_link(fa_testbed):
    fa, _ = attach(fa_testbed)
    visitor = fa.visitor(HOME)
    assert visitor is not None and visitor.route is not None
    assert visitor.route.interface is fa.interface
    assert visitor.route.gateway is None


def test_traffic_flows_through_the_fa(fa_testbed):
    fa, _ = attach(fa_testbed)
    UdpEchoResponder(fa_testbed.mobile)
    stream = UdpEchoStream(fa_testbed.correspondent, HOME, interval=ms(100))
    stream.start()
    fa_testbed.sim.run_for(s(2))
    stream.stop()
    fa_testbed.sim.run_for(s(1))
    assert stream.received == stream.sent
    # Every inbound packet was decapsulated by the FA's host.
    assert fa.host.ipip.packets_decapsulated >= stream.sent


def test_mobile_host_keeps_only_home_address(fa_testbed):
    attach(fa_testbed)
    assert fa_testbed.mh_eth.owns_address(HOME)
    assert fa_testbed.mh_eth.addresses == [HOME]


def test_deregistration_after_returning_home_drops_binding(fa_testbed):
    """Deregistration happens once the MH is back on its home link (it
    must be there to receive the reply at the home address)."""
    fa, _ = attach(fa_testbed)
    outcomes = []
    fa_testbed.move_mh_cable(fa_testbed.home_segment)
    fa_testbed.mobile.come_home(fa_testbed.mh_eth,
                                gateway=fa_testbed.addresses.router_home,
                                on_done=outcomes.append)
    fa_testbed.sim.run_for(s(2))
    assert outcomes and outcomes[0].accepted
    assert fa_testbed.home_agent.current_care_of(HOME) is None


def test_departure_forwarding_retunnels(fa_testbed):
    fa, _ = attach(fa_testbed)
    # The visitor moves to the radio network with a collocated care-of.
    fa_testbed.connect_radio(register=True)
    fa.notify_departure(HOME, fa_testbed.addresses.mh_radio)
    fa_testbed.sim.run_for(s(1))
    # The old on-link route is replaced by a VIF route.
    visitor = fa.visitor(HOME)
    assert visitor.departed
    assert visitor.route.interface is fa.vif
    # A late tunneled packet for the visitor is re-tunneled, not dropped.
    UdpEchoResponder(fa_testbed.mobile)
    stream = UdpEchoStream(fa_testbed.correspondent, HOME, interval=ms(200))
    # Force the stale path: re-point the HA binding at the FA briefly.
    fa_testbed.home_agent.bindings.register(HOME, fa.care_of_address, s(60))
    stream.start()
    fa_testbed.sim.run_for(ms(900))
    stream.stop()
    fa_testbed.sim.run_for(s(2))
    assert fa.packets_forwarded_after_departure > 0
    assert stream.received > 0


def test_departure_without_forwarding_drops(fa_testbed):
    fa, _ = attach(fa_testbed)
    fa.notify_departure(HOME, None)
    visitor = fa.visitor(HOME)
    assert visitor.departed and visitor.route is None


def test_grace_period_expires_visitor(fa_testbed):
    fa, _ = attach(fa_testbed)
    fa.notify_departure(HOME, fa_testbed.addresses.mh_radio, grace=s(2))
    fa_testbed.sim.run_for(s(3))
    assert fa.visitor(HOME) is None
