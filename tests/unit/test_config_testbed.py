"""Unit tests for the calibrated config and the Figure-5 testbed builder."""

import pytest

from repro.config import DEFAULT_CONFIG, Config
from repro.net.addressing import ip
from repro.sim import KBPS, Simulator, ms, s
from repro.sim.units import transmission_delay
from repro.testbed import Addresses, build_testbed


class TestConfig:
    def test_radio_throughput_in_papers_band(self):
        # "In theory, Metricom radios can send 100 Kbits/second ... but in
        # practice 30-40 Kbits/second is the best we achieve."
        bw = DEFAULT_CONFIG.radio.bandwidth_bps
        assert 30 * KBPS <= bw <= 40 * KBPS

    def test_registration_costs_add_up_to_figure7(self):
        """The configured costs must make the 4.79 ms arithmetic possible:
        HA-side (receive + processing + send) ~= the paper's 1.48 ms."""
        reg = DEFAULT_CONFIG.registration
        ha_side = (reg.ha_receive_overhead + reg.ha_processing_cost
                   + reg.ha_send_overhead)
        assert ms(1.3) < ha_side < ms(1.7)

    def test_cold_switch_budget_under_paper_bound(self):
        """Device delays must keep cold switches under ~1.25 s."""
        cfg = DEFAULT_CONFIG
        worst = (cfg.ethernet_device.down_delay + cfg.radio_device.up_delay
                 + cfg.radio_device.configure_delay)
        assert worst < ms(1100)  # leaves room for routing + registration

    def test_with_overrides_returns_modified_copy(self):
        custom = DEFAULT_CONFIG.with_overrides(jitter=0.0)
        assert custom.jitter == 0.0
        assert DEFAULT_CONFIG.jitter != 0.0
        assert isinstance(custom, Config)

    def test_serial_line_is_115200_bps(self):
        assert DEFAULT_CONFIG.serial.bandwidth_bps == 115_200

    def test_radio_rtt_lands_in_200_250ms_band(self):
        """Two air crossings of a small tunneled probe must land in the
        paper's 200-250 ms RTT band."""
        cfg = DEFAULT_CONFIG
        probe_bytes = 80  # echo probe + IPIP overhead
        one_way = (cfg.radio.latency
                   + transmission_delay(probe_bytes, cfg.radio.bandwidth_bps)
                   + cfg.serial.latency
                   + transmission_delay(probe_bytes, cfg.serial.bandwidth_bps))
        assert ms(95) < one_way < ms(125)


class TestTestbed:
    def test_default_build_matches_figure5(self, testbed):
        a = testbed.addresses
        assert testbed.mobile.home_address == a.mh_home
        assert testbed.home_agent.address == a.router_home  # collocated
        assert testbed.home_agent.serves(a.mh_home)
        assert testbed.mobile.at_home
        assert testbed.correspondent.primary_address() == a.ch_dept

    def test_separate_home_agent_variant(self):
        sim = Simulator(seed=9)
        testbed = build_testbed(sim, separate_home_agent=True,
                                with_remote_correspondent=False,
                                with_dhcp=False)
        assert testbed.home_agent_host is not testbed.router
        assert testbed.home_agent.address == testbed.addresses.home_agent_host

    def test_remote_network_present_by_default(self, full_testbed):
        assert full_testbed.remote_correspondent is not None
        assert full_testbed.remote_router is not None
        assert full_testbed.remote_segment is not None

    def test_dhcp_server_and_client_wired(self, full_testbed):
        assert full_testbed.dhcp_server is not None
        assert full_testbed.mh_dhcp is not None
        assert full_testbed.dhcp_server.subnet == full_testbed.addresses.dept_net

    def test_home_connectivity_out_of_the_box(self, testbed):
        results = []
        testbed.correspondent.icmp.ping(
            testbed.addresses.mh_home, on_reply=results.append,
            on_timeout=lambda: results.append(None))
        testbed.sim.run_for(s(2))
        assert results and results[0] is not None

    def test_remote_correspondent_reachable(self, full_testbed):
        results = []
        full_testbed.correspondent.icmp.ping(
            full_testbed.addresses.ch_remote, on_reply=results.append,
            on_timeout=lambda: results.append(None))
        full_testbed.sim.run_for(s(2))
        assert results and results[0] is not None

    def test_visit_dept_helper(self, testbed):
        care_of = testbed.visit_dept(register=False)
        assert care_of == testbed.addresses.mh_dept_care_of
        assert testbed.mh_eth.segment is testbed.dept_segment
        assert not testbed.mobile.at_home

    def test_visit_remote_requires_remote_net(self, testbed):
        with pytest.raises(ValueError):
            testbed.visit_remote()

    def test_unplug_ethernet(self, testbed):
        testbed.unplug_ethernet()
        assert testbed.mh_eth.segment is None
        assert not testbed.mh_eth.is_up

    def test_custom_addresses_respected(self):
        sim = Simulator(seed=9)
        custom = Addresses()
        testbed = build_testbed(sim, addresses=custom,
                                with_remote_correspondent=False,
                                with_dhcp=False)
        assert testbed.addresses is custom
