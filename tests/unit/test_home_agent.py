"""Unit tests for the home agent service (Section 3.4)."""

import pytest

from repro.core.registration import (
    CODE_ACCEPTED,
    CODE_DENIED_BAD_REQUEST,
    CODE_DENIED_UNKNOWN_HOME,
    REGISTRATION_PORT,
    RegistrationClient,
    RegistrationReply,
    RegistrationRequest,
)
from repro.net.addressing import ip
from repro.sim import ms, s

HOME = ip("36.135.0.10")


@pytest.fixture
def agent(testbed):
    return testbed.home_agent


def intercept_routes(agent):
    """The /32 intercept entries pointing into the agent's VIF."""
    return [entry for entry in agent.host.ip.routes
            if entry.destination.prefix_len == 32
            and entry.interface is agent.vif]


def register(testbed, care_of=None, lifetime=None):
    """Drive a real registration from the mobile host (already visiting)."""
    outcomes = []
    testbed.mobile.registration.register(
        care_of if care_of is not None else testbed.addresses.mh_dept_care_of,
        on_done=outcomes.append, lifetime=lifetime,
        via=testbed.mobile.active_interface)
    testbed.sim.run_for(s(2))
    return outcomes


def test_registration_installs_binding_route_and_proxy(testbed, agent):
    testbed.visit_dept(register=False)
    outcomes = register(testbed)
    assert outcomes and outcomes[0].accepted
    assert agent.current_care_of(HOME) == testbed.addresses.mh_dept_care_of
    assert HOME in agent.home_interface.arp.proxy_entries()
    entry = agent.host.ip.routes.lookup(HOME)
    assert entry is not None and entry.interface is agent.vif
    assert agent.registrations_accepted == 1


def test_registration_broadcasts_gratuitous_arp(testbed, agent):
    testbed.visit_dept(register=False)
    register(testbed)
    records = testbed.sim.trace.select("arp", "gratuitous",
                                       address=str(HOME))
    assert records


def test_unknown_home_is_denied(testbed, agent):
    agent.stops_serving(HOME)
    testbed.visit_dept(register=False)
    outcomes = register(testbed)
    assert outcomes and not outcomes[0].accepted
    assert outcomes[0].reply.code == CODE_DENIED_UNKNOWN_HOME
    assert agent.requests_denied == 1
    assert agent.current_care_of(HOME) is None


def test_wrong_home_agent_address_is_denied(testbed, agent):
    testbed.visit_dept(register=False)
    # Point the client at the right box but claim the wrong HA identity.
    testbed.mobile.registration.home_agent = testbed.addresses.router_dept
    outcomes = []
    testbed.mobile.registration.register(
        testbed.addresses.mh_dept_care_of, on_done=outcomes.append,
        via=testbed.mobile.active_interface,
        destination=agent.address)
    testbed.sim.run_for(s(2))
    assert outcomes and outcomes[0].reply.code == CODE_DENIED_BAD_REQUEST


def test_deregistration_removes_everything(testbed, agent):
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    assert agent.current_care_of(HOME) is not None
    outcomes = []
    testbed.mobile.registration.deregister(on_done=outcomes.append,
                                           via=testbed.mobile.active_interface)
    testbed.sim.run_for(s(2))
    assert outcomes and outcomes[0].accepted
    assert agent.current_care_of(HOME) is None
    assert HOME not in agent.home_interface.arp.proxy_entries()
    assert intercept_routes(agent) == []
    assert agent.deregistrations == 1


def test_binding_expiry_tears_down_intercept(testbed, agent):
    testbed.visit_dept(register=False)
    register(testbed, lifetime=s(3))
    assert agent.current_care_of(HOME) is not None
    testbed.sim.run_for(s(4))
    assert agent.current_care_of(HOME) is None
    assert HOME not in agent.home_interface.arp.proxy_entries()
    assert intercept_routes(agent) == []


def test_reregistration_updates_care_of_in_place(testbed, agent):
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    outcomes = register(testbed, care_of=testbed.addresses.mh_dept_care_of_2)
    assert outcomes[0].accepted
    assert agent.current_care_of(HOME) == testbed.addresses.mh_dept_care_of_2
    # Still exactly one intercept route.
    matches = [entry for entry in agent.host.ip.routes
               if entry.destination.prefix_len == 32
               and entry.destination.network == HOME]
    assert len(matches) == 1


def test_vif_endpoint_selector_uses_binding(testbed, agent):
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    from repro.net.packet import AppData, IPPacket, PROTO_UDP, UDPDatagram

    packet = IPPacket(src=ip("36.8.0.20"), dst=HOME, protocol=PROTO_UDP,
                      payload=UDPDatagram(1, 2, AppData("x", 1)))
    endpoints = agent._select_endpoints(packet)
    assert endpoints == (agent.address, testbed.addresses.mh_dept_care_of)
    # No binding -> no endpoints (packet is dropped, not black-holed).
    other = IPPacket(src=ip("36.8.0.20"), dst=ip("36.135.0.99"),
                     protocol=PROTO_UDP,
                     payload=UDPDatagram(1, 2, AppData("x", 1)))
    assert agent._select_endpoints(other) is None


def test_ha_processing_time_matches_figure7(testbed, agent):
    testbed.visit_dept(register=False)
    outcomes = register(testbed)
    ident = outcomes[0].reply.identification
    received = testbed.sim.trace.select("registration", "ha_received",
                                        ident=ident)
    replied = testbed.sim.trace.select("registration", "ha_reply",
                                       ident=ident)
    delta_ms = (replied[0].time - received[0].time) / 1e6
    assert 1.3 < delta_ms < 1.7  # the paper's 1.48 ms


def test_negative_lifetime_denied(testbed, agent):
    testbed.visit_dept(register=False)
    outcomes = []
    # Craft a raw request with a negative lifetime.
    request = RegistrationRequest(HOME, testbed.addresses.mh_dept_care_of,
                                  agent.address, lifetime=-1,
                                  identification=424242)
    socket = testbed.mobile.udp.open(0)
    socket.sendto(request.wrap(), agent.address, REGISTRATION_PORT,
                  via=testbed.mobile.active_interface)
    testbed.sim.run_for(s(1))
    assert agent.requests_denied == 1
