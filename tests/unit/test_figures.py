"""Unit tests for the ASCII figure renderers."""

from repro.experiments import (
    run_device_switch_experiment,
    run_registration_experiment,
)
from repro.experiments.figures import (
    render_figure6,
    render_figure7,
    render_histogram,
)


class TestRenderHistogram:
    def test_empty(self):
        assert render_histogram({}) == "(no data)"

    def test_bar_heights_match_counts(self):
        text = render_histogram({0: 3, 2: 1})
        lines = text.splitlines()
        columns = [line for line in lines if "|" in line]
        # The value-0 column has more filled cells than the value-2 column.
        zero_hits = sum(1 for line in columns if line.split("|", 1)[1][:3].strip() == "#")
        two_hits = sum(1 for line in columns
                       if len(line.split("|", 1)[1]) >= 9
                       and line.split("|", 1)[1][6:9].strip() == "#")
        assert zero_hits == 3
        assert two_hits == 1

    def test_axis_labels(self):
        text = render_histogram({0: 1, 1: 2}, x_label="losses")
        assert "losses" in text
        assert " 0 " in text and " 1 " in text


def test_figure6_renders_all_cases():
    report = run_device_switch_experiment(iterations=2, seed=19)
    text = render_figure6(report)
    for fragment in ("cold ethernet->radio", "cold radio->ethernet",
                     "hot ethernet->radio", "hot radio->ethernet"):
        assert fragment in text
    assert "packets lost" in text


def test_figure7_bars_are_proportional():
    report = run_registration_experiment(iterations=3, seed=20)
    text = render_figure7(report)
    lines = {line.strip().split("|")[0].strip(): line
             for line in text.splitlines() if "|" in line}
    reg_bar = lines["registration req->reply"].count("#")
    route_bar = lines["change route table"].count("#")
    assert reg_bar > route_bar * 4  # 4.8 ms vs 0.6 ms
    assert "total" in text
