"""Unit tests for the network-change notification API (Section 6)."""

from repro.core.notify import (
    EventKind,
    LinkProfile,
    NetworkChangeNotifier,
    NetworkEvent,
    profile_of,
)
from repro.sim import Simulator, s


def eth_profile(name="eth0", bandwidth=10_000_000.0, up=True):
    return LinkProfile(interface_name=name, technology="ethernet",
                       bandwidth_bps=bandwidth, latency_ns=150_000, is_up=up)


def radio_profile():
    return LinkProfile(interface_name="strip0", technology="radio",
                       bandwidth_bps=34_000.0, latency_ns=78_000_000,
                       is_up=True)


class TestSubscriptions:
    def test_subscriber_receives_published_events(self, sim):
        notifier = NetworkChangeNotifier(sim)
        events = []
        notifier.subscribe(events.append)
        notifier.attachment_changed(eth_profile())
        assert len(events) == 1
        assert events[0].kind is EventKind.ATTACHMENT_CHANGED
        assert events[0].new.technology == "ethernet"

    def test_kind_filter(self, sim):
        notifier = NetworkChangeNotifier(sim)
        events = []
        notifier.subscribe(events.append,
                           kinds=[EventKind.CONNECTIVITY_LOST])
        notifier.attachment_changed(eth_profile())
        notifier.connectivity_lost()
        assert [event.kind for event in events] == [EventKind.CONNECTIVITY_LOST]

    def test_bandwidth_threshold_filter(self, sim):
        """An application only interested in big QoS shifts (e.g. video)
        ignores ethernet->ethernet reattachments but hears about the
        radio."""
        notifier = NetworkChangeNotifier(sim)
        coarse, fine = [], []
        notifier.subscribe(coarse.append, min_bandwidth_change=0.5)
        notifier.subscribe(fine.append)
        notifier.attachment_changed(eth_profile("eth0"))
        notifier.attachment_changed(eth_profile("eth1"))   # same bandwidth
        notifier.attachment_changed(radio_profile())        # 300x drop
        assert len(fine) == 3
        # The coarse subscriber sees the first attachment (no old profile,
        # ratio defaults to 1.0 -> filtered? no: old is None -> ratio 1.0
        # -> change 0 -> filtered) and the radio cliff.
        assert [event.new.technology for event in coarse] == ["radio"]

    def test_cancelled_subscription_is_silent(self, sim):
        notifier = NetworkChangeNotifier(sim)
        events = []
        subscription = notifier.subscribe(events.append)
        subscription.cancel()
        notifier.attachment_changed(eth_profile())
        assert events == []
        assert subscription.delivered == 0

    def test_quality_change_same_interface(self, sim):
        notifier = NetworkChangeNotifier(sim)
        events = []
        notifier.subscribe(events.append)
        notifier.attachment_changed(eth_profile(bandwidth=10_000_000.0))
        notifier.attachment_changed(eth_profile(bandwidth=5_000_000.0))
        assert [event.kind for event in events] == [
            EventKind.ATTACHMENT_CHANGED, EventKind.QUALITY_CHANGED]

    def test_identical_reattachment_publishes_nothing(self, sim):
        notifier = NetworkChangeNotifier(sim)
        events = []
        notifier.subscribe(events.append)
        notifier.attachment_changed(eth_profile())
        notifier.attachment_changed(eth_profile())
        assert len(events) == 1

    def test_event_carries_timestamps(self, sim):
        notifier = NetworkChangeNotifier(sim)
        events = []
        notifier.subscribe(events.append)
        sim.call_at(s(5), lambda: notifier.attachment_changed(eth_profile()))
        sim.run()
        assert events[0].time == s(5)


class TestProfileOf:
    def test_profiles_reflect_physical_links(self, testbed):
        eth = profile_of(testbed.mh_eth)
        assert eth.technology == "ethernet"
        assert eth.bandwidth_bps == testbed.config.ethernet.bandwidth_bps
        radio = profile_of(testbed.mh_radio)
        assert radio.technology == "radio"
        assert radio.bandwidth_bps == testbed.config.radio.bandwidth_bps
        lo = profile_of(testbed.mobile.loopback)
        assert lo.technology == "loopback"


class TestMobileHostIntegration:
    def test_visiting_publishes_attachment_change(self, testbed):
        events = []
        testbed.mobile.notifier.subscribe(events.append)
        testbed.visit_dept(register=False)
        assert any(event.kind is EventKind.ATTACHMENT_CHANGED
                   for event in events)

    def test_device_switch_reports_bandwidth_cliff(self, testbed):
        """The adaptive-application scenario: an app subscribed with a
        bandwidth threshold hears about the ethernet->radio move."""
        from repro.core.handoff import DeviceSwitcher

        testbed.visit_dept()
        testbed.connect_radio(register=False)
        testbed.sim.run_for(s(1))
        cliffs = []
        testbed.mobile.notifier.subscribe(cliffs.append,
                                          min_bandwidth_change=0.5)
        DeviceSwitcher(testbed.mobile).hot_switch(
            testbed.mh_radio, testbed.addresses.mh_radio,
            testbed.addresses.radio_net, testbed.addresses.router_radio,
            on_done=lambda timeline: None)
        testbed.sim.run_for(s(2))
        assert cliffs
        assert cliffs[0].new.technology == "radio"
        assert cliffs[0].bandwidth_ratio < 0.01
