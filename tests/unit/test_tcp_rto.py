"""Unit tests for the RFC 6298 RTO estimator and Karn's algorithm."""

from repro.net.addressing import ip
from repro.net.packet import AppData
from repro.net.tcp import RtoEstimator
from repro.sim import ms


class TestRtoEstimator:
    def test_first_sample_initialises_per_rfc(self):
        est = RtoEstimator()
        est.sample(ms(100))
        assert est.srtt == ms(100)
        assert est.rttvar == ms(50)
        assert est.rto == max(est.min_rto, ms(100) + 4 * ms(50))

    def test_ewma_uses_legacy_integer_gains(self):
        # The arithmetic must match the seed's inlined estimator exactly:
        # srtt += delta//8, rttvar += (abs(delta)-rttvar)//4.
        est = RtoEstimator()
        est.sample(ms(100))
        srtt, rttvar = est.srtt, est.rttvar
        measured = ms(180)
        delta = measured - srtt
        expected_srtt = srtt + delta // 8
        expected_rttvar = rttvar + (abs(delta) - rttvar) // 4
        est.sample(measured)
        assert est.srtt == expected_srtt
        assert est.rttvar == expected_rttvar

    def test_rto_clamped_to_bounds(self):
        est = RtoEstimator(min_rto=ms(400), max_rto=ms(16_000))
        est.sample(ms(1))
        assert est.rto == ms(400)
        est2 = RtoEstimator(min_rto=ms(400), max_rto=ms(16_000))
        est2.sample(ms(60_000))
        assert est2.rto == ms(16_000)

    def test_backoff_doubles_and_caps(self):
        est = RtoEstimator()
        base = est.current()
        est.back_off()
        assert est.current() == min(est.max_rto, base * 2)
        for _ in range(20):
            est.back_off()
        assert est.backoff == est.backoff_limit
        assert est.current() == est.max_rto

    def test_fresh_sample_resets_backoff(self):
        # RFC 6298 (5.7): once an RTT measurement succeeds, the backed-off
        # timer returns to the computed RTO.
        est = RtoEstimator()
        est.sample(ms(100))
        est.back_off()
        est.back_off()
        assert est.backoff == 2
        est.sample(ms(100))
        assert est.backoff == 0
        assert est.current() == est.rto

    def test_granularity_zero_keeps_legacy_formula(self):
        est = RtoEstimator(granularity=0)
        est.sample(ms(200))
        assert est.rto == max(est.min_rto,
                              min(est.max_rto, est.srtt + 4 * est.rttvar))


def established_pair(lan):
    got = []
    lan.b.tcp.listen(23, lambda conn: setattr(conn, "on_data",
                                              lambda d: got.append(d.content)))
    client = lan.a.tcp.connect(ip("10.0.0.2"), 23)
    lan.run(500)
    return client, got


class TestKarn:
    def test_retransmitted_segment_never_feeds_the_estimator(self, lan):
        """Karn regression: the ACK of a retransmission is ambiguous —
        the RTT sample it would produce must be discarded."""
        client, got = established_pair(lan)
        srtt_before = client._srtt  # from the (cleanly timed) handshake
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        client.send(AppData("delayed", 100))
        lan.run(3000)  # several RTOs fire; the segment is retransmitted
        assert client._rto_backoff > 0
        assert client._timing_seq is None  # nothing is being timed
        iface_b.state = iface_b.state.__class__.UP
        lan.run(8000)
        assert got == ["delayed"]
        # The ACK of the retransmitted segment arrived after a multi-second
        # outage; had it been (wrongly) timed, srtt would have exploded.
        assert client._srtt == srtt_before

    def test_pump_does_not_time_rewound_segments(self, lan):
        client, _got = established_pair(lan)
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        client.send(AppData("first", 100))
        lan.run(1500)  # at least one timeout rewinds snd_nxt and re-pumps
        assert client.segments_retransmitted > 0
        # The re-pumped copy covers old sequence space: Karn forbids
        # starting a timer on it.
        assert client._timing_seq is None

    def test_backoff_resets_after_fresh_sample_end_to_end(self, lan):
        client, got = established_pair(lan)
        iface_b = lan.b.interfaces[1]
        iface_b.state = iface_b.state.__class__.DOWN
        client.send(AppData("stalled", 100))
        lan.run(3000)
        assert client._rto_backoff > 0
        iface_b.state = iface_b.state.__class__.UP
        lan.run(8000)
        assert got == ["stalled"]
        # A fresh (first-transmission) segment gets timed and its sample
        # must clear the backoff.
        client.send(AppData("fresh", 100))
        lan.run(2000)
        assert got == ["stalled", "fresh"]
        assert client._rto_backoff == 0

    def test_config_bounds_flow_into_the_estimator(self, lan):
        client, _ = established_pair(lan)
        assert client._rto_est.min_rto == lan.config.tcp_min_rto
        assert client._rto_est.max_rto == lan.config.tcp_max_rto
