"""Property tests for the x7 fleet-scale experiment.

Two contracts: the report is byte-identical at any worker count (the
``--jobs`` determinism promise), and an aggregate model's merged partials
equal the merge of per-host models over the same hosts (the lossless
aggregation promise that justifies modeling 10^6 hosts statistically).
"""

import math

import pytest

from repro.core.binding_shard import HashRing
from repro.experiments.exp_fleet_scale import run_fleet_scale_experiment
from repro.sim import Simulator, s
from repro.stats import LatencyHistogram, Stats, merge_histograms, merge_stats
from repro.workloads.aggregate import AggregateHostModel

SMALL_SIZES = (1_000, 3_000)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_report_is_byte_identical_across_jobs(seed):
    reports = [
        run_fleet_scale_experiment(fleet_sizes=SMALL_SIZES, seed=seed,
                                   shard_hosts=500, failover_fleet=2_000,
                                   jobs=jobs).format_report()
        for jobs in (1, 4)
    ]
    assert reports[0] == reports[1]


def test_seed_changes_the_report():
    reports = {
        run_fleet_scale_experiment(fleet_sizes=(2_000,), seed=seed,
                                   shard_hosts=500,
                                   failover_fleet=None).format_report()
        for seed in (0, 1)
    }
    assert len(reports) == 2


def test_aggregate_model_merge_equals_per_host_merge():
    # One 40-host model vs forty 1-host models over the same global host
    # indices, same ring, same stream name and simulator seed: the sample
    # multiset must be identical, so integer summaries match exactly and
    # the Welford floats to within rounding.
    fleet = 40

    def build(n_hosts, offset):
        sim = Simulator(seed=5)
        ring = HashRing(["ha0", "ha1", "ha2", "ha3"])
        model = AggregateHostModel(sim, "xcheck", n_hosts,
                                   horizon=s(3600), fleet_hosts=fleet,
                                   host_offset=offset, ring=ring)
        model.run()
        return model.partials()

    whole = build(fleet, 0)
    parts = [build(1, host) for host in range(fleet)]

    for key in ("hosts", "registrations", "handoffs", "tunnel_bytes"):
        assert whole[key] == sum(part[key] for part in parts), key

    whole_stats = Stats(**whole["latency"])
    merged_stats = merge_stats([Stats(**part["latency"]) for part in parts])
    assert merged_stats.count == whole_stats.count
    assert merged_stats.minimum == whole_stats.minimum
    assert merged_stats.maximum == whole_stats.maximum
    assert math.isclose(merged_stats.mean, whole_stats.mean, rel_tol=1e-9)
    assert math.isclose(merged_stats.std, whole_stats.std, rel_tol=1e-9)

    merged_hist = merge_histograms(
        [LatencyHistogram.from_counts(part["latency_hist"])
         for part in parts])
    assert merged_hist.to_counts() == whole["latency_hist"]
