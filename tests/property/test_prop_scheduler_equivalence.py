"""Scheduler equivalence over whole scenarios (the fast-path invariant).

The heap and the timer wheel must be observably interchangeable: for the
same seed, a full testbed scenario — build, traffic, a mid-run handoff —
must produce a byte-identical metrics snapshot and an identical trace
under either scheduler.  Anything less means event ordering leaked out of
the queue implementation, which would silently unfix every seed in the
repository.
"""

import pytest

from repro.bench.datapath_bench import run_scenario
from repro.bench.guard import canonical_json, strip_cache_metrics
from repro.sim.units import s

SEEDS = range(5)


def observable_state(sim):
    snapshot = canonical_json(strip_cache_metrics(sim.metrics.snapshot()))
    trace = [(r.time, r.category, r.event, sorted(r.fields.items()))
             for r in sim.trace]
    return snapshot, trace


@pytest.mark.parametrize("seed", SEEDS)
def test_heap_and_wheel_scenarios_are_byte_identical(seed):
    heap_sim = run_scenario(seed=seed, scheduler="heap", duration_ns=s(4))
    wheel_sim = run_scenario(seed=seed, scheduler="wheel", duration_ns=s(4))
    heap_snapshot, heap_trace = observable_state(heap_sim)
    wheel_snapshot, wheel_trace = observable_state(wheel_sim)
    assert heap_snapshot == wheel_snapshot
    assert heap_trace == wheel_trace
    assert heap_sim.events_run == wheel_sim.events_run


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_same_scheduler_reproduces(seed):
    first = run_scenario(seed=seed, scheduler="wheel", duration_ns=s(3))
    second = run_scenario(seed=seed, scheduler="wheel", duration_ns=s(3))
    assert observable_state(first) == observable_state(second)


def test_different_seeds_differ():
    """Sanity check that the equivalence above is not vacuous."""
    a = run_scenario(seed=0, scheduler="heap", duration_ns=s(3))
    b = run_scenario(seed=1, scheduler="heap", duration_ns=s(3))
    assert observable_state(a) != observable_state(b)
