"""Property tests for the zero-allocation fast path.

Recycling an Event or packet must be invisible: any schedule of posts,
timers and cancellations dispatches identically with pooling on and off,
and a pooled ``acquire`` is indistinguishable from a fresh construction.
"""

from hypothesis import given, settings, strategies as st

from repro.net.addressing import IPAddress
from repro.net.packet import (
    PROTO_UDP,
    AppData,
    IPPacket,
    UDPDatagram,
    release,
)
from repro.sim.engine import Simulator

#: (delay, use_post_api, cancel_if_cancellable) operation triples.
operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50_000),
              st.booleans(), st.booleans()),
    min_size=1, max_size=40)


def _drive(pooling: bool, ops) -> list:
    """Run one op schedule; nested posts force event reuse mid-run."""
    sim = Simulator(seed=0, pooling=pooling)
    log = []

    def make(index: int, depth: int):
        def callback() -> None:
            log.append((sim.now, index, depth))
            if depth < 2:
                sim.post_later(1 + 37 * (index % 5), make(index, depth + 1))
        return callback

    for index, (delay, use_post, cancel) in enumerate(ops):
        if use_post:
            sim.post_later(delay, make(index, 0))
        else:
            handle = sim.call_later(delay, make(index, 0))
            if cancel:
                handle.cancel()
    sim.run()
    return log


@settings(max_examples=40, deadline=None)
@given(operations)
def test_pooled_and_unpooled_dispatch_identically(ops):
    assert _drive(True, ops) == _drive(False, ops)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_recycled_events_never_leak_callbacks_across_runs(ops):
    # Two schedules back-to-back on one simulator: the second run reuses
    # the first run's recycled events, and must still match a fresh
    # simulator dispatching only the second schedule.
    sim = Simulator(seed=0)
    for delay, use_post, _cancel in ops:
        if use_post:
            sim.post_later(delay, lambda: None)
        else:
            sim.call_later(delay, lambda: None)
    sim.run()

    log = []
    fresh_log = []
    fresh = Simulator(seed=0)
    for index, (delay, _use_post, _cancel) in enumerate(ops):
        sim.post_at(sim.now + delay,
                    lambda index=index: log.append(index))
        fresh.post_at(fresh.now + delay,
                      lambda index=index: fresh_log.append(index))
    sim.run()
    fresh.run()
    assert log == fresh_log


ports = st.integers(min_value=0, max_value=0xFFFF)
sizes = st.integers(min_value=0, max_value=65_000)
addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPAddress)


@settings(max_examples=60, deadline=None)
@given(ports, ports, sizes, addresses, addresses,
       st.integers(min_value=1, max_value=255))
def test_acquire_after_release_equals_fresh_construction(
        src_port, dst_port, size, src, dst, ttl):
    # Seed the arenas with differently-valued carcasses...
    release(IPPacket(dst, src, PROTO_UDP, AppData("old", 1), ident=7), held=1)
    release(UDPDatagram(1, 2, AppData("old", 2)), held=1)
    release(AppData("old", 3), held=1)
    # ...then acquire with new values: no field may survive from the corpse.
    payload = AppData.acquire(None, size)
    datagram = UDPDatagram.acquire(src_port, dst_port, payload)
    packet = IPPacket.acquire(src, dst, PROTO_UDP, datagram, ttl, ident=99)
    expected = IPPacket(src, dst, PROTO_UDP,
                        UDPDatagram(src_port, dst_port, AppData(None, size)),
                        ttl, ident=99)
    assert packet == expected
    assert packet.size_bytes == expected.size_bytes == 20 + 8 + size
