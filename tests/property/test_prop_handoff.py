"""Property tests for handoff timelines and mobility invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.handoff import AddressSwitcher, DeviceSwitcher
from repro.net.addressing import IPAddress, ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed

HOME = ip("36.135.0.10")


def fresh_testbed(seed: int):
    sim = Simulator(seed=seed)
    return build_testbed(sim, with_remote_correspondent=False,
                         with_dhcp=False)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_address_switch_timeline_is_contiguous_and_ordered(seed):
    """Whatever the seed/jitter, the stages tile the switch exactly:
    each stage starts where the previous ended, and the total is the sum."""
    testbed = fresh_testbed(seed)
    testbed.visit_dept()
    testbed.sim.run_for(s(1))
    done = []
    AddressSwitcher(testbed.mobile).switch_address(
        testbed.addresses.mh_dept_care_of_2, on_done=done.append)
    testbed.sim.run_for(s(5))
    assert done and done[0].success
    timeline = done[0]
    assert timeline.stages[0].start == timeline.started_at
    for previous, current in zip(timeline.stages, timeline.stages[1:]):
        assert current.start == previous.end
    assert timeline.stages[-1].end == timeline.finished_at
    assert timeline.total == sum(stage.duration for stage in timeline.stages)
    assert all(stage.duration >= 0 for stage in timeline.stages)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_cold_switch_leaves_consistent_state(seed):
    """After any cold switch: exactly one active interface, the care-of
    is on it, the home address is on the VIF, the binding matches."""
    testbed = fresh_testbed(seed)
    testbed.visit_dept()
    testbed.mh_radio.subnet = testbed.addresses.radio_net
    testbed.mh_radio.add_address(testbed.addresses.mh_radio,
                                 make_primary=True)
    testbed.sim.run_for(s(1))
    done = []
    DeviceSwitcher(testbed.mobile).cold_switch(
        testbed.mh_eth, testbed.mh_radio, testbed.addresses.mh_radio,
        testbed.addresses.radio_net, testbed.addresses.router_radio,
        on_done=done.append)
    testbed.sim.run_for(s(8))
    assert done and done[0].success
    mobile = testbed.mobile
    assert mobile.active_interface is testbed.mh_radio
    assert testbed.mh_radio.owns_address(mobile.care_of)
    assert mobile.vif.owns_address(HOME)
    assert not testbed.mh_eth.owns_address(HOME)
    assert testbed.home_agent.current_care_of(HOME) == mobile.care_of


@given(st.lists(st.sampled_from(["dept", "radio"]), min_size=1, max_size=5),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None)
def test_any_move_sequence_keeps_home_address_unique(moves, seed):
    """However the mobile host bounces around, exactly one interface owns
    the home address at any quiescent point (the VIF away, the home
    interface at home)."""
    testbed = fresh_testbed(seed)
    for move in moves:
        if move == "dept":
            testbed.visit_dept()
        else:
            testbed.connect_radio(register=True)
        testbed.sim.run_for(s(2))
        owners = [iface.name for iface in testbed.mobile.interfaces
                  if iface.owns_address(HOME)]
        assert owners == [testbed.mobile.vif.name]
    # And coming home restores the single physical owner.
    testbed.move_mh_cable(testbed.home_segment)
    testbed.mobile.stop_visiting(testbed.mh_eth)
    if not testbed.mh_eth.is_up:
        testbed.mh_eth.state = testbed.mh_eth.state.__class__.UP
    testbed.mobile.come_home(testbed.mh_eth,
                             gateway=testbed.addresses.router_home)
    testbed.sim.run_for(s(2))
    owners = [iface.name for iface in testbed.mobile.interfaces
              if iface.owns_address(HOME)]
    assert owners == [testbed.mh_eth.name]
