"""Property tests for the link media: FIFO, timing, conservation."""

from hypothesis import given, settings, strategies as st

from repro.config import LinkTimings
from repro.net.addressing import ip
from repro.net.link import PointToPointLink
from repro.net.packet import AppData, IPPacket, PROTO_UDP, UDPDatagram
from repro.sim import MBPS, Simulator
from repro.sim.units import transmission_delay


class Endpoint:
    def __init__(self):
        self.arrivals = []

    def deliver_from_link(self, packet):
        self.arrivals.append(packet)


def make_packet(size):
    payload = max(0, size - 28)
    return IPPacket(src=ip("1.1.1.1"), dst=ip("2.2.2.2"), protocol=PROTO_UDP,
                    payload=UDPDatagram(1, 2, AppData(None, payload)))


sizes = st.lists(st.integers(min_value=28, max_value=1500), min_size=1,
                 max_size=30)


@given(sizes, st.integers(min_value=0, max_value=5_000_000))
@settings(max_examples=40, deadline=None)
def test_p2p_delivery_order_and_timing_match_fifo_model(packet_sizes,
                                                        latency):
    """Deliveries arrive in send order at exactly the analytic FIFO
    times: cumulative serialization plus one latency each."""
    sim = Simulator()
    timings = LinkTimings(latency=latency, bandwidth_bps=MBPS)
    link = PointToPointLink(sim, "p2p", timings)
    sender, receiver = Endpoint(), Endpoint()
    link.connect(sender)
    link.connect(receiver)

    packets = [make_packet(size) for size in packet_sizes]
    arrival_times = []
    original = receiver.deliver_from_link

    def record(packet):
        arrival_times.append(sim.now)
        original(packet)

    receiver.deliver_from_link = record
    for packet in packets:
        link.transmit(packet, sender)
    sim.run()

    assert receiver.arrivals == packets  # order preserved
    expected = []
    finish = 0
    for packet in packets:
        finish += transmission_delay(packet.size_bytes, MBPS)
        expected.append(finish + latency)
    assert arrival_times == expected


@given(sizes)
@settings(max_examples=30, deadline=None)
def test_bytes_and_frames_are_conserved(packet_sizes):
    sim = Simulator()
    link = PointToPointLink(sim, "p2p",
                            LinkTimings(latency=0, bandwidth_bps=MBPS))
    sender, receiver = Endpoint(), Endpoint()
    link.connect(sender)
    link.connect(receiver)
    packets = [make_packet(size) for size in packet_sizes]
    for packet in packets:
        link.transmit(packet, sender)
    sim.run()
    assert link.frames_sent == len(packets)
    assert link.frames_dropped == 0
    assert link.bytes_sent == sum(packet.size_bytes for packet in packets)
    assert len(receiver.arrivals) == len(packets)


@given(sizes, st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=20, deadline=None)
def test_lossy_link_drops_are_accounted(packet_sizes, loss_rate):
    sim = Simulator(seed=13)
    link = PointToPointLink(sim, "p2p",
                            LinkTimings(latency=0, bandwidth_bps=0,
                                        loss_rate=loss_rate))
    sender, receiver = Endpoint(), Endpoint()
    link.connect(sender)
    link.connect(receiver)
    for size in packet_sizes:
        link.transmit(make_packet(size), sender)
    sim.run()
    assert len(receiver.arrivals) + link.frames_dropped == len(packet_sizes)
