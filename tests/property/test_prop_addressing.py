"""Property tests for addressing: parsing, subnets, masks."""

from hypothesis import given, strategies as st

from repro.net.addressing import IPAddress, MACAddress, Subnet

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPAddress)
prefix_lengths = st.integers(min_value=0, max_value=32)


@given(addresses)
def test_parse_str_roundtrip(addr):
    assert IPAddress.parse(str(addr)) == addr


@given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFF).map(MACAddress))
def test_mac_parse_str_roundtrip(mac):
    assert MACAddress.parse(str(mac)) == mac


@given(addresses, prefix_lengths)
def test_membership_matches_mask_arithmetic(addr, prefix_len):
    mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    network = Subnet(IPAddress(addr.value & mask), prefix_len)
    assert addr in network
    assert (addr.value & mask) == network.network.value


@given(addresses, prefix_lengths)
def test_broadcast_is_member_and_maximal(addr, prefix_len):
    mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    network = Subnet(IPAddress(addr.value & mask), prefix_len)
    assert network.broadcast in network
    # No member exceeds the broadcast address.
    assert addr.value <= network.broadcast.value or addr not in network


@given(addresses, prefix_lengths, addresses)
def test_membership_is_exact(addr, prefix_len, other):
    mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    network = Subnet(IPAddress(addr.value & mask), prefix_len)
    expected = (other.value & mask) == network.network.value
    assert (other in network) is expected


@given(st.integers(min_value=8, max_value=30), st.data())
def test_host_indexing_yields_members(prefix_len, data):
    base = data.draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    network = Subnet(IPAddress(base & mask), prefix_len)
    size = network.broadcast.value - network.network.value
    index = data.draw(st.integers(min_value=1, max_value=size - 1))
    host = network.host(index)
    assert host in network
    assert host != network.broadcast
    assert host != network.network
