"""Property tests for packets and encapsulation."""

from hypothesis import given, strategies as st

from repro.net.addressing import IPAddress
from repro.net.packet import (
    IP_HEADER_BYTES,
    AppData,
    IPPacket,
    PROTO_UDP,
    UDPDatagram,
    decapsulate,
    encapsulate,
    encapsulation_depth,
)

addresses = st.integers(min_value=1, max_value=0xFFFFFFFE).map(IPAddress)
payload_sizes = st.integers(min_value=0, max_value=65_000)
ports = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def packets(draw):
    return IPPacket(
        src=draw(addresses), dst=draw(addresses), protocol=PROTO_UDP,
        payload=UDPDatagram(draw(ports), draw(ports),
                            AppData("data", draw(payload_sizes))),
    )


@given(packets(), addresses, addresses)
def test_encap_decap_roundtrip(inner, outer_src, outer_dst):
    outer = encapsulate(inner, outer_src, outer_dst)
    assert decapsulate(outer) is inner
    assert outer.src == outer_src and outer.dst == outer_dst


@given(packets(), addresses, addresses)
def test_encapsulation_cost_is_exactly_one_header(inner, outer_src, outer_dst):
    outer = encapsulate(inner, outer_src, outer_dst)
    assert outer.size_bytes - inner.size_bytes == IP_HEADER_BYTES


@given(packets(), st.integers(min_value=0, max_value=5), st.data())
def test_depth_counts_nesting_exactly(packet, layers, data):
    current = packet
    for _ in range(layers):
        current = encapsulate(current, data.draw(addresses),
                              data.draw(addresses))
    assert encapsulation_depth(current) == layers


@given(packets(), st.integers(min_value=1, max_value=64))
def test_ttl_decrement_chain(packet, steps):
    current = packet
    for _ in range(min(steps, packet.ttl)):
        current = current.decremented()
    assert current.ttl == packet.ttl - min(steps, packet.ttl)


@given(packets())
def test_describe_mentions_endpoints(packet):
    text = packet.describe()
    assert str(packet.src) in text
    assert str(packet.dst) in text
