"""Property tests for the smart-correspondent binding cache."""

from hypothesis import given, settings, strategies as st

from repro.core.registration import RegistrationRequest
from repro.core.smart_correspondent import SmartCorrespondent
from repro.net.addressing import IPAddress, ip
from repro.net.packet import AppData
from repro.sim import Simulator, s
from repro.testbed import build_testbed

HOME = ip("36.135.0.10")
AGENT = ip("36.135.0.1")
care_ofs = st.integers(min_value=1, max_value=0xFFFFFFFE).map(IPAddress)


@given(st.lists(st.tuples(st.booleans(), care_ofs), min_size=1, max_size=25))
@settings(max_examples=30, deadline=None)
def test_cache_reflects_last_update(operations):
    """Feed any sequence of updates/invalidations straight into the
    correspondent's handler: the cache always equals the last operation."""
    sim = Simulator(seed=3)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    smart = SmartCorrespondent(testbed.correspondent)
    expected = None
    for ident, (register, care_of) in enumerate(operations, start=1):
        if register and care_of != HOME:
            message = RegistrationRequest(HOME, care_of, AGENT,
                                          lifetime=s(60),
                                          identification=ident)
            expected = care_of
        else:
            message = RegistrationRequest(HOME, HOME, AGENT, lifetime=0,
                                          identification=ident)
            expected = None
        smart._on_datagram(message.wrap(), ip("36.8.0.50"), 434,
                           ip("36.8.0.20"))
    assert smart.cached_care_of(HOME) == expected


@given(st.lists(care_ofs, min_size=1, max_size=10, unique=True))
@settings(max_examples=20, deadline=None)
def test_route_hook_only_fires_for_cached_destinations(cached_homes):
    """The hook tunnels exactly the cached destinations; everything else
    falls through to ordinary routing."""
    sim = Simulator(seed=4)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    smart = SmartCorrespondent(testbed.correspondent)
    for index, home in enumerate(cached_homes):
        smart.bindings.register(home, ip("36.8.0.50"), lifetime=s(60),
                                identification=index)
    for home in cached_homes:
        route = testbed.correspondent.ip.ip_rt_route(home)
        assert route is not None and route.interface is smart.vif
    # An uncached destination routes normally.
    other = ip("36.40.0.9")
    if other not in cached_homes:
        route = testbed.correspondent.ip.ip_rt_route(other)
        assert route is None or route.interface is not smart.vif
