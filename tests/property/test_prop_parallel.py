"""Property: worker count never changes experiment results.

The determinism contract of :mod:`repro.parallel` is that seeds are
addressed by trial index, never by worker, so ``jobs=4`` must produce a
plain-data report byte-identical to ``jobs=1`` for any seed.  Exercised
here for seeds 0-2 over experiments with genuinely parallel trial lists,
including the sharded home-agent fleet sweep.
"""

import pytest

from repro.experiments.harness import as_plain_data
from repro.experiments import (
    run_chaos_experiment,
    run_device_switch_experiment,
    run_fa_ablation,
    run_ha_fleet_sweep,
    run_same_subnet_experiment,
)

SEEDS = (0, 1, 2)


@pytest.mark.parametrize("seed", SEEDS)
def test_same_subnet_report_is_jobs_invariant(seed):
    serial = run_same_subnet_experiment(iterations=4, seed=seed, jobs=1)
    parallel = run_same_subnet_experiment(iterations=4, seed=seed, jobs=4)
    assert as_plain_data(parallel) == as_plain_data(serial)


@pytest.mark.parametrize("seed", SEEDS)
def test_device_switch_report_is_jobs_invariant(seed):
    serial = run_device_switch_experiment(iterations=2, seed=seed, jobs=1)
    parallel = run_device_switch_experiment(iterations=2, seed=seed, jobs=4)
    assert as_plain_data(parallel) == as_plain_data(serial)


@pytest.mark.parametrize("seed", SEEDS)
def test_fa_ablation_report_is_jobs_invariant(seed):
    serial = run_fa_ablation(iterations=3, seed=seed, jobs=1)
    parallel = run_fa_ablation(iterations=3, seed=seed, jobs=4)
    assert as_plain_data(parallel) == as_plain_data(serial)


@pytest.mark.parametrize("seed", SEEDS)
def test_ha_fleet_sweep_is_jobs_invariant(seed):
    # A 120-host fleet shards into two simulations; merging their partial
    # Stats must not depend on which worker ran which shard.
    serial = run_ha_fleet_sweep(fleet_sizes=(120,), seed=seed, jobs=1)
    parallel = run_ha_fleet_sweep(fleet_sizes=(120,), seed=seed, jobs=4)
    assert as_plain_data(parallel) == as_plain_data(serial)


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_report_is_jobs_invariant(seed):
    # The chaos sweep arms a nonzero FaultPlan in every cell; both the
    # fault schedule and each fault's randomness must be addressed by the
    # trial's own seed, never by which worker ran it.
    serial = run_chaos_experiment(seed=seed, jobs=1)
    parallel = run_chaos_experiment(seed=seed, jobs=4)
    assert as_plain_data(parallel) == as_plain_data(serial)


def test_parallel_matches_pre_refactor_serial_arithmetic():
    # The trial builders must keep the legacy seed formulas: the first
    # same-subnet trial at base seed 7 uses seed 7, the second seed 8.
    from repro.config import DEFAULT_CONFIG
    from repro.experiments.exp_same_subnet import build_same_subnet_trials
    from repro.sim.units import ms

    trials = build_same_subnet_trials(iterations=3, seed=7,
                                      probe_interval=ms(300),
                                      config=DEFAULT_CONFIG)
    assert [t.params["seed"] for t in trials] == [7, 8, 9]
