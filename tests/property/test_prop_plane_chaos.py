"""Determinism properties of the plane chaos experiment (x8).

Two contracts: the report is byte-identical at any ``--jobs`` count, and
every host's retry randomness is *stream-isolated* — keyed by global
host index (splitmix64) or host name (named simulator streams), so a
fleet-wide failure never synchronizes a retry storm and growing the
fleet never shifts an existing host's schedule.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.registration import RegistrationClient
from repro.experiments.exp_plane_chaos import run_plane_chaos_experiment
from repro.net.addressing import ip
from repro.net.host import Host
from repro.parallel import spawn_seed
from repro.sim import Simulator
from repro.workloads.aggregate import _SplitMix

SMALL_FLEETS = (24,)
SMALL_SHARD = 12


@pytest.mark.parametrize("seed", [3, 71])
def test_x8_report_is_byte_identical_across_jobs(seed):
    serial = run_plane_chaos_experiment(
        fleet_sizes=SMALL_FLEETS, seed=seed, shard_hosts=SMALL_SHARD, jobs=1)
    sharded = run_plane_chaos_experiment(
        fleet_sizes=SMALL_FLEETS, seed=seed, shard_hosts=SMALL_SHARD, jobs=2)
    assert serial.format_report() == sharded.format_report()


def test_x8_seed_changes_the_report():
    first = run_plane_chaos_experiment(
        fleet_sizes=SMALL_FLEETS, seed=1, shard_hosts=SMALL_SHARD)
    second = run_plane_chaos_experiment(
        fleet_sizes=SMALL_FLEETS, seed=2, shard_hosts=SMALL_SHARD)
    assert first.format_report() != second.format_report()


def test_x8_audit_gate_holds_on_the_small_grid():
    report = run_plane_chaos_experiment(
        fleet_sizes=SMALL_FLEETS, seed=71, shard_hosts=SMALL_SHARD)
    assert report.points, "grid must produce cells"
    for point in report.points:
        assert point.violations == 0
        assert point.accepted > 0
    chaos = [p for p in report.points if p.churn and p.partition]
    # Each shard runs its own plane and fires the full 4-event plan.
    assert chaos and all(p.faults_injected == 4 * p.shards for p in chaos)


# ----------------------------------------------------- stream isolation


def storm_schedule(base_seed, global_index, draws=8):
    """The per-host splitmix stream x8 derives retry jitter from."""
    stream = _SplitMix(spawn_seed(base_seed, global_index))
    return [stream.random() for _ in range(draws)]


def test_two_hosts_draw_from_distinct_storm_streams():
    # After the same HA crash, hosts 0 and 1 must not retry in lockstep.
    schedules = [storm_schedule(1234, g) for g in range(16)]
    for index, schedule in enumerate(schedules):
        for other in schedules[index + 1:]:
            assert schedule != other


def test_adding_a_host_never_shifts_anothers_schedule():
    # splitmix64 keyed by global index: host g's draws are a pure
    # function of (base, g), so growing the fleet is invisible to
    # existing hosts.  Regression for the storm-retry determinism x8's
    # byte-identity rides on.
    small = [storm_schedule(99, g) for g in range(8)]
    large = [storm_schedule(99, g) for g in range(64)]
    assert large[:8] == small


def test_registration_backoff_streams_are_isolated_per_host():
    # Same crash, two clients: their jittered retransmit delays come
    # from per-host named streams, not a shared one.
    def delays(host_names, probe):
        sim = Simulator(seed=5)
        config = DEFAULT_CONFIG.with_overrides(
            registration=DEFAULT_CONFIG.registration.__class__(
                **{**DEFAULT_CONFIG.registration.__dict__,
                   "backoff_jitter": 0.3}))
        clients = {
            name: RegistrationClient(Host(sim, name, config),
                                     ip("36.135.0.10"), ip("36.135.0.1"))
            for name in host_names}
        return [clients[probe]._retry_delay(n) for n in range(1, 6)]

    alone = delays(["mh0"], "mh0")
    with_neighbour = delays(["mh0", "mh1"], "mh0")
    neighbour = delays(["mh0", "mh1"], "mh1")
    assert alone == with_neighbour  # adding mh1 cannot shift mh0
    assert alone != neighbour       # and mh1 draws its own stream
