"""Property tests: routing table and Mobile Policy Table vs brute force."""

from hypothesis import given, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.policy import MobilePolicyTable, RoutingMode
from repro.net.addressing import IPAddress, MACAllocator, Subnet
from repro.net.interface import EthernetInterface, InterfaceState
from repro.net.routing import RouteEntry, RoutingTable
from repro.sim import Simulator

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPAddress)


@st.composite
def prefixes(draw):
    prefix_len = draw(st.integers(min_value=0, max_value=32))
    raw = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    return Subnet(IPAddress(raw & mask), prefix_len)


def make_interface(sim, index):
    iface = EthernetInterface(sim, f"eth{index}", MACAllocator().allocate(),
                              DEFAULT_CONFIG)
    iface.state = InterfaceState.UP
    return iface


@given(st.lists(st.tuples(prefixes(), st.integers(min_value=0, max_value=9)),
                min_size=1, max_size=20),
       addresses)
def test_routing_lookup_matches_brute_force(rows, destination):
    sim = Simulator()
    table = RoutingTable()
    entries = []
    for index, (prefix, metric) in enumerate(rows):
        entry = RouteEntry(prefix, make_interface(sim, index), metric=metric)
        table.add(entry)
        entries.append(entry)

    result = table.lookup(destination)
    candidates = [entry for entry in entries if destination in entry.destination]
    if not candidates:
        assert result is None
    else:
        best_len = max(entry.destination.prefix_len for entry in candidates)
        finalists = [entry for entry in candidates
                     if entry.destination.prefix_len == best_len]
        best_metric = min(entry.metric for entry in finalists)
        assert result.destination.prefix_len == best_len
        assert result.metric == best_metric


MODES = list(RoutingMode)


@given(st.lists(st.tuples(prefixes(), st.sampled_from(MODES)),
                min_size=0, max_size=15),
       addresses,
       st.sampled_from(MODES))
def test_policy_lookup_matches_brute_force(rows, destination, default):
    table = MobilePolicyTable(default_mode=default)
    for prefix, mode in rows:
        table.set_policy(prefix, mode)
    result = table.lookup(destination)
    matching = [entry for entry in table if destination in entry.destination]
    if not matching:
        assert result is default
    else:
        best_len = max(entry.destination.prefix_len for entry in matching)
        best_modes = {entry.mode for entry in matching
                      if entry.destination.prefix_len == best_len}
        assert result in best_modes


@given(st.lists(addresses, min_size=1, max_size=20, unique=True))
def test_probe_fallback_is_per_host(hosts):
    table = MobilePolicyTable(default_mode=RoutingMode.TRIANGLE)
    for addr in hosts:
        table.record_probe_result(addr, reachable=False)
    for addr in hosts:
        assert table.lookup(addr) is RoutingMode.TUNNEL
    # Recovery clears each host independently.
    recovered = hosts[: len(hosts) // 2]
    for addr in recovered:
        table.record_probe_result(addr, reachable=True)
    for addr in hosts:
        expected = (RoutingMode.TRIANGLE if addr in recovered
                    else RoutingMode.TUNNEL)
        assert table.lookup(addr) is expected
