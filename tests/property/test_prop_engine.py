"""Property tests for the event engine and FIFO delays."""

from hypothesis import given, strategies as st

from repro.sim import Simulator
from repro.sim.fifo import FifoDelay

delays = st.lists(st.integers(min_value=0, max_value=10_000_000),
                  min_size=1, max_size=50)


@given(delays)
def test_events_execute_in_deadline_then_fifo_order(times):
    sim = Simulator()
    executed = []
    for index, when in enumerate(times):
        sim.call_at(when, lambda index=index, when=when: executed.append((when, index)))
    sim.run()
    assert executed == sorted(executed)


@given(delays)
def test_clock_is_monotonic(times):
    sim = Simulator()
    stamps = []
    for when in times:
        sim.call_at(when, lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == sorted(stamps)
    assert len(stamps) == len(times)


@given(delays, st.integers(min_value=0, max_value=10_000_000))
def test_run_until_splits_cleanly(times, cut):
    sim = Simulator()
    early, late = [], []
    for when in times:
        sim.call_at(when, lambda when=when: (early if when <= cut else late).append(when))
    sim.run(until=cut)
    assert sorted(early) == sorted(t for t in times if t <= cut)
    assert late == []
    sim.run()
    assert sorted(late) == sorted(t for t in times if t > cut)


@given(delays)
def test_fifo_never_reorders(service_times):
    sim = Simulator()
    fifo = FifoDelay(sim)
    completed = []
    for index, service in enumerate(service_times):
        fifo.schedule(service, lambda index=index: completed.append(index))
    sim.run()
    assert completed == list(range(len(service_times)))


@given(delays)
def test_fifo_total_time_is_sum_of_services(service_times):
    sim = Simulator()
    fifo = FifoDelay(sim)
    finish = []
    for service in service_times:
        fifo.schedule(service, lambda: finish.append(sim.now))
    sim.run()
    assert finish[-1] == sum(service_times)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1_000_000),
                          st.booleans()),
                min_size=1, max_size=30))
def test_cancelled_events_never_run(schedule):
    sim = Simulator()
    ran = []
    events = []
    for index, (when, cancel) in enumerate(schedule):
        events.append((sim.call_at(when, lambda index=index: ran.append(index)),
                       cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    expected = [index for index, (_, cancel) in enumerate(schedule)
                if not cancel]
    assert sorted(ran) == expected
