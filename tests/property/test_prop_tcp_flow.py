"""Properties of the RFC 9293 flow-control seam.

Three contracts:

1. Knobs-off is the status quo: spelling out every ``tcp_*`` flow knob
   at its default value is byte-identical to the default config for the
   pre-existing experiments, so the flow-control machinery is invisible
   until opted into.
2. The x9 sweep is ``--jobs``-invariant and run-to-run deterministic:
   every cell's randomness is addressed by its own seed, never by the
   worker that happened to execute it.
3. A receiver-limited transfer that stalls on a closed window recovers
   via persist probes even when a mobility handoff lands mid-stall —
   the scenario where a lost window-update ACK would otherwise deadlock
   the connection forever.
"""

from repro.api import Scenario
from repro.config import DEFAULT_CONFIG
from repro.experiments.harness import as_plain_data
from repro.experiments import (
    run_chaos_experiment,
    run_smart_correspondent_experiment,
    run_tcp_cc_experiment,
)
from repro.experiments.exp_tcp_chaos import (
    build_tcp_chaos_trials,
    run_tcp_chaos_experiment,
    run_tcp_chaos_trial,
)
from repro.sim.units import ms, s
from repro.workloads.tcp_session import TcpBulkSender, TcpDrainReceiver

#: Every flow-control knob spelled out at its default value.
FLOW_OFF_CONFIG = DEFAULT_CONFIG.with_overrides(
    tcp_flow_control=False, tcp_recv_buffer=4096,
    tcp_delayed_ack=False, tcp_delayed_ack_timeout=ms(200),
    tcp_nagle=False)
#: Reduced x9 grid: the clean cell and the fast-flap cell.
GRID = dict(loss_rates=(0.2,), flap_periods_ms=(0.0, 7000.0))


# --------------------------------------------------- default == knobs off
# Reduced parameters keep the suite fast; the config plumbing exercised
# (Scenario -> Config -> TCPConnection gating) is the same as the full
# experiments'.

def test_x1_smart_correspondent_default_is_flow_control_off():
    default = run_smart_correspondent_experiment(probes=5, seed=0)
    explicit = run_smart_correspondent_experiment(probes=5, seed=0,
                                                  config=FLOW_OFF_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)


def test_x5_chaos_default_is_flow_control_off():
    default = run_chaos_experiment(loss_rates=(0.2,), flap_periods_ms=(0,),
                                   seed=0)
    explicit = run_chaos_experiment(loss_rates=(0.2,), flap_periods_ms=(0,),
                                    seed=0, config=FLOW_OFF_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)


def test_x6_tcp_cc_default_is_flow_control_off():
    grid = dict(ccs=("reno",), loss_rates=(0.25,), handoffs=(True,))
    default = run_tcp_cc_experiment(seed=0, **grid)
    explicit = run_tcp_cc_experiment(seed=0, config=FLOW_OFF_CONFIG, **grid)
    assert as_plain_data(explicit) == as_plain_data(default)


# --------------------------------------------------------- x9 determinism

def test_tcp_chaos_report_is_jobs_invariant():
    serial = run_tcp_chaos_experiment(seed=5, jobs=1, **GRID)
    parallel = run_tcp_chaos_experiment(seed=5, jobs=2, **GRID)
    assert as_plain_data(parallel) == as_plain_data(serial)


def test_tcp_chaos_trial_is_run_to_run_deterministic():
    first = run_tcp_chaos_trial(0.2, flap_period_ns=ms(7000), seed=9)
    second = run_tcp_chaos_trial(0.2, flap_period_ns=ms(7000), seed=9)
    assert first == second


def test_tcp_chaos_trial_seeds_are_addressed_by_cell_index():
    trials = build_tcp_chaos_trials((0.0, 0.2), (0.0, 7000.0),
                                    seed=40, config=DEFAULT_CONFIG)
    assert [t.params["seed"] for t in trials] == [40, 41, 42, 43]


# ------------------------------------------- stall survives a handoff

def test_zero_window_stall_recovers_across_mid_transfer_handoff():
    """Fill the receive buffer, hand off mid-stall, then let the app
    drain: persist probing must carry the connection across the move and
    the backlog must arrive complete and in order afterwards."""
    config = DEFAULT_CONFIG.with_overrides(tcp_flow_control=True,
                                           tcp_recv_buffer=1024)
    session: dict = {}

    def start_session(testbed):
        testbed.visit_dept()
        # drain_bytes=0: the application reads nothing until told to.
        receiver = TcpDrainReceiver(testbed.mobile, drain_bytes=0,
                                    drain_interval=s(100))
        sender = TcpBulkSender(testbed.correspondent,
                               testbed.addresses.mh_home,
                               interval=ms(100), chunk_bytes=256)
        sender.start()
        session.update(receiver=receiver, sender=sender)
        return session

    def stop_sending(testbed):
        session["sender"].stop()

    def handoff(testbed):
        conn = session["sender"].connection
        session["stalled_at_handoff"] = conn._persist_event is not None
        testbed.connect_radio(register=True)

    def resume_app(testbed):
        conn = session["receiver"].connection
        session["probes_during_stall"] = (
            session["sender"].connection.persist_probes)
        conn.auto_consume = True
        conn.consume(conn.rcv_buffered)

    (Scenario(seed=9, config=config)
     .with_testbed(with_remote_correspondent=False, with_dhcp=True)
     .with_workload(start_session, name="session")
     .with_step(s(2), stop_sending)
     .with_step(s(3), handoff)
     .with_step(s(8), resume_app)
     .run(duration=s(20)))

    sender: TcpBulkSender = session["sender"]
    receiver: TcpDrainReceiver = session["receiver"]
    conn = sender.connection
    # The window really was closed when the handoff hit...
    assert session["stalled_at_handoff"]
    # ...probes kept firing across the move (not silenced by it)...
    assert session["probes_during_stall"] > 0
    assert conn.persist_probes >= session["probes_during_stall"]
    assert conn.zero_window_ns > 0
    # ...and once the app drained, every queued chunk came through.
    assert not sender.reset
    assert len(receiver.received_chunks) == sender.sent_chunks
    assert receiver.in_order
