"""Property tests for protocol-level invariants: bindings, TCP, DHCP."""

from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.bindings import MobilityBindingTable
from repro.net.addressing import IPAddress, MACAllocator, ip, subnet
from repro.net.dhcp import DHCPServer
from repro.net.host import Host
from repro.net.interface import EthernetInterface
from repro.net.link import EthernetSegment
from repro.net.packet import AppData
from repro.sim import Simulator, ms, s

HOME = ip("36.135.0.10")
care_ofs = st.integers(min_value=1, max_value=0xFFFFFFFE).map(IPAddress)


@given(st.lists(st.tuples(st.sampled_from(["register", "deregister"]),
                          care_ofs),
                min_size=1, max_size=30))
def test_binding_table_reflects_last_operation(operations):
    sim = Simulator()
    table = MobilityBindingTable(sim)
    expected = None
    for op, care_of in operations:
        if op == "register":
            table.register(HOME, care_of, lifetime=s(60))
            expected = care_of
        else:
            table.deregister(HOME)
            expected = None
    binding = table.get(HOME)
    if expected is None:
        assert binding is None
    else:
        assert binding is not None and binding.care_of_address == expected


@given(st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                max_size=8),
       st.sets(st.integers(min_value=0, max_value=40), max_size=10))
@settings(max_examples=25, deadline=None)
def test_tcp_delivers_everything_in_order_despite_outages(chunk_sizes,
                                                          outage_ticks):
    """Whatever the outage pattern, TCP delivers every byte exactly once,
    in order — or resets, which this scenario never triggers."""
    sim = Simulator(seed=42)
    config = DEFAULT_CONFIG
    net = subnet("10.0.0.0/24")
    macs = MACAllocator()
    segment = EthernetSegment(sim, "lan", config.ethernet)

    def make_host(name, addr):
        node = Host(sim, name, config)
        iface = EthernetInterface(sim, f"eth.{name}", macs.allocate(), config)
        node.add_interface(iface)
        iface.attach(segment)
        node.configure_interface(iface, ip(addr), net)
        return node

    sender_host = make_host("snd", "10.0.0.1")
    receiver_host = make_host("rcv", "10.0.0.2")
    received = []
    def on_conn(conn):
        conn.on_data = lambda data: received.append(data.content)
    receiver_host.tcp.listen(7, on_conn)
    conn = sender_host.tcp.connect(ip("10.0.0.2"), 7)

    sent = []

    def tick(index: int) -> None:
        iface = receiver_host.interfaces[1]
        if index in outage_ticks:
            iface.state = iface.state.__class__.DOWN
        else:
            iface.state = iface.state.__class__.UP
        if index < len(chunk_sizes) and conn.state.value == "established":
            payload = AppData(index, chunk_sizes[index] * 16)
            conn.send(payload)
            sent.append(index)

    for index in range(48):
        sim.call_at(ms(200) * (index + 1), lambda index=index: tick(index))
    sim.run_for(s(10))
    # Ensure the interface ends up, then drain retransmissions.
    receiver_host.interfaces[1].state = \
        receiver_host.interfaces[1].state.__class__.UP
    sim.run_for(s(60))
    assert received == sent


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                max_size=25))
@settings(max_examples=25, deadline=None)
def test_dhcp_pool_conservation(steps):
    """Acquire/release in any order: leases + free addresses always equal
    the pool; no address is ever double-allocated."""
    sim = Simulator(seed=7)
    config = DEFAULT_CONFIG
    net = subnet("10.0.0.0/24")
    macs = MACAllocator()
    segment = EthernetSegment(sim, "lan", config.ethernet)

    server_host = Host(sim, "server", config)
    server_iface = EthernetInterface(sim, "eth.s", macs.allocate(), config)
    server_host.add_interface(server_iface)
    server_iface.attach(segment)
    server_host.configure_interface(server_iface, ip("10.0.0.1"), net)
    pool_size = 4
    server = DHCPServer(server_host, server_iface, net, first_host=100,
                        last_host=100 + pool_size - 1)

    from repro.net.dhcp import DHCPClient
    from repro.net.interface import InterfaceState

    clients = []
    for index in range(4):
        node = Host(sim, f"c{index}", config)
        iface = EthernetInterface(sim, f"eth.c{index}", macs.allocate(),
                                  config)
        node.add_interface(iface)
        iface.attach(segment)
        iface.state = InterfaceState.UP
        clients.append(DHCPClient(node, iface, client_id=f"c{index}"))

    for step, which in enumerate(steps):
        client = clients[which]
        if client.lease is None:
            client.acquire(on_bound=lambda lease: None,
                           on_failed=lambda: None)
        else:
            client.release()
        sim.run_for(s(1))
        server._expire_stale()
        leased = {lease.address for lease in server.active_leases()}
        free = set(server.free_addresses())
        assert leased.isdisjoint(free)
        assert len(leased) + len(free) == pool_size
