"""Properties of the congestion-control seam.

Three contracts:

1. The x6 sweep is ``--jobs``-invariant: worker count never changes the
   report, because every cell's randomness is addressed by its own seed.
2. Reno and CUBIC are deterministic: the same trial at the same seed
   produces field-identical results on every run (CUBIC's cube root is
   integer arithmetic, never a float library call).
3. The default config *is* Tahoe: making ``tcp_congestion_control="tahoe"``
   explicit changes nothing in the existing x1-x5 extension experiments
   byte-for-byte, so the strategy seam is invisible until opted into.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.experiments.harness import as_plain_data
from repro.experiments import (
    run_autoswitch_experiment,
    run_chaos_experiment,
    run_ha_fleet_sweep,
    run_ha_scalability_experiment,
    run_smart_correspondent_experiment,
    run_tcp_cc_experiment,
)
from repro.experiments.exp_tcp_cc import run_tcp_cc_trial

SEEDS = (0, 1, 2)
#: Reduced x6 grid: the modern strategies on the hard cell.
GRID = dict(ccs=("reno", "cubic"), loss_rates=(0.25,), handoffs=(True,))
TAHOE_CONFIG = DEFAULT_CONFIG.with_overrides(tcp_congestion_control="tahoe")


@pytest.mark.parametrize("seed", SEEDS)
def test_tcp_cc_report_is_jobs_invariant(seed):
    serial = run_tcp_cc_experiment(seed=seed, jobs=1, **GRID)
    parallel = run_tcp_cc_experiment(seed=seed, jobs=4, **GRID)
    assert as_plain_data(parallel) == as_plain_data(serial)


@pytest.mark.parametrize("cc", ["reno", "cubic"])
def test_modern_strategies_are_run_to_run_deterministic(cc):
    first = run_tcp_cc_trial(cc, loss_rate=0.25, handoff=True, seed=1)
    second = run_tcp_cc_trial(cc, loss_rate=0.25, handoff=True, seed=1)
    assert first == second


def test_trial_seeds_are_addressed_by_cell_index():
    from repro.experiments.exp_tcp_cc import build_tcp_cc_trials

    trials = build_tcp_cc_trials(("tahoe", "reno"), (0.0,), (False, True),
                                 seed=50, config=DEFAULT_CONFIG)
    assert [t.params["seed"] for t in trials] == [50, 51, 52, 53]


# ------------------------------------------------ default == explicit tahoe
# Each x1-x5 experiment, run with the seam's knob spelled out, must be
# byte-identical to the default-config run.  Reduced parameters keep the
# suite fast; the config plumbing exercised is the same.

def test_x1_smart_correspondent_default_is_tahoe():
    default = run_smart_correspondent_experiment(probes=5, seed=0)
    explicit = run_smart_correspondent_experiment(probes=5, seed=0,
                                                  config=TAHOE_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)


def test_x2_ha_scalability_default_is_tahoe():
    default = run_ha_scalability_experiment(fleet_sizes=(5,), seed=0)
    explicit = run_ha_scalability_experiment(fleet_sizes=(5,), seed=0,
                                             config=TAHOE_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)


def test_x3_autoswitch_default_is_tahoe():
    default = run_autoswitch_experiment(intervals_ms=(500,), seed=0)
    explicit = run_autoswitch_experiment(intervals_ms=(500,), seed=0,
                                         config=TAHOE_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)


def test_x4_ha_fleet_sweep_default_is_tahoe():
    default = run_ha_fleet_sweep(fleet_sizes=(120,), seed=0)
    explicit = run_ha_fleet_sweep(fleet_sizes=(120,), seed=0,
                                  config=TAHOE_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)


def test_x5_chaos_default_is_tahoe():
    default = run_chaos_experiment(loss_rates=(0.2,), flap_periods_ms=(0,),
                                   seed=0)
    explicit = run_chaos_experiment(loss_rates=(0.2,), flap_periods_ms=(0,),
                                    seed=0, config=TAHOE_CONFIG)
    assert as_plain_data(explicit) == as_plain_data(default)
