"""Figure 7 benchmark: the registration time-line.

Paper numbers: total switch 7.39 ms, request->reply 4.79 ms, home-agent
processing 1.48 ms (averages of 10 tests on the real testbed).
"""

import pytest

from repro.experiments.exp_registration import (
    PAPER_HA_PROCESSING_MS,
    PAPER_REQUEST_REPLY_MS,
    PAPER_TOTAL_MS,
    run_registration_experiment,
)


@pytest.mark.benchmark(group="figure7")
def test_figure7_registration_timeline(benchmark):
    report = benchmark.pedantic(run_registration_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    # Shape: each headline number lands within 15% of the paper's.
    assert report.total.mean == pytest.approx(PAPER_TOTAL_MS, rel=0.15)
    assert report.request_reply.mean == pytest.approx(PAPER_REQUEST_REPLY_MS,
                                                      rel=0.15)
    assert report.ha_processing.mean == pytest.approx(PAPER_HA_PROCESSING_MS,
                                                      rel=0.15)
    # Structural claims: registration dominates the switch; the switch is
    # overwhelmingly software (total well under 10 ms).
    assert report.request_reply.mean > report.total.mean / 2
    assert report.total.mean < 10.0
    # "The home agent should be able to deal with a large number of mobile
    # hosts simultaneously": HA processing is a small slice of the total.
    assert report.ha_processing.mean < report.total.mean / 4
