"""Microbenchmarks of the substrate itself.

These are not paper artifacts; they characterize the simulator so users
know what a given experiment costs (events/second, per-packet overhead).
"""

import pytest

from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


@pytest.mark.benchmark(group="micro")
def test_engine_event_throughput(benchmark):
    """Cost of scheduling + running 10k trivial events."""

    def run() -> int:
        sim = Simulator()
        counter = []
        for index in range(10_000):
            sim.call_at(index, lambda: counter.append(None))
        sim.run()
        return len(counter)

    executed = benchmark(run)
    assert executed == 10_000


@pytest.mark.benchmark(group="micro")
def test_tunneled_echo_round_trips(benchmark):
    """End-to-end cost of 100 tunneled echo round trips on the testbed."""

    def run() -> int:
        sim = Simulator(seed=1)
        testbed = build_testbed(sim, with_remote_correspondent=False,
                                with_dhcp=False)
        testbed.visit_dept()
        sim.run_for(s(1))
        UdpEchoResponder(testbed.mobile)
        stream = UdpEchoStream(testbed.correspondent,
                               testbed.addresses.mh_home, interval=ms(10))
        stream.start()
        sim.run_for(ms(10) * 100)
        stream.stop()
        sim.run_for(s(1))
        return stream.received

    received = benchmark(run)
    assert received >= 100


@pytest.mark.benchmark(group="micro")
def test_testbed_construction(benchmark):
    """Cost of building the full Figure-5 testbed."""

    def run():
        sim = Simulator(seed=1)
        return build_testbed(sim)

    testbed = benchmark(run)
    assert testbed.mobile.at_home


@pytest.mark.benchmark(group="micro")
def test_tcp_bulk_transfer_wallclock(benchmark):
    """Simulator cost of a 200-chunk TCP session across the tunnel."""
    from repro.workloads import TcpBulkReceiver, TcpBulkSender

    def run() -> int:
        sim = Simulator(seed=1)
        testbed = build_testbed(sim, with_remote_correspondent=False,
                                with_dhcp=False)
        testbed.visit_dept()
        sim.run_for(s(1))
        receiver = TcpBulkReceiver(testbed.mobile)
        sender = TcpBulkSender(testbed.correspondent,
                               testbed.addresses.mh_home, interval=ms(20))
        sender.start()
        sim.run_for(s(4))
        sender.finish()
        sim.run_for(s(10))
        return len(receiver.received_chunks)

    delivered = benchmark(run)
    assert delivered >= 195
