"""Foreign-agent ablation benchmark (Section 5.1, A1).

Paper claim: "foreign agents may somewhat reduce packet loss" — when the
mobile host cold-switches away from a high-latency network, a foreign
agent there can forward packets that were already in flight.  The paper
judges the benefit real but not worth the architectural cost.
"""

import pytest

from repro.experiments.exp_fa_ablation import run_fa_ablation


@pytest.mark.benchmark(group="fa-ablation")
def test_foreign_agent_reduces_loss_somewhat(benchmark):
    report = benchmark.pedantic(run_fa_ablation, rounds=1, iterations=1)
    print()
    print(report.format_report())

    # Shape 1: the FA configuration loses less on average...
    assert report.mean_with < report.mean_without
    # ...because the old FA really forwarded in-flight packets.
    assert sum(report.forwarded_by_fa) > 0
    # Shape 2: "somewhat" — the benefit is modest, not a rescue: the FA
    # configuration still loses most of the outage's packets.
    assert report.mean_with > report.mean_without * 0.5
