"""Benchmarks for the extension experiments (deferred paper features).

Each of these quantifies something the paper names but did not measure:
the reverse-path optimization through smart correspondents (Sections 3.2
and 5.1), the home agent's many-hosts scalability claim (Section 4), and
the switch-decision policy (Section 6).
"""

import pytest

from repro.experiments.exp_autoswitch import run_autoswitch_experiment
from repro.experiments.exp_ha_scalability import run_ha_scalability_experiment
from repro.experiments.exp_smart_correspondent import (
    run_smart_correspondent_experiment,
)


@pytest.mark.benchmark(group="extensions")
def test_smart_correspondent_reverse_path(benchmark):
    report = benchmark.pedantic(run_smart_correspondent_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    # Shape: the optimization is real (faster) and complete (the home
    # agent carries none of the optimized traffic)...
    assert report.speedup > 1.2
    assert report.ha_packets_optimized == 0
    assert report.ha_packets_plain > 0
    # ...and losing the cache degrades gracefully to the basic protocol.
    assert report.fallback_lossless


@pytest.mark.benchmark(group="extensions")
def test_home_agent_scalability(benchmark):
    report = benchmark.pedantic(run_ha_scalability_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    # Every registration is eventually accepted at every fleet size.
    for result in report.results:
        assert result.accepted == result.fleet_size
    # Latency grows roughly linearly with simultaneous arrivals (queueing
    # behind ~1.5 ms of processing each), not explosively.
    single = report.results[0].latency.mean
    largest = report.results[-1]
    per_host = (largest.latency.maximum - single) / largest.fleet_size
    assert 0.5 < per_host < 3.0  # ms per queued registration
    # The paper's claim quantified: even 50 simultaneous mobile hosts are
    # all registered within a tenth of a second.
    assert largest.latency.maximum < 100.0


@pytest.mark.benchmark(group="extensions")
def test_autoswitch_probe_cadence_tradeoff(benchmark):
    report = benchmark.pedantic(run_autoswitch_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    points = report.points
    # Faster probing -> shorter outage (monotone within the sweep ends).
    assert points[0].packets_lost < points[-1].packets_lost
    assert points[0].failover_ms < points[-1].failover_ms
    # ...but more background traffic.
    assert points[0].probes_per_second > points[-1].probes_per_second
    # Failover time is governed by detection, i.e. a small multiple of
    # the probe interval plus the probe timeout.
    for point in points:
        assert point.failover_ms < point.probe_interval_ms * 3 + 1500
