"""Benchmark configuration.

Each benchmark regenerates one of the paper's measured artifacts
(Figure 6, Figure 7, the same-subnet switch experiment) or an ablation
(routing options, foreign agent).  The experiment harnesses are
deterministic, so a single round is meaningful; pytest-benchmark provides
wall-clock cost of regenerating each artifact, and the assertions check
the *shape* of the result against the paper.

Run with::

    pytest benchmarks/ --benchmark-only
"""
