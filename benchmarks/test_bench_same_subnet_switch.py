"""Same-subnet switch benchmark (the Section 4 experiment).

Paper: 20 iterations with a 10 ms UDP probe stream; 16 iterations lose
zero packets, 4 lose exactly one; conclusion: "the interval during which
packets can be lost is under 10 ms."
"""

import pytest

from repro.experiments.exp_same_subnet import (
    PAPER_HISTOGRAM,
    run_probe_interval_sweep,
    run_same_subnet_experiment,
)


@pytest.mark.benchmark(group="same-subnet")
def test_same_subnet_switch_loss(benchmark):
    report = benchmark.pedantic(run_same_subnet_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    # Shape 1: no run ever loses more than one packet (the paper's bound).
    assert report.max_loss <= max(PAPER_HISTOGRAM)
    # Shape 2: the clear majority of runs lose nothing.
    assert report.zero_loss_runs >= report.iterations * 0.6
    # Shape 3: some runs do lose one packet — the loss window is real,
    # just smaller than the probe interval.
    assert report.zero_loss_runs < report.iterations
    # Shape 4: the switch itself stays well under the probe interval.
    assert max(report.switch_totals_ms) < report.probe_interval_ms


@pytest.mark.benchmark(group="same-subnet")
def test_loss_window_sweep(benchmark):
    """Ablation of the paper's in-flight-packet argument: "no matter how
    small this interval is, it is always possible for some packet in
    flight to arrive during this time" — denser probing catches more of
    the fixed vulnerable window."""
    report = benchmark.pedantic(run_probe_interval_sweep,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    means = [mean for _interval, mean in report.points]
    # Monotone (non-strictly) decreasing loss as probes get sparser.
    assert all(a >= b for a, b in zip(means, means[1:]))
    # At 2 ms spacing the window is hit essentially every time; at 20 ms
    # it usually is not.
    assert means[0] >= 1.0
    assert means[-1] <= 0.5
    # The implied window (loss x spacing) is a few milliseconds — well
    # under the paper's 10 ms bound and consistent across densities.
    window = report.estimated_window_ms()
    assert 1.0 < window < 6.0
