"""TCP goodput across handoffs: the end-to-end cost of moving.

The paper measures handoffs with UDP probes; this bench asks the question
an application owner would: how much *throughput* does a move cost a
long-lived TCP session?  Hot switches should cost almost nothing; cold
switches cost roughly the outage times the pre-outage rate; and in both
cases the session must deliver everything exactly once.
"""

import pytest

from repro.core.handoff import DeviceSwitcher
from repro.net.addressing import ip
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import TcpBulkReceiver, TcpBulkSender

HOME = ip("36.135.0.10")
CHUNK_INTERVAL = ms(100)


def _session_through_switch(seed: int, hot: bool):
    """Run a chunk stream across one eth->radio switch; returns the
    per-phase delivery counts and the switch timeline."""
    sim = Simulator(seed=seed)
    testbed = build_testbed(sim, with_remote_correspondent=False,
                            with_dhcp=False)
    testbed.visit_dept()
    if hot:
        testbed.connect_radio(register=False)
    else:
        testbed.mh_radio.subnet = testbed.addresses.radio_net
        testbed.mh_radio.add_address(testbed.addresses.mh_radio,
                                     make_primary=True)
    sim.run_for(s(1))

    receiver = TcpBulkReceiver(testbed.mobile)
    sender = TcpBulkSender(testbed.correspondent, HOME,
                           interval=CHUNK_INTERVAL)
    sender.start()
    sim.run_for(s(4))
    before_switch = len(receiver.received_chunks)

    done = []
    switcher = DeviceSwitcher(testbed.mobile)
    if hot:
        switcher.hot_switch(testbed.mh_radio, testbed.addresses.mh_radio,
                            testbed.addresses.radio_net,
                            testbed.addresses.router_radio,
                            on_done=done.append)
    else:
        switcher.cold_switch(testbed.mh_eth, testbed.mh_radio,
                             testbed.addresses.mh_radio,
                             testbed.addresses.radio_net,
                             testbed.addresses.router_radio,
                             on_done=done.append)
    sim.run_for(s(8))
    sender.finish()
    sim.run_for(s(45))
    assert done and done[0].success
    assert not sender.reset
    assert receiver.received_chunks == list(range(sender.sent_chunks))
    return before_switch, len(receiver.received_chunks), done[0]


@pytest.mark.benchmark(group="tcp-handoff")
def test_tcp_session_cost_of_hot_vs_cold_switch(benchmark):
    def run():
        cold = _session_through_switch(seed=301, hot=False)
        hot = _session_through_switch(seed=302, hot=True)
        return cold, hot

    (cold_before, cold_total, cold_timeline), \
        (hot_before, hot_total, hot_timeline) = benchmark.pedantic(
            run, rounds=1, iterations=1)
    cold_ms = cold_timeline.total / 1e6
    hot_ms = hot_timeline.total / 1e6
    print(f"\ncold switch {cold_ms:.0f} ms, hot switch {hot_ms:.0f} ms; "
          f"all chunks delivered exactly once in both runs")

    # Shape: hot switching is an order of magnitude cheaper than cold.
    assert hot_ms * 2 < cold_ms
    # Both sessions completed losslessly (asserted inside the run), and
    # the cold outage matches Figure 6's budget.
    assert cold_ms < 1600
