"""Radio characteristics: the paper's two quoted Metricom numbers.

* "In theory, Metricom radios can send 100 Kbits/second through the air,
  but in practice 30-40 Kbits/second is the best we achieve."
* "The round-trip time between the home agent and the mobile host through
  the radio interface is 200~250 ms."

These are *inputs* to the calibration, so the benches here close the loop:
they measure both quantities end-to-end through the full stack (serial
line, channel FIFO, IP, UDP/ICMP) and check the emergent numbers still
land in the quoted bands — i.e. nothing in the stack silently eats the
budget.
"""

import pytest

from repro.net.packet import AppData
from repro.sim import Simulator, ms, s
from repro.testbed import build_testbed
from repro.workloads import UdpEchoResponder, UdpEchoStream


@pytest.mark.benchmark(group="radio")
def test_radio_rtt_in_papers_band(benchmark):
    """Echo RTT through the home agent over the radio: 200-250 ms."""

    def run() -> float:
        sim = Simulator(seed=5)
        testbed = build_testbed(sim, with_remote_correspondent=False,
                                with_dhcp=False)
        testbed.unplug_ethernet()
        testbed.connect_radio(register=True)
        sim.run_for(s(2))
        UdpEchoResponder(testbed.mobile)
        stream = UdpEchoStream(testbed.correspondent,
                               testbed.addresses.mh_home, interval=ms(300))
        stream.start()
        sim.run_for(s(6))
        stream.stop()
        sim.run_for(s(2))
        rtts = stream.rtts()
        assert len(rtts) >= 15
        return sum(rtts) / len(rtts) / 1e6

    mean_rtt_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmean radio echo RTT through the HA: {mean_rtt_ms:.0f} ms "
          f"(paper: 200-250 ms)")
    assert 200 <= mean_rtt_ms <= 250


@pytest.mark.benchmark(group="radio")
def test_radio_effective_throughput_in_papers_band(benchmark):
    """Saturate the radio with bulk datagrams; goodput lands at 30-40
    kbit/s of application payload + headers."""

    def measured() -> float:
        sim = Simulator(seed=6)
        testbed = build_testbed(sim, with_remote_correspondent=False,
                                with_dhcp=False)
        testbed.unplug_ethernet()
        testbed.connect_radio(register=False)
        testbed.mobile.start_visiting(
            testbed.mh_radio, testbed.addresses.mh_radio,
            testbed.addresses.radio_net, testbed.addresses.router_radio,
            register=False)
        sim.run_for(s(1))

        arrivals = []
        sink = testbed.router.udp.open(5001)
        sink.on_datagram(lambda data, src, sp, dst:
                         arrivals.append((sim.now, data.size_bytes)))
        sender = testbed.mobile.udp.open(
            0, bound_address=testbed.addresses.mh_radio)
        payload_bytes = 472
        count = 60
        first_sent = sim.now
        for _ in range(count):
            sender.sendto(AppData("bulk", payload_bytes),
                          testbed.addresses.router_radio, 5001)
        sim.run_for(s(120))
        assert len(arrivals) >= count * 0.95
        duration_s = (arrivals[-1][0] - first_sent) / 1e9
        wire_bits = sum(size + 28 for _, size in arrivals) * 8
        return wire_bits / duration_s

    throughput_bps = benchmark.pedantic(measured, rounds=1, iterations=1)
    print(f"\neffective radio throughput: {throughput_bps / 1000:.1f} "
          f"kbit/s (paper: 30-40 kbit/s)")
    assert 30_000 <= throughput_bps <= 40_000


@pytest.mark.benchmark(group="radio")
def test_registration_cost_by_medium(benchmark):
    """Registration latency is medium-bound: ~5 ms on Ethernet (Figure 7)
    vs one radio round trip (~220 ms) over the air — which is why hot
    switches to the radio take ~a quarter second (Figure 6's hot bars)."""

    def run():
        sim = Simulator(seed=8)
        testbed = build_testbed(sim, with_remote_correspondent=False,
                                with_dhcp=False)
        # Ethernet registration.
        testbed.visit_dept(register=False)
        eth_outcomes = []
        testbed.mobile.register_current(on_registered=eth_outcomes.append)
        sim.run_for(s(2))
        # Radio registration.
        testbed.connect_radio(register=False)
        testbed.mobile.start_visiting(
            testbed.mh_radio, testbed.addresses.mh_radio,
            testbed.addresses.radio_net, testbed.addresses.router_radio,
            register=False)
        radio_outcomes = []
        testbed.mobile.register_current(on_registered=radio_outcomes.append)
        sim.run_for(s(3))
        assert eth_outcomes and eth_outcomes[0].accepted
        assert radio_outcomes and radio_outcomes[0].accepted
        return (eth_outcomes[0].round_trip / 1e6,
                radio_outcomes[0].round_trip / 1e6)

    eth_ms, radio_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nregistration request->reply: ethernet {eth_ms:.2f} ms, "
          f"radio {radio_ms:.0f} ms")
    assert 4.0 < eth_ms < 6.5
    assert 180 < radio_ms < 280
    assert radio_ms > eth_ms * 20  # the medium dominates, not the software
