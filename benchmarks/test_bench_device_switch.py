"""Figure 6 benchmark: device switching overhead.

Paper shape: cold switches lose packets over an interval "generally less
than 1.25 seconds" (<= ~5 packets at 250 ms spacing), dominated by
bringing up the new interface; hot switches usually lose nothing (the
only observed loss was the radio's own drop).
"""

import pytest

from repro.experiments.exp_device_switch import (
    PAPER_COLD_OUTAGE_BOUND_MS,
    SwitchCase,
    run_device_switch_experiment,
)


@pytest.mark.benchmark(group="figure6")
def test_figure6_device_switching(benchmark):
    report = benchmark.pedantic(run_device_switch_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    cold_eth_radio = report.cases[SwitchCase.COLD_WIRED_TO_WIRELESS]
    cold_radio_eth = report.cases[SwitchCase.COLD_WIRELESS_TO_WIRED]
    hot_eth_radio = report.cases[SwitchCase.HOT_WIRED_TO_WIRELESS]
    hot_radio_eth = report.cases[SwitchCase.HOT_WIRELESS_TO_WIRED]

    # Shape 1: cold switches lose packets; the bound is ~5 at 250 ms.
    for cold in (cold_eth_radio, cold_radio_eth):
        assert cold.mean_loss >= 1
        assert cold.max_loss <= 6
        assert max(cold.switch_totals_ms) < PAPER_COLD_OUTAGE_BOUND_MS * 1.2

    # Shape 2: hot switches lose (almost) nothing.
    assert hot_radio_eth.mean_loss == 0
    assert hot_eth_radio.mean_loss <= 0.5  # radio's own occasional drop

    # Shape 3: cold loses strictly more than hot, in both directions.
    assert cold_eth_radio.mean_loss > hot_eth_radio.mean_loss
    assert cold_radio_eth.mean_loss > hot_radio_eth.mean_loss

    # Shape 4: bringing up the radio costs more than the Ethernet card,
    # so the eth->radio cold switch is the slowest.
    assert (sum(cold_eth_radio.switch_totals_ms)
            > sum(cold_radio_eth.switch_totals_ms))
