"""Routing-options benchmark (Section 3.2 / Figure 3 + ablation A2).

Shape claims from the paper:

* tunneling pays the home-agent detour in *both* directions; the triangle
  route removes it from the outgoing direction only; plain local traffic
  avoids it entirely;
* encapsulation costs exactly 20 bytes per packet;
* the plain triangle route dies behind a transit-traffic filter, the
  tunnel and the encapsulated-direct variant survive;
* a failed probe makes the Mobile Policy Table fall back to the tunnel.
"""

import pytest

from repro.core.policy import RoutingMode
from repro.experiments.exp_routing_options import (
    PAPER_ENCAP_OVERHEAD_BYTES,
    run_routing_options_experiment,
)


@pytest.mark.benchmark(group="routing-options")
def test_routing_options_ablation(benchmark):
    report = benchmark.pedantic(run_routing_options_experiment,
                                rounds=1, iterations=1)
    print()
    print(report.format_report())

    tunnel = report.results[RoutingMode.TUNNEL]
    triangle = report.results[RoutingMode.TRIANGLE]
    encap_direct = report.results[RoutingMode.ENCAP_DIRECT]
    local = report.results[RoutingMode.LOCAL]

    # Latency ordering to a nearby correspondent:
    # local < triangle (reply still detours) < tunnel (both ways detour).
    assert local.rtt_nearby.mean < triangle.rtt_nearby.mean
    assert triangle.rtt_nearby.mean < tunnel.rtt_nearby.mean
    # The triangle saves roughly the one-way detour: its RTT sits between
    # half of and the full tunneled RTT.
    assert triangle.rtt_nearby.mean > tunnel.rtt_nearby.mean / 2

    # Encapsulation overhead is exactly one IP header.
    for mode in (tunnel, encap_direct):
        assert mode.encap_overhead_bytes == PAPER_ENCAP_OVERHEAD_BYTES
    for mode in (triangle, local):
        assert mode.encap_overhead_bytes == 0

    # Transit filter: only the plain triangle dies.
    assert not triangle.survives_transit_filter
    assert tunnel.survives_transit_filter
    assert encap_direct.survives_transit_filter
    assert local.survives_transit_filter

    # Mobility preservation: local mode sacrifices it.
    assert not local.preserves_mobility
    assert all(report.results[m].preserves_mobility
               for m in (RoutingMode.TUNNEL, RoutingMode.TRIANGLE,
                         RoutingMode.ENCAP_DIRECT))

    # The dynamic fallback worked end to end.
    assert report.fallback_probe_failed
    assert report.fallback_recovered
