"""Reproduction of "Supporting Mobility in MosquitoNet" (USENIX 1996).

Public API overview
-------------------

The package splits the way the paper does:

* :mod:`repro.sim` — the deterministic discrete-event kernel.
* :mod:`repro.net` — the substrate: links, interfaces, ARP, IP, ICMP,
  UDP, TCP, DHCP, routers.
* :mod:`repro.core` — the contribution: mobile host, home agent, VIF and
  IP-in-IP tunneling, the Mobile Policy Table, handoff engines, plus the
  foreign-agent baseline and the implemented extensions (smart
  correspondents, authentication, auto-switching, notifications).
* :mod:`repro.testbed` — the paper's Figure-5 environment, pre-wired.
* :mod:`repro.workloads` — the measurement traffic.
* :mod:`repro.experiments` — one harness per table/figure
  (``python -m repro.experiments``).

Sixty-second tour::

    from repro.sim import Simulator, ms, s
    from repro.testbed import build_testbed

    sim = Simulator(seed=42)
    tb = build_testbed(sim)
    tb.visit_dept()          # the mobile host roams; connections survive
    sim.run_for(s(5))
    print(tb.home_agent.current_care_of(tb.addresses.mh_home))
"""

from repro.config import DEFAULT_CONFIG, Config

__version__ = "1.0.0"

__all__ = ["Config", "DEFAULT_CONFIG", "__version__"]
