"""Reproduction of "Supporting Mobility in MosquitoNet" (USENIX 1996).

Public API overview
-------------------

The package splits the way the paper does:

* :mod:`repro.sim` — the deterministic discrete-event kernel.
* :mod:`repro.net` — the substrate: links, interfaces, ARP, IP, ICMP,
  UDP, TCP, DHCP, routers.
* :mod:`repro.core` — the contribution: mobile host, home agent, VIF and
  IP-in-IP tunneling, the Mobile Policy Table, handoff engines, plus the
  foreign-agent baseline and the implemented extensions (smart
  correspondents, authentication, auto-switching, notifications).
* :mod:`repro.obs` — observability: the metrics registry every simulator
  owns (``sim.metrics``), engine profiling, exporters.
* :mod:`repro.testbed` — the paper's Figure-5 environment, pre-wired.
* :mod:`repro.workloads` — the measurement traffic.
* :mod:`repro.experiments` — one harness per table/figure
  (``python -m repro.experiments``; add ``--metrics`` for counters).
* :mod:`repro.api` — the :class:`Scenario` builder facade, re-exported
  here so the sixty-second tour needs one import.

Sixty-second tour::

    from repro import Scenario, s

    result = (Scenario(seed=42)
              .with_testbed()
              .with_step(0, lambda tb: tb.visit_dept())
              .run(duration=s(5)))
    print(result.testbed.home_agent.current_care_of(
        result.testbed.addresses.mh_home))
    print(result.report())
"""

from repro.api import RunResult, Scenario
from repro.config import DEFAULT_CONFIG, Config
from repro.core.home_agent import HomeAgentService
from repro.faults import (
    DhcpOutage,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    GilbertElliottPhase,
    HomeAgentRestart,
    InterfaceFlap,
    LossBurst,
    ReplyDropWindow,
)
from repro.core.mobile_host import MobileHost
from repro.core.policy import RoutingMode
from repro.sim.engine import Simulator
from repro.sim.units import ms, s, us
from repro.testbed.topology import Testbed, build_testbed

#: Alias: the paper calls the service simply "the home agent".
HomeAgent = HomeAgentService

__version__ = "1.1.0"

__all__ = [
    "Config",
    "DEFAULT_CONFIG",
    "DhcpOutage",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliottPhase",
    "HomeAgent",
    "HomeAgentRestart",
    "InterfaceFlap",
    "LossBurst",
    "ReplyDropWindow",
    "HomeAgentService",
    "MobileHost",
    "RoutingMode",
    "RunResult",
    "Scenario",
    "Simulator",
    "Testbed",
    "build_testbed",
    "ms",
    "s",
    "us",
    "__version__",
]
