"""`repro.api`: the one-import facade for building and running scenarios.

Everything in this repository can be driven piecewise — build a
:class:`~repro.sim.engine.Simulator`, wire a testbed, start workloads, run,
then dig through ``sim.trace`` and ``sim.metrics``.  The
:class:`Scenario` builder packages that sequence::

    from repro import Scenario

    result = (Scenario(seed=2026)
              .with_testbed()
              .with_workload(lambda tb: start_traffic(tb))
              .with_step(s(2), lambda tb: tb.visit_dept())
              .run(duration=s(6)))

    result.snapshot["tunnel/encapsulated{iface=vif.ha.router}"]
    result.trace.select("handoff")

The facade adds no behavior of its own: ``Scenario.run()`` performs exactly
the calls a hand-written script would, in the same order, so results are
byte-identical with the manual path for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.faults import FaultInjector, FaultPlan
from repro.obs.export import format_report, snapshot_to_json
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator, Time
from repro.sim.trace import Trace
from repro.sim.units import s
from repro.testbed.topology import Testbed, build_testbed

#: A workload factory: receives the testbed, returns anything (kept in
#: RunResult.workloads under the name it was registered with).
WorkloadFactory = Callable[[Testbed], Any]


@dataclass
class RunResult:
    """Everything a finished scenario run produced."""

    sim: Simulator
    testbed: Optional[Testbed]
    #: Return values of the registered workload factories, by name.
    workloads: Dict[str, Any] = field(default_factory=dict)
    #: Flat metrics snapshot taken at the end of the run.
    snapshot: Dict[str, object] = field(default_factory=dict)
    #: The armed fault injector, when the scenario declared a fault plan
    #: (``Scenario.with_faults``); ``None`` otherwise.
    fault_injector: Optional[FaultInjector] = None

    @property
    def trace(self) -> Trace:
        """The simulation's structured trace."""
        return self.sim.trace

    @property
    def metrics(self) -> MetricsRegistry:
        """The live registry (the snapshot is its end-of-run copy)."""
        return self.sim.metrics

    def snapshot_json(self) -> str:
        """Canonical JSON of the snapshot (same-seed runs match exactly)."""
        return snapshot_to_json(self.sim.metrics)

    def report(self) -> str:
        """Human-readable metrics report."""
        return format_report(self.sim.metrics)


class Scenario:
    """Builder for a deterministic simulation run.

    The builder is lazy: nothing is constructed until :meth:`run`, so a
    ``Scenario`` can be declared once and run never or once (it is not
    reusable — ``run()`` consumes it, because simulations are stateful).
    """

    def __init__(self, seed: int = 0, *, config: Optional[Config] = None) -> None:
        self.seed = seed
        self.config = config if config is not None else DEFAULT_CONFIG
        self._testbed_kwargs: Optional[Dict[str, Any]] = None
        self._workloads: List[tuple] = []      # (name, factory)
        self._steps: List[tuple] = []          # (at_ns, fn, label)
        self._fault_plan: Optional[FaultPlan] = None
        self._ran = False

    # ------------------------------------------------------------- declaration

    def with_testbed(self, **build_kwargs: Any) -> "Scenario":
        """Build the Figure 5 testbed at run time.

        Keyword arguments are passed straight to
        :func:`repro.testbed.topology.build_testbed` (e.g.
        ``separate_home_agent=True``, ``with_radio_foreign_agent=True``).
        """
        self._testbed_kwargs = dict(build_kwargs)
        return self

    def with_workload(self, factory: WorkloadFactory,
                      name: Optional[str] = None) -> "Scenario":
        """Run *factory(testbed)* at time zero; keep its return value.

        The value lands in ``RunResult.workloads[name]`` (default name:
        ``workload0``, ``workload1``, ... in registration order).
        """
        self._workloads.append(
            (name if name is not None else f"workload{len(self._workloads)}",
             factory))
        return self

    def with_config(self, **overrides: Any) -> "Scenario":
        """Override calibrated constants for this run.

        Keyword arguments are :class:`~repro.config.Config` field names,
        applied via ``Config.with_overrides`` on top of whatever config the
        scenario already holds (the constructor's, or earlier
        ``with_config`` calls — later calls win field-by-field)::

            Scenario(seed=7).with_config(tcp_congestion_control="cubic",
                                         tcp_sack=True,
                                         tcp_flow_control=True,
                                         tcp_recv_buffer=2048)

        Equivalent to passing ``config=DEFAULT_CONFIG.with_overrides(...)``
        to the constructor, so results stay byte-identical with the manual
        path.
        """
        self.config = self.config.with_overrides(**overrides)
        return self

    def with_faults(self, plan: FaultPlan) -> "Scenario":
        """Arm a deterministic fault plan against the testbed.

        At run time — after workload factories, before scheduled steps —
        the plan is bound with ``FaultInjector.for_testbed`` and armed,
        exactly as a hand-written script would.  The injector lands in
        ``RunResult.fault_injector``.  Requires ``with_testbed()``.
        """
        self._fault_plan = plan
        return self

    def with_step(self, at: Time, fn: Callable[[Testbed], None],
                  label: str = "scenario-step") -> "Scenario":
        """Schedule *fn(testbed)* at virtual time *at* (mobility moves)."""
        self._steps.append((at, fn, label))
        return self

    # --------------------------------------------------------------- execution

    def run(self, duration: Time = s(10)) -> RunResult:
        """Build everything, run for *duration*, and snapshot the metrics."""
        if self._ran:
            raise RuntimeError("a Scenario can only run once; build a new one")
        self._ran = True
        sim = Simulator(seed=self.seed,
                        scheduler=self.config.engine_scheduler,
                        pooling=self.config.engine_pooling)
        testbed: Optional[Testbed] = None
        if self._testbed_kwargs is not None:
            testbed = build_testbed(sim, config=self.config,
                                    **self._testbed_kwargs)
        result = RunResult(sim=sim, testbed=testbed)
        for name, factory in self._workloads:
            result.workloads[name] = factory(testbed)
        if self._fault_plan is not None:
            if testbed is None:
                raise RuntimeError("with_faults() requires with_testbed()")
            result.fault_injector = FaultInjector.for_testbed(
                testbed, self._fault_plan)
            result.fault_injector.arm()
        for at, fn, label in self._steps:
            sim.call_at(at, lambda fn=fn: fn(testbed), label=label)
        sim.run_for(duration)
        result.snapshot = sim.metrics.snapshot()
        return result
