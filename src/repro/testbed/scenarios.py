"""Canned movement scenarios over the Figure-5 testbed.

The paper's narrative movements, packaged as schedulable scripts so tests,
benchmarks and downstream users can replay them: the daily commute (office
Ethernet -> radio on the move -> home), the conference visit (foreign
Ethernet via DHCP), and a configurable random walk for soak testing.

A scenario is a list of timed steps; :func:`play` schedules them on the
simulator and returns a :class:`ScenarioRun` that records what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.core.handoff import DeviceSwitcher, SwitchTimeline
from repro.sim.units import s
from repro.testbed.topology import Testbed


@dataclass
class Step:
    """One movement action at a relative time."""

    at: int                      # ns after scenario start
    label: str
    action: Callable[[Testbed, "ScenarioRun"], None]


@dataclass
class ScenarioRun:
    """What a played scenario produced."""

    name: str
    started_at: int
    steps_executed: List[str] = field(default_factory=list)
    switch_timelines: List[SwitchTimeline] = field(default_factory=list)

    @property
    def total_switch_time(self) -> int:
        """Sum of all recorded switch durations, ns."""
        return sum(timeline.total for timeline in self.switch_timelines)

    @property
    def all_switches_succeeded(self) -> bool:
        """True if every recorded switch completed."""
        return all(timeline.success for timeline in self.switch_timelines)


def play(testbed: Testbed, name: str, steps: List[Step]) -> ScenarioRun:
    """Schedule *steps* relative to now; returns the (live) run record."""
    run = ScenarioRun(name=name, started_at=testbed.sim.now)
    for step in steps:
        def execute(step: Step = step) -> None:
            testbed.sim.trace.emit("scenario", "step", name=name,
                                   label=step.label)
            run.steps_executed.append(step.label)
            step.action(testbed, run)

        testbed.sim.call_later(step.at, execute, label=f"scenario:{step.label}")
    return run


# --------------------------------------------------------------- the commute

def commute(testbed: Testbed,
            office_dwell: int = s(4),
            transit_dwell: int = s(6)) -> ScenarioRun:
    """Office Ethernet -> radio on the move -> back home.

    The paper's motivating journey: "we may need to switch from an
    Ethernet connection to a radio modem as we leave our offices, taking
    our computers with us."
    """
    addresses = testbed.addresses

    def to_office(tb: Testbed, run: ScenarioRun) -> None:
        tb.visit_dept()
        tb.connect_radio(register=False)

    def leave_office(tb: Testbed, run: ScenarioRun) -> None:
        # Cold switch: the Ethernet card comes out of the PCMCIA slot.
        DeviceSwitcher(tb.mobile).cold_switch(
            tb.mh_eth, tb.mh_radio, addresses.mh_radio,
            addresses.radio_net, addresses.router_radio,
            on_done=run.switch_timelines.append)

    def arrive_home(tb: Testbed, run: ScenarioRun) -> None:
        tb.move_mh_cable(tb.home_segment)
        tb.mh_eth.state = tb.mh_eth.state.__class__.UP
        tb.mobile.come_home(tb.mh_eth, gateway=addresses.router_home)

    return play(testbed, "commute", [
        Step(at=0, label="arrive at the office", action=to_office),
        Step(at=office_dwell, label="leave the office (cold to radio)",
             action=leave_office),
        Step(at=office_dwell + transit_dwell, label="arrive home",
             action=arrive_home),
    ])


# --------------------------------------------------------- conference visit

def conference_visit(testbed: Testbed, dwell: int = s(5)) -> ScenarioRun:
    """Visit a foreign administrative domain (net 36.40) and return.

    Requires a testbed built with the remote network.  Exercises exactly
    the situation the no-foreign-agent design targets: a network that
    offers nothing but an address.
    """
    if testbed.remote_segment is None:
        raise ValueError("testbed was built without the remote network")
    addresses = testbed.addresses

    def arrive(tb: Testbed, run: ScenarioRun) -> None:
        tb.visit_remote()

    def go_home(tb: Testbed, run: ScenarioRun) -> None:
        tb.move_mh_cable(tb.home_segment)
        tb.mobile.stop_visiting(tb.mh_eth)
        tb.mobile.come_home(tb.mh_eth, gateway=addresses.router_home)

    return play(testbed, "conference", [
        Step(at=0, label="arrive at the conference", action=arrive),
        Step(at=dwell, label="fly home", action=go_home),
    ])


# -------------------------------------------------------------- random walk

def random_walk(testbed: Testbed, moves: int = 6,
                dwell: int = s(3), seed_stream: str = "scenario"
                ) -> ScenarioRun:
    """Bounce between the department Ethernet and the radio *moves* times.

    Movement order is drawn from the simulation's seeded RNG, so a walk is
    reproducible per seed.  Used for soak tests: whatever the sequence,
    connections must survive and the binding must track the mobile host.
    """
    addresses = testbed.addresses
    rng = testbed.sim.rng(seed_stream)
    steps: List[Step] = []

    def go_ethernet(tb: Testbed, run: ScenarioRun) -> None:
        if tb.mh_eth.segment is not tb.dept_segment:
            tb.move_mh_cable(tb.dept_segment)
        if not tb.mh_eth.is_up:
            tb.mh_eth.state = tb.mh_eth.state.__class__.UP
        tb.mh_eth.remove_address(addresses.mh_home)
        tb.mobile.ip.routes.remove_matching(interface=tb.mh_eth)
        tb.mh_eth.subnet = addresses.dept_net
        tb.mh_eth.add_address(addresses.mh_dept_care_of, make_primary=True)
        tb.mobile.start_visiting(tb.mh_eth, addresses.mh_dept_care_of,
                                 addresses.dept_net, addresses.router_dept)

    def go_radio(tb: Testbed, run: ScenarioRun) -> None:
        tb.connect_radio(register=True)

    choices = [("ethernet", go_ethernet), ("radio", go_radio)]
    previous = None
    when = 0
    for index in range(moves):
        label, action = choices[rng.randrange(len(choices))]
        if label == previous:
            label, action = choices[(choices[0][0] == label) * 1]
        previous = label
        steps.append(Step(at=when, label=f"move {index}: {label}",
                          action=action))
        when += dwell
    return play(testbed, "random-walk", steps)
