"""The MosquitoNet test-bed (Figure 5) and movement scenarios."""

from repro.testbed.topology import Addresses, Testbed, build_testbed

__all__ = ["Addresses", "Testbed", "build_testbed"]
