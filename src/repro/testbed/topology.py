"""Figure 5's test-bed, rebuilt in the simulator.

The paper's environment:

* **net 36.135** — wired Ethernet, the research group's subnet and the
  mobile host's *home network*;
* **net 36.8** — wired Ethernet, the CS department subnet, connected to the
  rest of the Internet; the correspondent host lives here (results were
  similar for a correspondent elsewhere on campus, which the builder also
  provides);
* **net 36.134** — the wireless (Metricom) subnet;
* a Pentium 90 **router** connecting all three, which "is also usually
  used as the home agent" ("our implementation does not require the home
  agent to be collocated with the router" — the builder supports both);
* the **mobile host**, a Gateway Handbook 486 with a PCMCIA Ethernet card
  and a Metricom radio on the serial port.

The builder wires all of it and returns a :class:`Testbed` handle with
every component exposed for experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import Config, DEFAULT_CONFIG
from repro.core.foreign_agent import ForeignAgentService
from repro.core.home_agent import HomeAgentService
from repro.core.mobile_host import MobileHost
from repro.core.policy import RoutingMode
from repro.core.registration import RegistrationOutcome
from repro.net.addressing import IPAddress, MACAllocator, Subnet, ip, subnet
from repro.net.dhcp import DHCPClient, DHCPServer
from repro.net.host import Host
from repro.net.interface import (
    EthernetInterface,
    InterfaceState,
    PointToPointInterface,
    RadioInterface,
)
from repro.net.link import EthernetSegment, PointToPointLink, RadioChannel
from repro.net.router import Router
from repro.net.routing import RouteEntry
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Addresses:
    """The paper's numbering plan (Stanford class-B net 36, subnetted)."""

    home_net: Subnet = field(default_factory=lambda: subnet("36.135.0.0/24"))
    dept_net: Subnet = field(default_factory=lambda: subnet("36.8.0.0/24"))
    radio_net: Subnet = field(default_factory=lambda: subnet("36.134.0.0/24"))
    remote_net: Subnet = field(default_factory=lambda: subnet("36.40.0.0/24"))
    backbone_net: Subnet = field(default_factory=lambda: subnet("36.200.0.0/30"))

    router_home: IPAddress = field(default_factory=lambda: ip("36.135.0.1"))
    router_dept: IPAddress = field(default_factory=lambda: ip("36.8.0.1"))
    router_radio: IPAddress = field(default_factory=lambda: ip("36.134.0.1"))
    router_backbone: IPAddress = field(default_factory=lambda: ip("36.200.0.1"))

    home_agent_host: IPAddress = field(default_factory=lambda: ip("36.135.0.2"))
    mh_home: IPAddress = field(default_factory=lambda: ip("36.135.0.10"))
    mh_dept_care_of: IPAddress = field(default_factory=lambda: ip("36.8.0.50"))
    mh_dept_care_of_2: IPAddress = field(default_factory=lambda: ip("36.8.0.51"))
    mh_radio: IPAddress = field(default_factory=lambda: ip("36.134.0.77"))
    mh_remote_care_of: IPAddress = field(default_factory=lambda: ip("36.40.0.50"))
    radio_foreign_agent: IPAddress = field(default_factory=lambda: ip("36.134.0.4"))

    ch_dept: IPAddress = field(default_factory=lambda: ip("36.8.0.20"))
    dhcp_server: IPAddress = field(default_factory=lambda: ip("36.8.0.3"))
    foreign_agent: IPAddress = field(default_factory=lambda: ip("36.8.0.4"))

    remote_router_backbone: IPAddress = field(default_factory=lambda: ip("36.200.0.2"))
    remote_router_lan: IPAddress = field(default_factory=lambda: ip("36.40.0.1"))
    ch_remote: IPAddress = field(default_factory=lambda: ip("36.40.0.9"))


@dataclass
class Testbed:
    """Handle on everything the builder created."""

    sim: Simulator
    config: Config
    addresses: Addresses
    macs: MACAllocator

    home_segment: EthernetSegment
    dept_segment: EthernetSegment
    radio_channel: RadioChannel

    router: Router
    home_agent: HomeAgentService
    home_agent_host: Host  # the router itself when collocated

    mobile: MobileHost
    mh_eth: EthernetInterface
    mh_radio: RadioInterface

    correspondent: Host
    remote_correspondent: Optional[Host] = None
    remote_router: Optional[Router] = None
    remote_segment: Optional[EthernetSegment] = None
    dhcp_server: Optional[DHCPServer] = None
    mh_dhcp: Optional[DHCPClient] = None
    foreign_agent: Optional[ForeignAgentService] = None
    radio_foreign_agent: Optional[ForeignAgentService] = None

    # ---------------------------------------------------------------- helpers

    def move_mh_cable(self, to_segment: EthernetSegment) -> None:
        """Physically re-plug the mobile host's Ethernet card."""
        self.mh_eth.detach()
        self.mh_eth.attach(to_segment)

    def unplug_ethernet(self) -> None:
        """Pull the Ethernet card entirely (leaving the office).

        The interface goes down and its routes are withdrawn, so the
        mobile host is reachable only through whatever other attachment
        it has (typically the radio).
        """
        self.mh_eth.detach()
        self.mh_eth.state = InterfaceState.DOWN
        self.mobile.ip.routes.remove_matching(interface=self.mh_eth)

    def visit_dept(self, care_of: Optional[IPAddress] = None,
                   register: bool = True,
                   on_registered: Optional[Callable[[RegistrationOutcome], None]] = None
                   ) -> IPAddress:
        """Instantly place the MH on net 36.8 with a collocated care-of.

        Moves the cable if needed, configures the static care-of address,
        and (optionally) registers.  Returns the care-of address used.
        Experiments that *measure* the transition use the handoff engines
        instead.
        """
        a = self.addresses
        chosen = care_of if care_of is not None else a.mh_dept_care_of
        if self.mh_eth.segment is not self.dept_segment:
            self.move_mh_cable(self.dept_segment)
        if self.mh_eth.state != InterfaceState.UP:
            self.mh_eth.state = InterfaceState.UP
        # Clear any home-attachment addressing before adopting the new one.
        self.mh_eth.remove_address(a.mh_home)
        self.mobile.ip.routes.remove_matching(interface=self.mh_eth)
        self.mh_eth.subnet = a.dept_net
        self.mh_eth.add_address(chosen, make_primary=True)
        self.mobile.start_visiting(self.mh_eth, chosen, a.dept_net,
                                   a.router_dept, register=register,
                                   on_registered=on_registered)
        return chosen

    def visit_remote(self, register: bool = True,
                     on_registered: Optional[Callable[[RegistrationOutcome], None]] = None
                     ) -> IPAddress:
        """Instantly place the MH on the remote network (net 36.40).

        The remote network belongs to a different administrative domain —
        this is the scenario where its router may forbid transit traffic.
        """
        if self.remote_segment is None:
            raise ValueError("testbed was built without the remote network")
        a = self.addresses
        if self.mh_eth.segment is not self.remote_segment:
            self.move_mh_cable(self.remote_segment)
        if self.mh_eth.state != InterfaceState.UP:
            self.mh_eth.state = InterfaceState.UP
        self.mh_eth.remove_address(a.mh_home)
        self.mobile.ip.routes.remove_matching(interface=self.mh_eth)
        self.mh_eth.subnet = a.remote_net
        self.mh_eth.add_address(a.mh_remote_care_of, make_primary=True)
        self.mobile.start_visiting(self.mh_eth, a.mh_remote_care_of,
                                   a.remote_net, a.remote_router_lan,
                                   register=register,
                                   on_registered=on_registered)
        return a.mh_remote_care_of

    def connect_radio(self, register: bool = False,
                      on_registered: Optional[Callable[[RegistrationOutcome], None]] = None
                      ) -> IPAddress:
        """Instantly bring the radio up on net 36.134 (static address)."""
        a = self.addresses
        if self.mh_radio.state != InterfaceState.UP:
            self.mh_radio.state = InterfaceState.UP
        self.mh_radio.subnet = a.radio_net
        self.mh_radio.add_address(a.mh_radio, make_primary=True)
        self.mh_radio._on_address_added(a.mh_radio)
        # A configured, up interface has its connected route (as ifconfig
        # would install it) — local-role traffic on the wireless subnet
        # must not detour over whatever the default route happens to be.
        if not any(entry.destination == a.radio_net
                   and entry.interface is self.mh_radio
                   for entry in self.mobile.ip.routes):
            self.mobile.ip.routes.add(RouteEntry(destination=a.radio_net,
                                                 interface=self.mh_radio))
        if register:
            self.mobile.start_visiting(self.mh_radio, a.mh_radio, a.radio_net,
                                       a.router_radio, register=True,
                                       on_registered=on_registered)
        return a.mh_radio

    def settle(self, duration: int) -> None:
        """Run the simulator forward (topology warm-up, ARP, registration)."""
        self.sim.run_for(duration)


def build_testbed(sim: Simulator, config: Config = DEFAULT_CONFIG,
                  addresses: Optional[Addresses] = None,
                  separate_home_agent: bool = False,
                  with_remote_correspondent: bool = True,
                  with_dhcp: bool = True,
                  with_foreign_agent: bool = False,
                  with_radio_foreign_agent: bool = False,
                  mh_default_mode: RoutingMode = RoutingMode.TUNNEL) -> Testbed:
    """Construct Figure 5's test-bed.

    Parameters
    ----------
    separate_home_agent:
        Put the home agent on its own host on net 36.135 instead of
        collocating it with the router (both are valid per the paper).
    with_remote_correspondent:
        Also build a correspondent "elsewhere in the Internet" behind a
        backbone hop (the paper reports similar results for it).
    with_dhcp:
        Run a DHCP server on net 36.8 and give the mobile host a client
        for its Ethernet interface.
    with_foreign_agent:
        Also run an IETF-style foreign agent on net 36.8 (baseline mode).
    mh_default_mode:
        The mobile host's default Mobile Policy Table mode (the paper's
        basic protocol tunnels; experiments flip to the triangle route).
    """
    a = addresses if addresses is not None else Addresses()
    macs = MACAllocator()

    home_segment = EthernetSegment(sim, "net-36.135", config.ethernet)
    dept_segment = EthernetSegment(sim, "net-36.8", config.ethernet)
    radio_channel = RadioChannel(sim, "net-36.134", config.radio)

    # ------------------------------------------------------------- the router
    router = Router(sim, "router", config)
    r_home = EthernetInterface(sim, "eth0.router", macs.allocate(), config)
    r_dept = EthernetInterface(sim, "eth1.router", macs.allocate(), config)
    r_radio = RadioInterface(sim, "strip0.router", config)
    router.add_interface(r_home)
    router.add_interface(r_dept)
    router.add_interface(r_radio)
    r_home.attach(home_segment)
    r_dept.attach(dept_segment)
    r_radio.attach(radio_channel)
    router.configure_interface(r_home, a.router_home, a.home_net)
    router.configure_interface(r_dept, a.router_dept, a.dept_net)
    router.configure_interface(r_radio, a.router_radio, a.radio_net)

    # ---------------------------------------------------------- the home agent
    if separate_home_agent:
        ha_host: Host = Host(sim, "home-agent", config,
                             timings=config.server_host)
        ha_iface = EthernetInterface(sim, "eth0.ha", macs.allocate(), config)
        ha_host.add_interface(ha_iface)
        ha_iface.attach(home_segment)
        ha_host.configure_interface(ha_iface, a.home_agent_host, a.home_net)
        ha_host.add_default_route(a.router_home, ha_iface)
        home_agent = HomeAgentService(ha_host, ha_iface)
    else:
        ha_host = router
        home_agent = HomeAgentService(router, r_home)

    # ---------------------------------------------------------- the mobile host
    mobile = MobileHost(sim, "mh", home_address=a.mh_home,
                        home_subnet=a.home_net,
                        home_agent=home_agent.address, config=config,
                        default_mode=mh_default_mode)
    mh_eth = EthernetInterface(sim, "eth0.mh", macs.allocate(), config)
    mh_radio = RadioInterface(sim, "strip0.mh", config)
    mobile.add_interface(mh_eth)
    mobile.add_interface(mh_radio)
    mh_eth.attach(home_segment)
    mh_radio.attach(radio_channel)
    mh_eth.state = InterfaceState.UP
    mobile.set_home(mh_eth, gateway=a.router_home)
    home_agent.serve(a.mh_home)

    # -------------------------------------------------------- the correspondent
    correspondent = Host(sim, "ch", config)
    ch_iface = EthernetInterface(sim, "eth0.ch", macs.allocate(), config)
    correspondent.add_interface(ch_iface)
    ch_iface.attach(dept_segment)
    correspondent.configure_interface(ch_iface, a.ch_dept, a.dept_net)
    correspondent.add_default_route(a.router_dept, ch_iface)

    testbed = Testbed(sim=sim, config=config, addresses=a, macs=macs,
                      home_segment=home_segment, dept_segment=dept_segment,
                      radio_channel=radio_channel, router=router,
                      home_agent=home_agent, home_agent_host=ha_host,
                      mobile=mobile, mh_eth=mh_eth, mh_radio=mh_radio,
                      correspondent=correspondent)

    # --------------------------------------------- the rest of the Internet
    if with_remote_correspondent:
        backbone = PointToPointLink(sim, "backbone", config.backbone)
        remote_router = Router(sim, "remote-router", config)
        rr_bb = PointToPointInterface(sim, "bb0.remote-router", config)
        rr_lan = EthernetInterface(sim, "eth0.remote-router", macs.allocate(),
                                   config)
        remote_router.add_interface(rr_bb)
        remote_router.add_interface(rr_lan)
        rr_bb.attach(backbone)
        remote_router.configure_interface(rr_bb, a.remote_router_backbone,
                                          a.backbone_net)
        remote_segment = EthernetSegment(sim, "net-36.40", config.ethernet)
        rr_lan.attach(remote_segment)
        remote_router.configure_interface(rr_lan, a.remote_router_lan,
                                          a.remote_net)
        remote_router.add_default_route(a.router_backbone, rr_bb)

        r_bb = PointToPointInterface(sim, "bb0.router", config)
        router.add_interface(r_bb)
        r_bb.attach(backbone)
        router.configure_interface(r_bb, a.router_backbone, a.backbone_net)
        router.ip.routes.add(RouteEntry(destination=a.remote_net,
                                        interface=r_bb,
                                        gateway=a.remote_router_backbone))

        remote_ch = Host(sim, "remote-ch", config)
        rch_iface = EthernetInterface(sim, "eth0.remote-ch", macs.allocate(),
                                      config)
        remote_ch.add_interface(rch_iface)
        rch_iface.attach(remote_segment)
        remote_ch.configure_interface(rch_iface, a.ch_remote, a.remote_net)
        remote_ch.add_default_route(a.remote_router_lan, rch_iface)
        testbed.remote_correspondent = remote_ch
        testbed.remote_router = remote_router
        testbed.remote_segment = remote_segment

    if with_dhcp:
        dhcp_host = Host(sim, "dhcpd", config)
        dhcp_iface = EthernetInterface(sim, "eth0.dhcpd", macs.allocate(),
                                       config)
        dhcp_host.add_interface(dhcp_iface)
        dhcp_iface.attach(dept_segment)
        dhcp_host.configure_interface(dhcp_iface, a.dhcp_server, a.dept_net)
        dhcp_host.add_default_route(a.router_dept, dhcp_iface)
        testbed.dhcp_server = DHCPServer(dhcp_host, dhcp_iface, a.dept_net,
                                         first_host=100, last_host=199,
                                         gateway=a.router_dept)
        testbed.mh_dhcp = DHCPClient(mobile, mh_eth, client_id="mh")

    if with_foreign_agent:
        fa_host = Host(sim, "fa", config, timings=config.server_host)
        fa_iface = EthernetInterface(sim, "eth0.fa", macs.allocate(), config)
        fa_host.add_interface(fa_iface)
        fa_iface.attach(dept_segment)
        fa_host.configure_interface(fa_iface, a.foreign_agent, a.dept_net)
        fa_host.add_default_route(a.router_dept, fa_iface)
        testbed.foreign_agent = ForeignAgentService(fa_host, fa_iface)

    if with_radio_foreign_agent:
        rfa_host = Host(sim, "fa-radio", config, timings=config.server_host)
        rfa_iface = RadioInterface(sim, "strip0.fa", config)
        rfa_host.add_interface(rfa_iface)
        rfa_iface.attach(radio_channel)
        rfa_host.configure_interface(rfa_iface, a.radio_foreign_agent,
                                     a.radio_net)
        rfa_host.add_default_route(a.router_radio, rfa_iface)
        testbed.radio_foreign_agent = ForeignAgentService(rfa_host, rfa_iface)

    return testbed
