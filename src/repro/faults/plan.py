"""Fault plans: deterministic, seed-addressed failure schedules.

A :class:`FaultPlan` is a declarative list of scheduled fault events —
link loss bursts, Gilbert-Elliott loss phases, interface flaps, home-agent
restarts, DHCP outages, registration-reply drop windows.  Plans are plain
frozen dataclasses referencing components **by name**, so they pickle
cleanly into :class:`~repro.parallel.Trial` parameters and cross process
boundaries unchanged; the :class:`~repro.faults.inject.FaultInjector`
resolves names against a live testbed and arms the schedule.

Determinism contract: a plan contains no randomness of its own.  Where a
fault *behaves* randomly (loss probabilities, Gilbert-Elliott state
transitions) the injector draws from dedicated named RNG streams derived
from the simulator's master seed, so the same ``(seed, plan)`` pair
always injects the identical fault sequence — serially or sharded.  An
empty plan arms nothing, consumes no randomness, and creates no metrics,
keeping fault-free runs byte-identical to a build without this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union


@dataclass(frozen=True)
class LossBurst:
    """Drop frames on *link* with ``loss_rate`` during a window."""

    at: int
    link: str
    duration: int
    loss_rate: float = 1.0

    kind = "loss_burst"


@dataclass(frozen=True)
class GilbertElliottPhase:
    """Two-state bursty loss on *link* during a window.

    The classic Gilbert-Elliott channel: each frame advances a two-state
    Markov chain (good/bad) with transition probabilities ``p_good_bad``
    and ``p_bad_good``, then drops with the state's loss probability.
    The chain starts in the good state at window entry.
    """

    at: int
    link: str
    duration: int
    p_good_bad: float
    p_bad_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    kind = "gilbert_elliott"


@dataclass(frozen=True)
class InterfaceFlap:
    """Take *interface* down at ``at`` and bring it back ``down_for`` later."""

    at: int
    interface: str
    down_for: int

    kind = "interface_flap"


@dataclass(frozen=True)
class HomeAgentRestart:
    """Crash a home agent at ``at``, losing all bindings; recover later.

    ``agent`` selects a named replica on a
    :class:`~repro.core.binding_shard.BindingShardPlane` (the injector
    must then be built with a plane); the default empty string targets
    the topology's single home agent, exactly as before.
    """

    at: int
    down_for: int
    agent: str = ""

    kind = "home_agent_restart"


@dataclass(frozen=True)
class ReplicaJoin:
    """Add a spare replica named ``agent`` to the binding-shard plane.

    A crash-join: the joiner arrives empty and wins its arcs' bindings
    back through ordinary re-registration (the injector must be built
    with a plane whose ``spares`` map knows the name).
    """

    at: int
    agent: str

    kind = "replica_join"


@dataclass(frozen=True)
class ReplicaDrain:
    """Gracefully drain replica ``agent`` out of the plane at ``at``.

    Unlike a crash, a drain re-serves the leaving replica's addresses on
    their new owners and hands over its live bindings *before* departure,
    so no re-registration storm follows.
    """

    at: int
    agent: str

    kind = "replica_drain"


@dataclass(frozen=True)
class PlanePartition:
    """Make the named replica subset unreachable for ``duration``.

    The partitioned replicas are *not* crashed: their binding state
    survives and is stale by the time the partition heals — the nastier
    consistency case, which the plane reconciles at heal time.
    """

    at: int
    duration: int
    agents: Tuple[str, ...]

    kind = "plane_partition"


@dataclass(frozen=True)
class DhcpOutage:
    """Take the DHCP server offline for a window (requests are dropped)."""

    at: int
    duration: int

    kind = "dhcp_outage"


@dataclass(frozen=True)
class ReplyDropWindow:
    """Drop every registration reply the home agent emits in a window."""

    at: int
    duration: int

    kind = "reply_drop"


FaultEvent = Union[LossBurst, GilbertElliottPhase, InterfaceFlap,
                   HomeAgentRestart, ReplicaJoin, ReplicaDrain,
                   PlanePartition, DhcpOutage, ReplyDropWindow]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of fault events."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-fault plan (arming it is a no-op)."""
        return cls(events=())

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        """Build a plan from events in any order; stored sorted by time."""
        return cls(events=tuple(sorted(events, key=lambda event: event.at)))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def describe(self) -> str:
        """One line per event, for logs and reports."""
        if not self.events:
            return "(no faults)"
        lines = []
        for event in self.events:
            fields = {name: value for name, value in vars(event).items()
                      if name != "at"}
            detail = ", ".join(f"{name}={value}"
                               for name, value in fields.items())
            lines.append(f"  t={event.at / 1e9:.3f}s {event.kind}: {detail}")
        return "\n".join(lines)
