"""The plane invariant auditor: machine-checked binding consistency.

Chaos experiments used to eyeball their survival numbers; the
:class:`PlaneAuditor` turns the binding-shard plane's consistency
contract into *gating* checks.  It subscribes to the simulator trace
(:meth:`repro.sim.trace.Trace.subscribe`) and replays plane/home-agent
records into its own view of who holds which binding, continuously
verifying three invariants:

1. **No double ownership** — at no point do two live, reachable replicas
   both hold a binding for the same home address.  (Unreachable replicas
   are exempt while partitioned — that staleness is expected — and must
   be reconciled by the time the partition heals.)
2. **Bounded convergence** — every binding disturbed by a fault (crash,
   partition, membership change) is re-won at a reachable replica within
   :attr:`~repro.config.FleetTimings.convergence_deadline`.
3. **Takeover consistency** — every takeover the plane counts coincides
   with its primary actually being unreachable, and the plane's
   ``takeovers`` total matches the takeover records observed.

Violations raise :class:`AuditViolation` carrying the offending trace
window, so a failing chaos cell points straight at the records around
the inconsistency instead of at a summary number.

The auditor expects real :class:`~repro.core.home_agent.HomeAgentService`
replicas (it correlates their ``host=`` trace fields with the plane's
replica names); duck-typed fakes that emit no trace records are outside
its contract.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.config import Config

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.binding_shard import BindingShardPlane
    from repro.sim.trace import TraceRecord


class AuditViolation(AssertionError):
    """One or more plane invariants failed; carries the trace window.

    ``violations`` is the list of human-readable findings;``window`` the
    last few trace records (time, category, event, fields) preceding the
    first finding — copied, never the pooled records themselves.
    """

    def __init__(self, violations: List[str],
                 window: List[Tuple[int, str, str, dict]]) -> None:
        self.violations = list(violations)
        self.window = list(window)
        lines = "\n".join(f"  - {violation}" for violation in self.violations)
        trail = "\n".join(
            f"    t={time / 1e9:.6f}s {category}/{event} {fields}"
            for time, category, event, fields in self.window[-12:])
        super().__init__(
            f"{len(self.violations)} plane invariant violation(s):\n"
            f"{lines}\n  trace window:\n{trail}")


class PlaneAuditor:
    """Continuously audit a :class:`BindingShardPlane` via its trace."""

    def __init__(self, plane: "BindingShardPlane", *,
                 config: Optional[Config] = None,
                 window: int = 64) -> None:
        self.plane = plane
        self.sim = plane.sim
        self.config = config if config is not None else plane.config
        self.deadline = self.config.fleet.convergence_deadline
        self.violations: List[str] = []
        self._window: Deque[Tuple[int, str, str, dict]] = deque(maxlen=window)
        #: Who holds a binding for each address: str(home) -> {replica}.
        self._holdings: Dict[str, Set[str]] = {}
        self._members: Set[str] = set(plane.agents)
        self._down: Set[str] = set()
        self._partitioned: Set[str] = set(plane.partitioned_agents())
        #: Re-win deadlines for disturbed addresses: str(home) -> time.
        self._pending: Dict[str, int] = {}
        self._takeover_records = 0
        self._takeover_base = plane.takeovers
        self._host_to_replica: Dict[str, str] = {}
        self._map_hosts()
        self._attached = False

    # -------------------------------------------------------------- lifecycle

    def attach(self) -> None:
        """Start auditing (idempotent)."""
        if not self._attached:
            self._attached = True
            self.sim.trace.subscribe(self._on_record)

    def detach(self) -> None:
        """Stop auditing (the view freezes where it is)."""
        if self._attached:
            self._attached = False
            self.sim.trace.unsubscribe(self._on_record)

    def finish(self, raise_on_violation: bool = True) -> List[str]:
        """End-of-run checks; optionally raise :class:`AuditViolation`.

        Expires every outstanding convergence deadline against the
        current simulated time and cross-checks the plane's takeover
        counter against the takeover records observed.
        """
        self._expire_pending(self.sim.now)
        counted = self.plane.takeovers - self._takeover_base
        if counted != self._takeover_records:
            self._violation(
                f"takeover counter inconsistent: plane counts {counted}, "
                f"trace shows {self._takeover_records} takeover record(s)")
        if self.violations and raise_on_violation:
            raise AuditViolation(self.violations, list(self._window))
        return list(self.violations)

    # ------------------------------------------------------------- the replay

    def _on_record(self, record: "TraceRecord") -> None:
        category = record.category
        if category not in ("binding", "binding_shard", "home_agent"):
            return
        # Records are pooled: copy what the window keeps.
        fields = dict(record.fields)
        self._window.append((record.time, category, record.event, fields))
        self._expire_pending(record.time)
        handler = getattr(self, f"_on_{category}_{record.event}", None)
        if handler is not None:
            handler(record.time, fields)

    # --- binding table movements

    def _on_binding_registered(self, time: int, fields: dict) -> None:
        self._binding_won(time, fields)

    def _on_binding_adopted(self, time: int, fields: dict) -> None:
        self._binding_won(time, fields)

    def _binding_won(self, time: int, fields: dict) -> None:
        name = self._replica_of(fields.get("agent", ""))
        if name is None or name not in self._members:
            return  # a standalone HA outside the plane
        home = fields["home_address"]
        # Only a *reachable* replica's win satisfies a convergence
        # deadline: a partitioned agent registering a pre-partition
        # in-flight request does not make the binding servable.
        if self._reachable(name):
            self._pending.pop(home, None)
        holders = self._holdings.setdefault(home, set())
        holders.add(name)
        others = [other for other in holders
                  if other != name and self._reachable(other)]
        if others:
            self._violation(
                f"home address {home} double-owned: registered at {name} "
                f"while live replica(s) {sorted(others)} still hold it")

    def _on_binding_deregistered(self, time: int, fields: dict) -> None:
        self._binding_lost(fields)

    def _on_binding_expired(self, time: int, fields: dict) -> None:
        self._binding_lost(fields)

    def _on_binding_flushed(self, time: int, fields: dict) -> None:
        self._binding_lost(fields)

    def _binding_lost(self, fields: dict) -> None:
        name = self._replica_of(fields.get("agent", ""))
        if name is None:
            return
        holders = self._holdings.get(fields["home_address"])
        if holders is not None:
            holders.discard(name)

    # --- home-agent faults

    def _on_home_agent_crash(self, time: int, fields: dict) -> None:
        name = self._replica_of(fields.get("host", ""))
        if name is None or name not in self._members:
            return
        self._down.add(name)
        for home, holders in self._holdings.items():
            if name in holders:
                holders.discard(name)  # crash loses the state
                if not any(self._reachable(other) for other in holders):
                    self._disturb(home, time)

    def _on_home_agent_recovered(self, time: int, fields: dict) -> None:
        name = self._replica_of(fields.get("host", ""))
        if name is not None:
            self._down.discard(name)

    # --- plane membership and partitions

    def _on_binding_shard_takeover(self, time: int, fields: dict) -> None:
        self._takeover_records += 1
        primary = fields.get("primary", "")
        if (primary in self._members and primary not in self._down
                and primary not in self._partitioned):
            self._violation(
                f"takeover from {primary} to {fields.get('takeover')!r} "
                f"at t={time / 1e9:.6f}s while the primary was live and "
                "reachable")

    def _on_binding_shard_partition(self, time: int, fields: dict) -> None:
        names = set(fields.get("agents", "").split(","))
        self._partitioned.update(names)
        for home, holders in self._holdings.items():
            if holders and not any(self._reachable(other)
                                   for other in holders):
                self._disturb(home, time)

    def _on_binding_shard_healed(self, time: int, fields: dict) -> None:
        names = set(fields.get("agents", "").split(","))
        self._partitioned.difference_update(names)
        # Post-heal sweep: reconciliation must have left each address with
        # at most one reachable holder — stale survivors are the bug this
        # partition fault exists to catch.
        for home, holders in sorted(self._holdings.items()):
            reachable = sorted(other for other in holders
                               if self._reachable(other))
            if len(reachable) > 1:
                self._violation(
                    f"home address {home} still double-owned after heal of "
                    f"{sorted(names)}: reachable holders {reachable}")

    def _on_binding_shard_join(self, time: int, fields: dict) -> None:
        name = fields.get("agent", "")
        self._members.add(name)
        self._map_hosts()
        # Addresses whose primary moved onto the (empty) joiner must be
        # re-won there by the next renewal.
        for home, holders in self._holdings.items():
            try:
                primary = self.plane.owners(home)[0]
            except LookupError:  # pragma: no cover - plane cannot be empty
                continue
            if primary == name and name not in holders:
                self._disturb(home, time)

    def _on_binding_shard_drain(self, time: int, fields: dict) -> None:
        name = fields.get("agent", "")
        self._members.discard(name)
        self._down.discard(name)
        self._partitioned.discard(name)
        for home, holders in self._holdings.items():
            if name in holders:
                holders.discard(name)
                if not any(self._reachable(other) for other in holders):
                    # Cleared synchronously by the hand-over's "adopted"
                    # records; anything left must be re-won by renewal.
                    self._disturb(home, time)

    # ------------------------------------------------------------- internals

    def _reachable(self, name: str) -> bool:
        return (name in self._members and name not in self._down
                and name not in self._partitioned)

    def _disturb(self, home: str, time: int) -> None:
        """Arm (or keep the earlier of) a re-win deadline for *home*."""
        deadline = time + self.deadline
        existing = self._pending.get(home)
        if existing is None or deadline < existing:
            self._pending[home] = deadline

    def _expire_pending(self, now: int) -> None:
        expired = [home for home, deadline in self._pending.items()
                   if deadline < now]
        for home in sorted(expired):
            deadline = self._pending.pop(home)
            self._violation(
                f"binding for {home} not re-won by its convergence "
                f"deadline t={deadline / 1e9:.6f}s "
                f"(deadline {self.deadline / 1e6:.0f} ms)")

    def _violation(self, message: str) -> None:
        self.violations.append(message)

    def _map_hosts(self) -> None:
        for name, agent in list(self.plane.agents.items()) + \
                list(self.plane.spares.items()):
            host = getattr(agent, "host", None)
            hostname = getattr(host, "name", name)
            self._host_to_replica[hostname] = name

    def _replica_of(self, hostname: str) -> Optional[str]:
        return self._host_to_replica.get(hostname)
