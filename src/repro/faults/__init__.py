"""Deterministic fault injection (``repro.faults``).

Declarative :class:`FaultPlan` schedules — link loss bursts,
Gilbert-Elliott loss phases, interface flaps, home-agent restarts with
state loss, DHCP outages, registration-reply drops — armed against a
live testbed by :class:`FaultInjector`.  Same seed + same plan injects
the identical fault sequence, serially or sharded across workers; see
``docs/ROBUSTNESS.md`` for the fault model and recovery semantics.
"""

from repro.faults.auditor import AuditViolation, PlaneAuditor
from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    DhcpOutage,
    FaultEvent,
    FaultPlan,
    GilbertElliottPhase,
    HomeAgentRestart,
    InterfaceFlap,
    LossBurst,
    PlanePartition,
    ReplicaDrain,
    ReplicaJoin,
    ReplyDropWindow,
)

__all__ = [
    "AuditViolation",
    "FaultInjector",
    "FaultPlan",
    "FaultEvent",
    "LossBurst",
    "GilbertElliottPhase",
    "InterfaceFlap",
    "HomeAgentRestart",
    "ReplicaJoin",
    "ReplicaDrain",
    "PlanePartition",
    "DhcpOutage",
    "PlaneAuditor",
    "ReplyDropWindow",
]
