"""The fault injector: arm a :class:`~repro.faults.plan.FaultPlan`.

The injector resolves the plan's component names against a live topology
and schedules each event through the simulator, so faults participate in
the deterministic event order like any other callback.  Injection sites:

* **links** — every :class:`~repro.net.link.Link` carries a
  ``fault_hook`` consulted before its own loss model; the injector
  installs one hook per targeted link that consults the active window
  (loss bursts and Gilbert-Elliott phases).
* **interfaces** — :meth:`~repro.net.interface.NetworkInterface.flap`
  models a carrier drop with the device's real down/up delays.
* **home agent** — :meth:`~repro.core.home_agent.HomeAgentService.crash`
  loses all bindings (state-loss restart); ``reply_filter`` drops
  registration replies during reply-drop windows.
* **DHCP server** — the ``online`` flag silences the server.

Randomized fault behaviour draws from per-link ``fault-link:<name>``
RNG streams, never from the link's own loss stream, so arming a plan
does not perturb the background loss sequence — and an empty plan arms
nothing at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.faults.plan import (
    DhcpOutage,
    FaultPlan,
    GilbertElliottPhase,
    HomeAgentRestart,
    InterfaceFlap,
    LossBurst,
    PlanePartition,
    ReplicaDrain,
    ReplicaJoin,
    ReplyDropWindow,
)
from repro.sim.engine import Simulator
from repro.sim.randomness import bernoulli

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.binding_shard import BindingShardPlane
    from repro.core.home_agent import HomeAgentService
    from repro.net.dhcp import DHCPServer
    from repro.net.interface import NetworkInterface
    from repro.net.link import Link


class _LossWindow:
    """A flat per-frame loss probability between ``start`` and ``end``."""

    __slots__ = ("start", "end", "_rng", "_loss_rate")

    def __init__(self, event: LossBurst, rng) -> None:
        self.start = event.at
        self.end = event.at + event.duration
        self._rng = rng
        self._loss_rate = event.loss_rate

    def decide(self) -> bool:
        return bernoulli(self._rng, self._loss_rate)


class _GilbertElliottWindow:
    """Two-state Markov loss between ``start`` and ``end``."""

    __slots__ = ("start", "end", "_rng", "_event", "_bad")

    def __init__(self, event: GilbertElliottPhase, rng) -> None:
        self.start = event.at
        self.end = event.at + event.duration
        self._rng = rng
        self._event = event
        self._bad = False

    def decide(self) -> bool:
        event = self._event
        if self._bad:
            if bernoulli(self._rng, event.p_bad_good):
                self._bad = False
        else:
            if bernoulli(self._rng, event.p_good_bad):
                self._bad = True
        loss = event.loss_bad if self._bad else event.loss_good
        return bernoulli(self._rng, loss)


class FaultInjector:
    """Resolves a plan against live components and arms its schedule."""

    def __init__(self, sim: Simulator, plan: FaultPlan,
                 links: Optional[Dict[str, "Link"]] = None,
                 interfaces: Optional[Dict[str, "NetworkInterface"]] = None,
                 home_agent: Optional["HomeAgentService"] = None,
                 dhcp_server: Optional["DHCPServer"] = None,
                 plane: Optional["BindingShardPlane"] = None) -> None:
        self.sim = sim
        self.plan = plan
        self.links = links or {}
        self.interfaces = interfaces or {}
        self.home_agent = home_agent
        self.dhcp_server = dhcp_server
        self.plane = plane
        #: Activations so far, by event kind (reports read this).
        self.injected: Dict[str, int] = {}
        self._armed = False
        self._link_windows: Dict[str, List[object]] = {}
        self._reply_drop_windows: List[ReplyDropWindow] = []

    @classmethod
    def for_testbed(cls, testbed, plan: FaultPlan) -> "FaultInjector":
        """Wire an injector to everything a standard testbed exposes."""
        links: Dict[str, "Link"] = {}
        for link in (testbed.home_segment, testbed.dept_segment,
                     testbed.radio_channel):
            links[link.name] = link
        if testbed.remote_segment is not None:
            links[testbed.remote_segment.name] = testbed.remote_segment
        interfaces: Dict[str, "NetworkInterface"] = {
            iface.name: iface for iface in testbed.mobile.interfaces}
        return cls(testbed.sim, plan, links=links, interfaces=interfaces,
                   home_agent=testbed.home_agent,
                   dhcp_server=testbed.dhcp_server)

    @classmethod
    def for_plane(cls, plane: "BindingShardPlane",
                  plan: FaultPlan) -> "FaultInjector":
        """Wire an injector to a sharded home-agent plane.

        :class:`~repro.faults.plan.HomeAgentRestart` events carrying an
        ``agent`` name crash that replica through the plane (and its
        takeover path); other fault kinds need the component maps of the
        full constructor.
        """
        return cls(plane.sim, plan, plane=plane)

    # ---------------------------------------------------------------- arming

    def arm(self) -> None:
        """Schedule every event in the plan (idempotent per injector)."""
        if self._armed:
            raise RuntimeError("fault plan is already armed")
        self._armed = True
        for event in self.plan.events:
            self._arm_event(event)
        for name, windows in self._link_windows.items():
            self._install_link_hook(self._resolve_link(name), windows)
        if self._reply_drop_windows:
            self._install_reply_filter()

    def _arm_event(self, event) -> None:
        if isinstance(event, LossBurst):
            rng = self._link_rng(event.link)
            self._queue_window(event.link, _LossWindow(event, rng))
            self._schedule_activation(event, link=event.link)
        elif isinstance(event, GilbertElliottPhase):
            rng = self._link_rng(event.link)
            self._queue_window(event.link, _GilbertElliottWindow(event, rng))
            self._schedule_activation(event, link=event.link)
        elif isinstance(event, InterfaceFlap):
            interface = self._resolve_interface(event.interface)
            self.sim.call_at(
                event.at,
                lambda: (self._activate(event, interface=event.interface),
                         interface.flap(event.down_for)),
                label="fault:flap")
        elif isinstance(event, HomeAgentRestart):
            if event.agent:
                plane = self._require(self.plane, "binding-shard plane", event)
                # Spares are acceptable at arm time: a plan may join a
                # spare and crash it later; the plane still rejects a
                # crash of a non-member when the event actually fires.
                self._check_plane_member(plane, event, event.agent,
                                         "restarts", allow_spares=True)
                self.sim.call_at(
                    event.at,
                    lambda: (self._activate(event, agent=event.agent),
                             plane.crash(event.agent, event.down_for)),
                    label="fault:ha-restart")
            else:
                agent = self._require(self.home_agent, "home agent", event)
                self.sim.call_at(
                    event.at,
                    lambda: (self._activate(event),
                             agent.crash(event.down_for)),
                    label="fault:ha-restart")
        elif isinstance(event, ReplicaJoin):
            plane = self._require(self.plane, "binding-shard plane", event)
            self._check_plane_member(plane, event, event.agent, "joins",
                                     allow_spares=True)
            self.sim.call_at(
                event.at,
                lambda: (self._activate(event, agent=event.agent),
                         plane.add_replica(event.agent)),
                label="fault:replica-join")
        elif isinstance(event, ReplicaDrain):
            plane = self._require(self.plane, "binding-shard plane", event)
            self._check_plane_member(plane, event, event.agent, "drains",
                                     allow_spares=True)
            self.sim.call_at(
                event.at,
                lambda: (self._activate(event, agent=event.agent),
                         plane.drain_replica(event.agent)),
                label="fault:replica-drain")
        elif isinstance(event, PlanePartition):
            plane = self._require(self.plane, "binding-shard plane", event)
            for name in event.agents:
                self._check_plane_member(plane, event, name, "partitions",
                                         allow_spares=True)
            self.sim.call_at(
                event.at,
                lambda: (self._activate(event,
                                        agents=",".join(event.agents)),
                         plane.partition(event.agents, event.duration)),
                label="fault:plane-partition")
        elif isinstance(event, DhcpOutage):
            server = self._require(self.dhcp_server, "DHCP server", event)

            def outage_start() -> None:
                self._activate(event)
                server.online = False

            def outage_end() -> None:
                server.online = True
                self.sim.trace.emit("fault", "dhcp_restored",
                                    server=server.host.name)

            self.sim.call_at(event.at, outage_start, label="fault:dhcp-out")
            self.sim.call_at(event.at + event.duration, outage_end,
                             label="fault:dhcp-restore")
        elif isinstance(event, ReplyDropWindow):
            self._require(self.home_agent, "home agent", event)
            self._reply_drop_windows.append(event)
            self._schedule_activation(event)
        else:  # pragma: no cover - plan type is closed
            raise TypeError(f"unknown fault event {event!r}")

    # ----------------------------------------------------------- link faults

    def _queue_window(self, link_name: str, window) -> None:
        self._resolve_link(link_name)  # fail fast on unknown names
        self._link_windows.setdefault(link_name, []).append(window)

    def _install_link_hook(self, link: "Link", windows: List) -> None:
        if link.fault_hook is not None:
            raise RuntimeError(f"link {link.name} already has a fault hook")
        sim = self.sim

        def hook() -> bool:
            now = sim.now
            for window in windows:
                if window.start <= now < window.end:
                    return window.decide()
            return False

        link.fault_hook = hook

    def _link_rng(self, link_name: str):
        """A per-link stream separate from the link's own loss stream."""
        return self.sim.rng(f"fault-link:{link_name}")

    # ---------------------------------------------------------- reply drops

    def _install_reply_filter(self) -> None:
        agent = self.home_agent
        assert agent is not None
        if agent.reply_filter is not None:
            raise RuntimeError("home agent already has a reply filter")
        sim = self.sim
        windows = list(self._reply_drop_windows)

        def allow(reply) -> bool:
            now = sim.now
            for window in windows:
                if window.at <= now < window.at + window.duration:
                    return False
            return True

        agent.reply_filter = allow

    # ------------------------------------------------------------ accounting

    def _schedule_activation(self, event, **fields) -> None:
        self.sim.call_at(event.at,
                         lambda: self._activate(event, **fields),
                         label=f"fault:{event.kind}")

    def _activate(self, event, **fields) -> None:
        """Count and trace one fault firing (lazily creates its counter)."""
        self.injected[event.kind] = self.injected.get(event.kind, 0) + 1
        counter = self.sim.metrics.counter("faults", "injected",
                                           kind=event.kind)
        counter.value += 1
        self.sim.trace.emit("fault", event.kind, **fields)

    def total_injected(self) -> int:
        """Total fault activations so far."""
        return sum(self.injected.values())

    # ------------------------------------------------------------ resolution

    def _resolve_link(self, name: str) -> "Link":
        link = self.links.get(name)
        if link is None:
            raise ValueError(f"fault plan references unknown link {name!r}; "
                             f"known: {sorted(self.links)}")
        return link

    def _resolve_interface(self, name: str) -> "NetworkInterface":
        interface = self.interfaces.get(name)
        if interface is None:
            raise ValueError(
                f"fault plan references unknown interface {name!r}; "
                f"known: {sorted(self.interfaces)}")
        return interface

    def _require(self, component, description: str, event):
        if component is None:
            raise ValueError(
                f"fault plan schedules a {event.kind} event but the "
                f"topology has no {description}")
        return component

    @staticmethod
    def _check_plane_member(plane, event, name: str, verb: str,
                            allow_spares: bool = False) -> None:
        """Arm-time validation: the plan must name a replica the plane knows.

        Membership events may reference spares (a join promotes one; a
        drain or partition may target a replica a preceding join adds),
        so their names check against members *and* spares.
        """
        known = set(plane.agents)
        if allow_spares:
            known |= set(plane.spares)
        if name not in known:
            raise ValueError(
                f"fault plan {verb} unknown agent {name!r}; "
                f"known replicas: {sorted(plane.agents)}, "
                f"spares: {sorted(plane.spares)}")
