"""Exporters: JSONL trace dumps, flat snapshots, human-readable reports.

Three consumers, three formats:

* **Machines replaying a run** read the trace as JSON Lines
  (:func:`trace_to_jsonl` / :func:`write_trace_jsonl`) — one record per
  line, stable field order, greppable.
* **Tests and diff tools** read the flat snapshot
  (:func:`snapshot` — just the registry's own ``snapshot()``, re-exported
  here for symmetry) and its canonical serialization
  (:func:`snapshot_to_json`), which is byte-identical across same-seed
  runs.
* **Humans** read :func:`format_report`, a per-component table printed by
  ``python -m repro.experiments --metrics``.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.trace import Trace, TraceRecord


# ------------------------------------------------------------------ trace dump

def trace_record_to_dict(record: TraceRecord) -> Dict[str, object]:
    """One trace record as a JSON-ready dict with stable field order."""
    out: Dict[str, object] = {
        "time": record.time,
        "category": record.category,
        "event": record.event,
    }
    # Field values may be rich objects (IPv4Address, enums); stringify
    # anything json can't take natively so the dump never raises.
    fields = {}
    for key in sorted(record.fields):
        value = record.fields[key]
        if isinstance(value, (int, float, str, bool)) or value is None:
            fields[key] = value
        else:
            fields[key] = str(value)
    out["fields"] = fields
    return out


def trace_to_jsonl(trace: Trace) -> str:
    """The whole trace as JSON Lines (one record per line)."""
    return "".join(json.dumps(trace_record_to_dict(record),
                              separators=(",", ":")) + "\n"
                   for record in trace.records)


def write_trace_jsonl(trace: Trace, stream: IO[str]) -> int:
    """Write the trace to *stream* as JSONL; returns the record count."""
    count = 0
    for record in trace.records:
        stream.write(json.dumps(trace_record_to_dict(record),
                                separators=(",", ":")) + "\n")
        count += 1
    return count


# ------------------------------------------------------------------- snapshot

def snapshot(registry: MetricsRegistry) -> Dict[str, object]:
    """The registry's flat, deterministically ordered snapshot dict."""
    return registry.snapshot()


def snapshot_to_json(registry: MetricsRegistry) -> str:
    """Canonical JSON serialization — byte-identical for same-seed runs."""
    return json.dumps(registry.snapshot(), sort_keys=True,
                      separators=(",", ":"))


# --------------------------------------------------------------- human report

def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_report(registry: MetricsRegistry, title: str = "metrics") -> str:
    """A per-component, human-readable report of every metric.

    Counters and gauges print one line each; histograms print count, mean,
    min/max and the non-empty buckets.  Components and metric keys are
    sorted, so the report is deterministic too.
    """
    by_component: Dict[str, List] = {}
    for metric in registry:
        by_component.setdefault(metric.component, []).append(metric)

    lines: List[str] = [f"=== {title} ==="]
    if not by_component:
        lines.append("  (no metrics recorded)")
        return "\n".join(lines)

    for component in sorted(by_component):
        lines.append(f"[{component}]")
        for metric in sorted(by_component[component], key=lambda m: m.key):
            label = metric.key[len(component) + 1:]  # strip "component/"
            if isinstance(metric, Counter):
                lines.append(f"  {label:<44} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"  {label:<44} {_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(
                    f"  {label:<44} count={metric.count}"
                    f" mean={metric.mean:.3f}"
                    f" min={_format_value(metric.minimum) if metric.minimum is not None else '-'}"
                    f" max={_format_value(metric.maximum) if metric.maximum is not None else '-'}")
                if metric.count:
                    buckets = " ".join(
                        f"{name}:{value}"
                        for name, value in metric.cumulative_buckets()
                        if value)
                    lines.append(f"  {'':<4}buckets {buckets}")
    return "\n".join(lines)


def format_reports(registries: Iterable[MetricsRegistry],
                   title: str = "metrics") -> str:
    """Merge several registries and report the combination."""
    return format_report(MetricsRegistry.merged(registries), title=title)


def format_policy_table(table) -> str:
    """One Mobile Policy Table as a human-readable block.

    Renders the table's :meth:`~repro.core.policy.MobilePolicyTable.snapshot`
    — owner, default mode, and every entry with its origin — in the style
    of :func:`format_report`, for the ``--metrics`` report.
    """
    snap = table.snapshot()
    owner = snap["owner"] or "(unowned)"
    lines: List[str] = [f"[policy table: {owner}]",
                        f"  {'default':<44} {snap['default_mode']}"]
    if not snap["entries"]:
        lines.append("  (no entries)")
        return "\n".join(lines)
    for entry in snap["entries"]:
        label = f"{entry['destination']} -> {entry['mode']}"
        lines.append(f"  {label:<44} origin={entry['origin']}")
    return "\n".join(lines)


def format_policy_tables(tables: Iterable) -> str:
    """Every captured policy table, one block each."""
    blocks = [format_policy_table(table) for table in tables]
    return "\n".join(blocks)
