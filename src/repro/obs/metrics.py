"""The metrics registry: counters, gauges and fixed-bucket histograms.

The paper's method is "instrument the kernel with timestamps and
post-process off-line" (Section 6).  The :class:`~repro.sim.trace.Trace`
stream is the timestamp half; this module is the aggregation half — cheap
monotonic counters and histograms the protocol code bumps inline, so a run
can explain *where* its time and packets went without anyone replaying the
trace.

Design rules (they keep runs reproducible):

* Metrics are **passive**.  Incrementing a counter never schedules an
  event, draws randomness, or otherwise perturbs the simulation; a run
  with nobody reading the metrics behaves byte-for-byte like one without.
* Metrics are keyed by ``component/name`` plus a sorted label dict, so
  two components (or two interfaces of one component) never collide.
* :meth:`MetricsRegistry.snapshot` is a flat dict with deterministically
  ordered keys: two runs with the same seed serialize identically.
* The registry is owned by the :class:`~repro.sim.engine.Simulator`
  (exactly like the trace), so concurrent simulations stay isolated.

Naming convention: ``component`` is the subsystem (``link``, ``arp``,
``ip``, ``tcp``, ``tunnel``, ``policy``, ``registration``, ``handoff``,
``engine``), ``name`` is a snake_case quantity with the unit suffixed when
it is not a plain count (``tx_bytes``, ``latency_ms``), and labels carry
the instance (``iface=eth0.mh``, ``host=router``, ``kind=cold-switch``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: A metric's identity: (component, name, sorted label items).
MetricKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]

#: Default bucket upper edges for latency histograms, in milliseconds.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)


def _labels_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def format_key(component: str, name: str,
               labels: Tuple[Tuple[str, str], ...]) -> str:
    """Render one metric's flat-dict key, e.g. ``tcp/retransmits{host=mh}``."""
    base = f"{component}/{name}"
    if not labels:
        return base
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{base}{{{rendered}}}"


class Metric:
    """Common identity bookkeeping for all metric kinds.

    Slotted (as are all subclasses): registries hold thousands of counters
    in big runs and are pickled across process boundaries by the parallel
    runner, so the per-instance ``__dict__`` is pure overhead.
    """

    kind = "metric"
    __slots__ = ("component", "name", "labels")

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...]) -> None:
        self.component = component
        self.name = name
        self.labels = labels

    @property
    def key(self) -> str:
        """The flat snapshot key for this metric."""
        return format_key(self.component, self.name, self.labels)

    def snapshot_items(self) -> List[Tuple[str, object]]:
        """(key, value) pairs this metric contributes to a snapshot."""
        raise NotImplementedError

    def merge_from(self, other: "Metric") -> None:
        """Fold another instance of the same metric into this one."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonic count of occurrences (packets, drops, retransmits)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...]) -> None:
        super().__init__(component, name, labels)
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease "
                             f"(inc({amount}))")
        self.value += amount

    def snapshot_items(self) -> List[Tuple[str, object]]:
        return [(self.key, self.value)]

    def merge_from(self, other: "Metric") -> None:
        assert isinstance(other, Counter)
        self.value += other.value


class Gauge(Metric):
    """A point-in-time value that can move both ways (queue depth)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...]) -> None:
        super().__init__(component, name, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if it is higher (high-water mark)."""
        if value > self.value:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the gauge by *amount* (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Decrease the gauge by *amount*."""
        self.value -= amount

    def snapshot_items(self) -> List[Tuple[str, object]]:
        return [(self.key, self.value)]

    def merge_from(self, other: "Metric") -> None:
        assert isinstance(other, Gauge)
        # Merging simulations: the high-water mark is the useful combination
        # for every gauge this codebase exports (depth maxima).
        self.value = max(self.value, other.value)


class Histogram(Metric):
    """Fixed upper-edge buckets plus count/sum/min/max.

    Buckets are cumulative-style on export (``le_<edge>`` counts all
    observations at or below the edge; ``le_inf`` equals ``count``), which
    makes snapshots mergeable and diffable.
    """

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, component: str, name: str,
                 labels: Tuple[Tuple[str, str], ...],
                 buckets: Sequence[float]) -> None:
        super().__init__(component, name, labels)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {component}/{name} needs sorted, "
                             f"non-empty bucket edges (got {buckets!r})")
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(le_<edge>, cumulative count)`` pairs, ending with ``le_inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for edge, bucket in zip(self.buckets, self.bucket_counts):
            running += bucket
            label = f"{edge:g}"
            out.append((f"le_{label}", running))
        out.append(("le_inf", self.count))
        return out

    def snapshot_items(self) -> List[Tuple[str, object]]:
        base = self.key
        items: List[Tuple[str, object]] = [
            (f"{base}:count", self.count),
            (f"{base}:sum", self.total),
        ]
        for label, value in self.cumulative_buckets():
            items.append((f"{base}:{label}", value))
        return items

    def merge_from(self, other: "Metric") -> None:
        assert isinstance(other, Histogram) and other.buckets == self.buckets
        self.count += other.count
        self.total += other.total
        for index, value in enumerate(other.bucket_counts):
            self.bucket_counts[index] += value
        if other.minimum is not None:
            self.minimum = other.minimum if self.minimum is None \
                else min(self.minimum, other.minimum)
        if other.maximum is not None:
            self.maximum = other.maximum if self.maximum is None \
                else max(self.maximum, other.maximum)


class MetricsRegistry:
    """All metrics of one simulation, keyed by ``component/name`` + labels.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling them
    twice with the same identity returns the same object, so components
    can resolve their metrics eagerly in ``__init__`` (which also makes
    zero-valued metrics visible in reports) or lazily at the hot site.
    """

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}

    # ---------------------------------------------------------------- factories

    def counter(self, component: str, name: str, **labels: object) -> Counter:
        """Get or create the counter ``component/name{labels}``."""
        return self._get_or_create(Counter, component, name, labels)

    def gauge(self, component: str, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``component/name{labels}``."""
        return self._get_or_create(Gauge, component, name, labels)

    def histogram(self, component: str, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        """Get or create a histogram (default: latency buckets in ms)."""
        key: MetricKey = (component, name, _labels_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(f"{format_key(*key)} is a {existing.kind}, "
                                f"not a histogram")
            return existing
        edges = tuple(buckets) if buckets is not None \
            else DEFAULT_LATENCY_BUCKETS_MS
        metric = Histogram(component, name, key[2], edges)
        self._metrics[key] = metric
        return metric

    def _get_or_create(self, cls, component: str, name: str,
                       labels: Dict[str, object]):
        key: MetricKey = (component, name, _labels_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(f"{format_key(*key)} is a {existing.kind}, "
                                f"not a {cls.kind}")
            return existing
        metric = cls(component, name, key[2])
        self._metrics[key] = metric
        return metric

    # --------------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def get(self, component: str, name: str, **labels: object) -> Optional[Metric]:
        """The metric with this exact identity, or None."""
        return self._metrics.get((component, name, _labels_key(labels)))

    def find(self, component: Optional[str] = None,
             name: Optional[str] = None) -> List[Metric]:
        """Every metric matching the given component and/or name."""
        return [metric for metric in self._metrics.values()
                if (component is None or metric.component == component)
                and (name is None or metric.name == name)]

    def snapshot(self) -> Dict[str, object]:
        """A flat, deterministically ordered ``{key: value}`` dict.

        Counters and gauges contribute one entry; histograms contribute
        ``:count``, ``:sum`` and cumulative ``:le_*`` entries.  Keys are
        sorted, so two runs with the same seed serialize byte-identically.
        """
        items: List[Tuple[str, object]] = []
        for metric in self._metrics.values():
            items.extend(metric.snapshot_items())
        return dict(sorted(items))

    # ------------------------------------------------------------------ merging

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (summing counters, etc.)."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(metric, Histogram):
                    mine = Histogram(metric.component, metric.name,
                                     metric.labels, metric.buckets)
                else:
                    mine = type(metric)(metric.component, metric.name,
                                        metric.labels)
                self._metrics[key] = mine
            mine.merge_from(metric)

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry combining *registries* (for multi-sim reports)."""
        out = cls()
        for registry in registries:
            out.merge_from(registry)
        return out
