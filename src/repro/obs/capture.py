"""Capture hooks: collect the simulators an opaque code path creates.

The experiment harnesses (``repro.experiments.exp_*``) build their own
:class:`~repro.sim.engine.Simulator` instances internally and only return
report dataclasses — there is no handle through which ``--metrics`` could
reach the registries afterwards.  Rather than widen every experiment's
return type, the engine announces each new simulator here, and
:func:`capture_simulators` records the announcements made while a block
runs::

    with capture_simulators() as captured:
        run_experiment(seed=7)
    report = format_reports(sim.metrics for sim in captured)

When no capture is active (the normal case), :func:`note_simulator` is a
no-op beyond one truthiness check, so simulation behavior and performance
are untouched.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List

# Stack of active capture lists.  Nested captures each see the simulators
# created inside them (inner captures also feed outer ones).
_active: List[List] = []

# Same mechanism for Mobile Policy Tables, so ``--metrics`` can append each
# mobile host's policy entries to the human-readable report.
_active_policy: List[List] = []


def note_simulator(sim) -> None:
    """Called by ``Simulator.__init__``; records *sim* in active captures."""
    if _active:
        for bucket in _active:
            bucket.append(sim)


def note_policy_table(table) -> None:
    """Called by ``MobilePolicyTable.__init__``; records active tables."""
    if _active_policy:
        for bucket in _active_policy:
            bucket.append(table)


def capture_active() -> bool:
    """True while at least one :func:`capture_simulators` block is open."""
    return bool(_active)


class CapturedMetrics:
    """A stand-in for a Simulator that only carries a metrics registry.

    Worker processes cannot append their simulators to the parent's
    capture buckets, so the parallel runner ships each worker's merged
    :class:`~repro.obs.metrics.MetricsRegistry` home and wraps it in one
    of these; consumers that iterate a capture bucket reading
    ``.metrics`` (the ``--metrics`` report path) see no difference.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics) -> None:
        self.metrics = metrics


def note_metrics_registry(registry) -> None:
    """Feed a worker-produced registry into every active capture."""
    if _active:
        carrier = CapturedMetrics(registry)
        for bucket in _active:
            bucket.append(carrier)


@contextlib.contextmanager
def capture_simulators() -> Iterator[List]:
    """Collect every Simulator constructed while the ``with`` body runs."""
    bucket: List = []
    _active.append(bucket)
    try:
        yield bucket
    finally:
        _active.remove(bucket)


@contextlib.contextmanager
def capture_policy_tables() -> Iterator[List]:
    """Collect every MobilePolicyTable built while the ``with`` body runs."""
    bucket: List = []
    _active_policy.append(bucket)
    try:
        yield bucket
    finally:
        _active_policy.remove(bucket)
