"""Observability: metrics registry, profiling hooks and exporters.

The trace (``repro.sim.trace``) records *what happened*; this package
aggregates *how much and how long* — counters, gauges and histograms owned
by each :class:`~repro.sim.engine.Simulator` (``sim.metrics``), plus
exporters for machines (JSONL, flat snapshot) and humans
(``format_report``, surfaced by ``python -m repro.experiments --metrics``).
"""

from repro.obs.capture import (
    CapturedMetrics,
    capture_active,
    capture_policy_tables,
    capture_simulators,
    note_metrics_registry,
    note_policy_table,
    note_simulator,
)
from repro.obs.export import (
    format_policy_table,
    format_policy_tables,
    format_report,
    format_reports,
    snapshot_to_json,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "CapturedMetrics",
    "capture_active",
    "capture_simulators",
    "capture_policy_tables",
    "note_metrics_registry",
    "note_simulator",
    "note_policy_table",
    "format_report",
    "format_reports",
    "format_policy_table",
    "format_policy_tables",
    "snapshot_to_json",
    "trace_to_jsonl",
    "write_trace_jsonl",
]
