"""Mergeable statistics: Welford accumulators and quantile histograms.

This is the numeric foundation of every sharded experiment.  It lives at
the package root — below :mod:`repro.experiments`, :mod:`repro.workloads`
and :mod:`repro.parallel` alike — so that any layer can produce or merge
partial summaries without import cycles.  :mod:`repro.experiments.harness`
re-exports everything here for backward compatibility.

Two summary kinds compose a shard's partial result:

* :class:`Welford` / :class:`Stats` — single-pass mean/std/min/max with
  Chan et al. pairwise merging, so shards ship five floats instead of raw
  samples and the merged fleet summary is exact.
* :class:`LatencyHistogram` — fixed log-spaced buckets whose integer
  counts merge exactly (addition), giving deterministic quantiles (p99
  binding latency) across any sharding of the same sample multiset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class Stats:
    """Mean/std summary of one measured quantity."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def format_ms(self, precision: int = 2) -> str:
        """Render as the paper does: ``mean (std)`` in milliseconds."""
        return f"{self.mean:.{precision}f} ({self.std:.{precision}f})"


class Welford:
    """Single-pass mean/variance accumulator with partial-merge support.

    Welford's online update gives mean and sum-of-squared-deviations in
    one pass; :meth:`merge` is Chan et al.'s pairwise combination, which
    lets each shard of a parallel experiment summarize its own samples
    and the merge step fold the partials into one :class:`Stats` without
    ever shipping the raw values between processes.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def add_many(self, values: Iterable[float]) -> "Welford":
        """Fold a sequence of samples in; returns self for chaining."""
        for value in values:
            self.add(value)
        return self

    def merge(self, other: "Welford") -> "Welford":
        """Fold another accumulator's partial state in (Chan et al.)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def merge_stats(self, stats: "Stats") -> "Welford":
        """Fold a finalized :class:`Stats` in (recovers its m2)."""
        partial = Welford()
        partial.count = stats.count
        partial.mean = stats.mean
        partial.m2 = stats.std * stats.std * max(stats.count - 1, 0)
        partial.minimum = stats.minimum if stats.count else math.inf
        partial.maximum = stats.maximum if stats.count else -math.inf
        return self.merge(partial)

    def finalize(self) -> Stats:
        """The accumulated samples as a :class:`Stats` (sample std)."""
        if self.count == 0:
            return Stats(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
        variance = self.m2 / (self.count - 1) if self.count > 1 else 0.0
        return Stats(count=self.count, mean=self.mean,
                     std=math.sqrt(max(variance, 0.0)),
                     minimum=self.minimum, maximum=self.maximum)


def summarize(values: Sequence[float]) -> Stats:
    """Mean and *sample* standard deviation of *values* (single pass)."""
    return Welford().add_many(values).finalize()


def merge_stats(parts: Sequence[Stats]) -> Stats:
    """Combine per-shard :class:`Stats` into one, exactly and in order.

    A single part is returned unchanged (no float round-trip), so a
    one-shard experiment reports identically to the unsharded original.
    """
    parts = [part for part in parts if part.count]
    if not parts:
        return Stats(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    if len(parts) == 1:
        return parts[0]
    accumulator = Welford()
    for part in parts:
        accumulator.merge_stats(part)
    return accumulator.finalize()


def summarize_ms(values_ns: Sequence[int]) -> Stats:
    """Summarize nanosecond samples in milliseconds."""
    return summarize([value / 1_000_000 for value in values_ns])


class LatencyHistogram:
    """Log-spaced bucket counts with exact merging and quantile lookup.

    Buckets are geometric: bucket *i* covers ``(lo * growth**i,
    lo * growth**(i + 1)]``, values at or below ``lo`` land in bucket 0
    and values beyond the top bucket clamp into it.  The bucket layout is
    a pure function of ``(lo, growth, buckets)``, so two histograms built
    with the same parameters — in different shards, different processes —
    merge by integer addition with no loss.  Quantiles report a bucket's
    *upper edge*, which makes them deterministic under any sharding of
    the same samples (at the cost of up to one bucket width, ~8% with the
    defaults, of overestimate).

    The defaults cover 0.05 ms to beyond 100 s, wide enough for a binding
    latency that is a few milliseconds at an idle home agent and seconds
    under overload.
    """

    __slots__ = ("lo", "growth", "buckets", "counts", "_log_growth")

    def __init__(self, lo: float = 0.05, growth: float = 1.08,
                 buckets: int = 200) -> None:
        if lo <= 0 or growth <= 1.0 or buckets <= 0:
            raise ValueError("need lo > 0, growth > 1, buckets > 0")
        self.lo = lo
        self.growth = growth
        self.buckets = buckets
        self._log_growth = math.log(growth)
        #: Sparse bucket counts: index -> occurrences.
        self.counts: Dict[int, int] = {}

    @property
    def total(self) -> int:
        """Number of samples folded in."""
        return sum(self.counts.values())

    def bucket_index(self, value: float) -> int:
        """The bucket *value* falls into (clamped at both ends)."""
        if value <= self.lo:
            return 0
        index = int(math.log(value / self.lo) / self._log_growth)
        return min(max(index, 0), self.buckets - 1)

    def bucket_edge(self, index: int) -> float:
        """Upper edge of bucket *index* (the value quantiles report)."""
        return self.lo * self.growth ** (index + 1)

    def add(self, value: float) -> None:
        """Count one sample."""
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's counts in (must share the layout)."""
        if (other.lo, other.growth, other.buckets) != (self.lo, self.growth,
                                                       self.buckets):
            raise ValueError("cannot merge histograms with different layouts")
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        return self

    def quantile(self, q: float) -> float:
        """The upper edge of the bucket holding the *q*-quantile sample.

        Returns 0.0 for an empty histogram.  Exact in the sense that the
        true quantile lies within the reported bucket, and deterministic
        for a given sample multiset regardless of insertion or merge
        order.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            return 0.0
        # The ceiling rank: the sample such that >= q of the mass is at or
        # below its bucket.
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return self.bucket_edge(index)
        return self.bucket_edge(max(self.counts))  # pragma: no cover

    # ------------------------------------------------------- serialization

    def to_counts(self) -> Dict[int, int]:
        """Plain-data view of the sparse counts (for trial results)."""
        return dict(self.counts)

    @classmethod
    def from_counts(cls, counts: Dict[int, int], lo: float = 0.05,
                    growth: float = 1.08, buckets: int = 200
                    ) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_counts` output."""
        histogram = cls(lo=lo, growth=growth, buckets=buckets)
        for index, count in counts.items():
            histogram.counts[int(index)] = int(count)
        return histogram


def merge_histograms(parts: Iterable[LatencyHistogram]) -> LatencyHistogram:
    """Merge histograms in order into a fresh one (empty input allowed)."""
    merged: LatencyHistogram = LatencyHistogram()
    parts = list(parts)
    if parts:
        merged = LatencyHistogram(lo=parts[0].lo, growth=parts[0].growth,
                                  buckets=parts[0].buckets)
        for part in parts:
            merged.merge(part)
    return merged


__all__: List[str] = [
    "Stats",
    "Welford",
    "summarize",
    "merge_stats",
    "summarize_ms",
    "LatencyHistogram",
    "merge_histograms",
]
