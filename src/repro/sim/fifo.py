"""FIFO-serialized processing delays.

Per-packet software costs are jittered, and two packets handed to the same
stage nanoseconds apart would otherwise race: whichever drew the smaller
jitter would overtake the other.  Real network stacks don't reorder like
that — a CPU (or a queue discipline) processes packets one at a time, in
arrival order.  :class:`FifoDelay` models exactly that: work starts when
the previous item finishes, so jitter stretches the pipeline but never
reorders it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event, Simulator


class FifoDelay:
    """A single-server queue for software processing stages."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._busy_until = 0

    def schedule(self, delay: int, callback: Callable[[], None],
                 label: str = "") -> "Event":
        """Run *callback* after *delay* of service time, in FIFO order."""
        start = max(self._sim.now, self._busy_until)
        finish = start + max(delay, 0)
        self._busy_until = finish
        return self._sim.call_at(finish, callback, label)

    def post(self, delay: int, callback: Callable[[], None],
             label: str = "") -> None:
        """Like :meth:`schedule`, but fire-and-forget: no cancellation
        handle is returned, so the engine may recycle the event.  Use it
        whenever the ``schedule`` return value would be discarded."""
        start = max(self._sim.now, self._busy_until)
        finish = start + max(delay, 0)
        self._busy_until = finish
        self._sim.post_at(finish, callback, label)

    @property
    def backlog(self) -> int:
        """Nanoseconds of queued work ahead of a new arrival (0 = idle)."""
        return max(0, self._busy_until - self._sim.now)
