"""Structured event trace.

The experiment harnesses (Figures 6 and 7, the same-subnet switch) need to
reconstruct what happened and when: which packet was lost, when each
registration stage started and ended.  Components emit trace records through
``sim.trace.emit(category, event, **fields)``; harnesses filter them back out
with :meth:`Trace.select`.

The trace is append-only and deliberately dumb: no aggregation, no I/O.
Keeping measurement outside the protocol code mirrors the paper's method of
instrumenting the kernel with timestamps and post-processing off-line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``category`` is a coarse stream name (``"ip"``, ``"registration"``,
    ``"handoff"`` ...), ``event`` the specific occurrence within it, and
    ``fields`` free-form structured data.
    """

    time: int
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup with a default (dict.get semantics)."""
        return self.fields.get(key, default)


class Trace:
    """Append-only record sink bound to a simulator clock."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._records: List[TraceRecord] = []
        self.enabled = True

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record *event* in *category* at the current virtual time."""
        if not self.enabled:
            return
        self._records.append(
            TraceRecord(time=self._sim.now, category=category, event=event, fields=fields)
        )

    @property
    def records(self) -> List[TraceRecord]:
        """The recorded stream in emission order (read-only view)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        category: Optional[str] = None,
        event: Optional[str] = None,
        since: Optional[int] = None,
        **field_filters: Any,
    ) -> List[TraceRecord]:
        """Return records matching every given criterion.

        ``field_filters`` match on equality against ``record.fields``; a
        record lacking the key does not match.
        """
        out: List[TraceRecord] = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            if since is not None and record.time < since:
                continue
            if any(record.get(key, _MISSING) != value for key, value in field_filters.items()):
                continue
            out.append(record)
        return out

    def last(self, category: str, event: str) -> Optional[TraceRecord]:
        """Most recent record matching ``(category, event)``, if any."""
        for record in reversed(self._records):
            if record.category == category and record.event == event:
                return record
        return None

    def clear(self) -> None:
        """Drop all records (harnesses call this between iterations)."""
        self._records.clear()


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
