"""Structured event trace.

The experiment harnesses (Figures 6 and 7, the same-subnet switch) need to
reconstruct what happened and when: which packet was lost, when each
registration stage started and ended.  Components emit trace records through
``sim.trace.emit(category, event, **fields)``; harnesses filter them back out
with :meth:`Trace.select`.

The trace is append-only and deliberately dumb: no aggregation, no I/O.
Keeping measurement outside the protocol code mirrors the paper's method of
instrumenting the kernel with timestamps and post-processing off-line.

Recording is gated per category so the hot path can stay lazy: call sites
that would pay string formatting just to build a record first ask
:meth:`Trace.wants`, and categories in :data:`VERBOSE_CATEGORIES` are off
by default (debug firehoses nobody post-processes).  All pre-existing
categories default to on, so harnesses see exactly the records they always
did; benchmarks and soak runs disable categories wholesale with
:meth:`Trace.disable` to measure (and avoid) the recording overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.sim.arena import poolable, release

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


@poolable(clear=("fields",))
class TraceRecord:
    """One traced occurrence.

    ``category`` is a coarse stream name (``"ip"``, ``"registration"``,
    ``"handoff"`` ...), ``event`` the specific occurrence within it, and
    ``fields`` free-form structured data.

    A ``__slots__`` value class rather than a dataclass: one is allocated
    per emitted record, which makes construction part of the datapath.
    """

    __slots__ = ("time", "category", "event", "fields")

    def __init__(self, time: int, category: str, event: str,
                 fields: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.category = category
        self.event = event
        self.fields = fields if fields is not None else {}

    @classmethod
    def acquire(cls, time: int, category: str, event: str,
                fields: Optional[Dict[str, Any]] = None) -> "TraceRecord":
        """Pooled constructor: identical semantics to ``TraceRecord(...)``."""
        pool = cls._pool
        if pool:
            self = pool.pop()
            cls._pool_reuses += 1
            self.time = time
            self.category = category
            self.event = event
            self.fields = fields if fields is not None else {}
            return self
        return cls(time, category, event, fields)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field lookup with a default (dict.get semantics)."""
        return self.fields.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time == other.time and self.category == other.category
                and self.event == other.event and self.fields == other.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord(time={self.time}, category={self.category!r}, "
                f"event={self.event!r}, fields={self.fields!r})")


#: Categories that are *off* unless a consumer opts in: per-event debug
#: firehoses whose records no experiment harness reads.  Everything else
#: records by default, exactly as before the fast path existed.
VERBOSE_CATEGORIES = frozenset({"engine.debug", "policy.cache", "route.cache"})


class Trace:
    """Append-only record sink bound to a simulator clock."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._records: List[TraceRecord] = []
        self.enabled = True
        self._disabled_categories = set(VERBOSE_CATEGORIES)
        self._subscribers: List[Any] = []

    def wants(self, category: str) -> bool:
        """True if a record in *category* would actually be kept.

        Hot call sites check this *before* formatting record fields
        (``packet.describe()``, ``str(addr)``), so a disabled category
        costs one set lookup instead of string building.
        """
        return self.enabled and category not in self._disabled_categories

    def enable(self, *categories: str) -> None:
        """Opt categories (back) in — including the verbose ones."""
        self._disabled_categories.difference_update(categories)

    def disable(self, *categories: str) -> None:
        """Stop recording the given categories (benchmarks, soak runs)."""
        self._disabled_categories.update(categories)

    def subscribe(self, callback: Any) -> None:
        """Deliver every future record to *callback* as it is emitted.

        Callbacks run synchronously inside :meth:`emit`, in subscription
        order, and see the record before any :meth:`clear` can recycle it
        — a subscriber that keeps data must **copy** the fields it needs,
        never hold the (pooled) record.  With no subscribers the emit
        path pays a single truthiness check, so runs that never subscribe
        stay byte-identical and un-slowed.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Any) -> None:
        """Stop delivering records to *callback* (missing is a no-op)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record *event* in *category* at the current virtual time."""
        if not self.enabled or category in self._disabled_categories:
            return
        record = TraceRecord.acquire(self._sim.now, category, event, fields)
        self._records.append(record)
        if self._subscribers:
            for callback in self._subscribers:
                callback(record)

    @property
    def records(self) -> List[TraceRecord]:
        """The recorded stream in emission order (read-only view)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self,
        category: Optional[str] = None,
        event: Optional[str] = None,
        since: Optional[int] = None,
        **field_filters: Any,
    ) -> List[TraceRecord]:
        """Return records matching every given criterion.

        ``field_filters`` match on equality against ``record.fields``; a
        record lacking the key does not match.
        """
        out: List[TraceRecord] = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            if since is not None and record.time < since:
                continue
            if any(record.get(key, _MISSING) != value for key, value in field_filters.items()):
                continue
            out.append(record)
        return out

    def last(self, category: str, event: str) -> Optional[TraceRecord]:
        """Most recent record matching ``(category, event)``, if any."""
        for record in reversed(self._records):
            if record.category == category and record.event == event:
                return record
        return None

    def clear(self) -> None:
        """Drop all records (harnesses call this between iterations).

        Records nobody else kept a reference to are recycled into the
        :class:`TraceRecord` arena; anything a harness still holds (via
        :meth:`select`, :attr:`records`, ...) survives untouched.
        """
        for record in self._records:
            # held=2: this loop variable plus the list slot about to die.
            release(record, held=2)
        self._records.clear()


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
