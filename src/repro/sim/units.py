"""Time and rate units for the simulator.

All simulated time is an ``int`` count of nanoseconds.  Integer time gives
deterministic event ordering (no float-comparison ties) and is fine-grained
enough to express the paper's smallest reported quantity (tens of
microseconds of standard deviation in Figure 7).

Rates are expressed in bits per second and converted to per-packet
serialization delays by :func:`transmission_delay`.
"""

from __future__ import annotations

NANOSECOND = 1
MICROSECOND = 1_000 * NANOSECOND
MILLISECOND = 1_000 * MICROSECOND
SECOND = 1_000 * MILLISECOND

#: Bits per second for one kilobit per second (decimal, as datasheets use).
KBPS = 1_000
#: Bits per second for one megabit per second.
MBPS = 1_000_000


def ns(value: float) -> int:
    """Return *value* nanoseconds as a time quantity."""
    return int(round(value))


def us(value: float) -> int:
    """Return *value* microseconds in nanoseconds."""
    return int(round(value * MICROSECOND))


def ms(value: float) -> int:
    """Return *value* milliseconds in nanoseconds."""
    return int(round(value * MILLISECOND))


def s(value: float) -> int:
    """Return *value* seconds in nanoseconds."""
    return int(round(value * SECOND))


def from_seconds(value: float) -> int:
    """Alias of :func:`s` for call sites where the word reads better."""
    return s(value)


def ns_to_us(value: int) -> float:
    """Convert nanoseconds to (float) microseconds."""
    return value / MICROSECOND


def ns_to_ms(value: int) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return value / MILLISECOND


def ns_to_s(value: int) -> float:
    """Convert nanoseconds to (float) seconds."""
    return value / SECOND


def transmission_delay(size_bytes: int, rate_bps: float) -> int:
    """Serialization delay, in nanoseconds, of *size_bytes* at *rate_bps*.

    A zero or negative rate means an infinitely fast link (zero delay),
    which the loopback interface uses.
    """
    if rate_bps <= 0:
        return 0
    return int(round(size_bytes * 8 * SECOND / rate_bps))
