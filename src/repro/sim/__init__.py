"""Discrete-event simulation kernel for the MosquitoNet reproduction.

The paper measured a real Linux 1.2.13 network stack with wall-clock tools.
Our substrate is this deterministic discrete-event kernel: a single
:class:`~repro.sim.engine.Simulator` owns virtual time (integer nanoseconds),
an event queue with FIFO tie-breaking, all randomness (seeded, never the
global RNG), and a structured trace used by the experiment harnesses to
reconstruct per-stage timings such as Figure 7's registration time-line.
"""

from repro.sim.engine import Event, Simulator, Time
from repro.sim.scheduler import (
    SCHEDULERS,
    HeapScheduler,
    Scheduler,
    TimerWheelScheduler,
    create_scheduler,
)
from repro.sim.trace import VERBOSE_CATEGORIES, Trace, TraceRecord
from repro.sim.units import (
    KBPS,
    MBPS,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    from_seconds,
    ms,
    ns_to_ms,
    ns_to_s,
    s,
    us,
)

__all__ = [
    "Event",
    "Simulator",
    "Time",
    "Trace",
    "TraceRecord",
    "VERBOSE_CATEGORIES",
    "Scheduler",
    "HeapScheduler",
    "TimerWheelScheduler",
    "SCHEDULERS",
    "create_scheduler",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "KBPS",
    "MBPS",
    "ms",
    "us",
    "s",
    "ns_to_ms",
    "ns_to_s",
    "from_seconds",
]
