"""Free-list arenas for the datapath's slotted value classes.

Steady-state simulation traffic builds the same handful of object shapes
over and over — packets, datagrams, segments, trace records — and then
drops them within a hop or two.  An arena keeps a per-class free list so
those shapes can be recycled instead of re-allocated, which removes most
allocator churn from the hot loops (``python -m repro.bench`` tracks the
effect).

Safety model
------------

Recycling a *live* object would be catastrophic (a reused packet mutating
under a component still holding it), so release is guarded by the real
reference count: :func:`release` recycles an object **only if** the
caller's declared bindings are provably the last references.  Any extra
reference anywhere — a retransmit queue, a trace, a test — makes the
release a silent no-op and leaves the object to the garbage collector.
False negatives cost a little reuse; false positives cannot happen as long
as ``held`` is not over-declared.  The byte-identity determinism guard and
the pooled-vs-unpooled property tests double-check exactly that.

Classes opt in with the :func:`poolable` decorator and provide their own
``acquire(...)`` classmethod (direct slot assignment is faster than any
generic reset loop).  Arenas are process-global and deliberately tiny
state: toggling them (``set_arena_enabled``) only changes *allocator*
behaviour, never simulation results.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Type

#: Upper bound on each per-class free list; beyond it objects go to the GC.
ARENA_CAP = 2048

_enabled = True
_registered: List[type] = []

# ``sys.getrefcount(object())`` measures the reference count contributed by
# the call machinery alone (the probe object has no other bindings).  Inside
# ``release(obj)`` the same machinery plus the function's own parameter are
# in play, so an object whose only other references are the caller's
# ``held`` bindings shows exactly ``_SOLO_REFS + held + 1``.
_getrefcount = getattr(sys, "getrefcount", None)
_SOLO_REFS = _getrefcount(object()) if _getrefcount is not None else None


def poolable(clear: Iterable[str] = ()) -> Any:
    """Class decorator: attach a free list and register it for stats.

    ``clear`` names the slots holding object references; they are set to
    ``None`` on release so a parked instance never pins payloads (or
    anything else) alive.
    """

    def wrap(cls: type) -> type:
        cls._pool = []
        cls._pool_reuses = 0
        cls._clear_on_release = tuple(clear)
        _registered.append(cls)
        return cls

    return wrap


def release(obj: Any, held: int = 1) -> bool:
    """Recycle *obj* into its class arena if it is provably dead.

    ``held`` is the number of references the *caller* still holds (frame
    locals, closure cells) and promises never to dereference again; the
    default 1 covers the single local being passed in.  Returns True when
    the object was actually parked.  Over-declaring ``held`` is the one
    way to corrupt a simulation — keep it exact and let the determinism
    guard keep you honest.
    """
    if not _enabled or _SOLO_REFS is None:
        return False
    if _getrefcount(obj) > _SOLO_REFS + held + 1:
        return False
    cls = obj.__class__
    pool = cls._pool
    if len(pool) >= ARENA_CAP:
        return False
    for name in cls._clear_on_release:
        setattr(obj, name, None)
    pool.append(obj)
    return True


def set_arena_enabled(on: bool) -> None:
    """Master switch (debugging aid).  Disabling drains every free list so
    subsequent acquires allocate fresh objects."""
    global _enabled
    _enabled = bool(on)
    if not _enabled:
        for cls in _registered:
            cls._pool.clear()


def arena_enabled() -> bool:
    return _enabled


def arena_stats() -> Dict[str, Dict[str, int]]:
    """Per-class free-list stats: current free objects and lifetime reuses."""
    return {
        cls.__name__: {"free": len(cls._pool), "reuses": cls._pool_reuses}
        for cls in _registered
    }


def registered_classes() -> List[Type]:
    return list(_registered)
