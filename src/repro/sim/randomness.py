"""Helpers for drawing deterministic jitter from simulator RNG streams."""

from __future__ import annotations

import random


def jittered(rng: random.Random, base: int, fraction: float) -> int:
    """Return *base* nanoseconds perturbed by a uniform +/- *fraction*.

    A zero fraction (or zero base) returns *base* untouched without
    consuming randomness, so disabling jitter does not shift RNG streams.
    """
    if fraction <= 0.0 or base == 0:
        return base
    low = 1.0 - fraction
    high = 1.0 + fraction
    return max(0, int(round(base * rng.uniform(low, high))))


def bernoulli(rng: random.Random, probability: float) -> bool:
    """Return True with the given probability (0 never consumes RNG)."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return rng.random() < probability
