"""Pluggable event schedulers: the binary heap and a hierarchical timer wheel.

The engine's inner loop is the hottest code in the repository — every
packet, timer and handoff stage passes through it — so the queue that
orders events is replaceable.  A scheduler stores :class:`~repro.sim.engine.Event`
objects and hands them back *in batches of identical timestamps*, which lets
``Simulator.run`` dispatch a burst of simultaneous timers without paying a
push/pop round-trip per event.

Two implementations ship:

* :class:`HeapScheduler` — the classic binary heap (``heapq``).  O(log n)
  per operation, excellent constants because ``heapq`` is C.  The default.
* :class:`TimerWheelScheduler` — a hierarchical timer wheel in the
  tradition of Varghese & Lauck's hashed/hierarchical wheels and the
  calendar queues used by discrete-event simulators: a fine level-0 wheel,
  a coarse level-1 wheel covering ``slots`` level-0 revolutions, and an
  overflow heap for the far future.  Events cascade toward level 0 as the
  cursor approaches their deadline.  Within one slot events live in a
  mini-heap, so ordering is by ``(time, seq)`` exactly like the global
  heap — the two schedulers are observably equivalent (a property test
  asserts it across whole testbed scenarios).

Both order events identically, so a same-seed simulation produces a
byte-identical ``metrics.snapshot()`` under either scheduler; only wall
time may differ.  Pick one with ``Simulator(scheduler=...)`` or
``Config.engine_scheduler``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Event, Time


class Scheduler:
    """Interface every event scheduler implements.

    The contract ``Simulator.run`` relies on:

    * :meth:`push` stores an event; events are unique by ``(time, seq)``.
    * :meth:`pop_batch` removes and returns *every* queued event sharing
      the earliest queued timestamp (sorted by ``seq``), or ``None`` when
      the queue is empty or that timestamp lies beyond ``until``.
      Cancelled events are returned like any other — the engine purges
      them — so a scheduler never inspects ``event.cancelled``.
    * ``len(scheduler)`` is the number of stored events (live + cancelled).
    """

    name = "abstract"

    def push(self, event: "Event") -> None:
        raise NotImplementedError

    def pop_batch(self, until: Optional["Time"] = None) -> Optional[List["Event"]]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapScheduler(Scheduler):
    """The classic binary-heap event queue (``heapq``-backed).

    Entries are stored as ``(time, seq, event)`` tuples rather than bare
    events: heap sift comparisons then run entirely in C on integers and
    never call :meth:`Event.__lt__`, which roughly halves the cost of a
    push/pop round-trip.  ``(time, seq)`` is unique per event, so the
    third tuple element is never compared.

    The engine's pooled fast path (``Simulator`` with ``pooling`` on)
    reaches into ``_heap`` directly and pops entries one at a time; the
    tuple layout here is therefore load-bearing, not an implementation
    whim.
    """

    name = "heap"
    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[tuple] = []

    def push(self, event: "Event") -> None:
        heappush(self._heap, (event.time, event.seq, event))

    def pop_batch(self, until: Optional["Time"] = None) -> Optional[List["Event"]]:
        heap = self._heap
        if not heap:
            return None
        when = heap[0][0]
        if until is not None and when > until:
            return None
        batch = [heappop(heap)[2]]
        while heap and heap[0][0] == when:
            batch.append(heappop(heap)[2])
        return batch

    def __len__(self) -> int:
        return len(self._heap)


class TimerWheelScheduler(Scheduler):
    """Two-level hierarchical timer wheel with an overflow heap.

    Level 0 buckets ``tick`` nanoseconds per slot across ``slots`` slots;
    level 1 buckets one full level-0 revolution per slot; everything beyond
    level 1's horizon waits in a heap and is drained into the wheels as the
    cursor advances.  Each slot is a mini-heap ordered by ``(time, seq)``,
    so intra-slot and therefore global ordering matches the plain heap.

    The default geometry (65.536 µs × 256 slots ≈ 16.8 ms level-0 horizon,
    ≈ 4.3 s level-1 horizon) brackets this repository's workloads: link
    latencies and per-packet costs land in level 0, protocol timers
    (retransmits, probes, DHCP) in level 1, and only soak-length idle
    timers overflow.
    """

    name = "wheel"
    __slots__ = ("_tick0", "_tick1", "_slots", "_wheel0", "_wheel1",
                 "_count0", "_count1", "_cursor0", "_cursor1",
                 "_overflow", "_size")

    def __init__(self, tick: int = 1 << 16, slots: int = 256) -> None:
        if tick <= 0 or slots < 2:
            raise ValueError(f"bad wheel geometry tick={tick} slots={slots}")
        self._tick0 = tick
        self._tick1 = tick * slots
        self._slots = slots
        self._wheel0: List[List["Event"]] = [[] for _ in range(slots)]
        self._wheel1: List[List["Event"]] = [[] for _ in range(slots)]
        self._count0 = 0
        self._count1 = 0
        #: Absolute slot indices (``time // tick``), not wrapped; the
        #: invariant ``cursor1 == cursor0 // slots`` holds throughout.
        self._cursor0 = 0
        self._cursor1 = 0
        self._overflow: List["Event"] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ push

    def push(self, event: "Event") -> None:
        self._size += 1
        slots = self._slots
        index0 = event.time // self._tick0
        if index0 < self._cursor0:
            # The cursor already swept past this tick (an event scheduled
            # for "now" after the cursor skipped ahead through an empty
            # stretch).  It joins the current slot; the mini-heap keeps it
            # ahead of later timestamps.
            index0 = self._cursor0
        if index0 - self._cursor0 < slots:
            heappush(self._wheel0[index0 % slots], event)
            self._count0 += 1
            return
        index1 = event.time // self._tick1
        if index1 - self._cursor1 < slots:
            heappush(self._wheel1[index1 % slots], event)
            self._count1 += 1
            return
        heappush(self._overflow, event)

    # ------------------------------------------------------------- cascading

    def _drain_overflow(self) -> None:
        """Move overflow events that now fit level 1 into the wheels."""
        horizon = (self._cursor1 + self._slots) * self._tick1
        overflow = self._overflow
        while overflow and overflow[0].time < horizon:
            event = heappop(overflow)
            self._size -= 1  # push() re-counts it
            self.push(event)

    def _cascade_level1(self) -> None:
        """Drain the level-1 slot the cursor just reached into level 0."""
        slot = self._wheel1[self._cursor1 % self._slots]
        if not slot:
            return
        self._count1 -= len(slot)
        self._size -= len(slot)  # push() re-counts them
        for event in slot:
            self.push(event)
        del slot[:]

    def _advance_to_next(self) -> List["Event"]:
        """Move the cursors forward to the next non-empty level-0 slot.

        Returns that slot's mini-heap.  Must only be called when at least
        one event is stored somewhere.
        """
        slots = self._slots
        while True:
            if self._count0:
                wheel0 = self._wheel0
                while True:
                    slot = wheel0[self._cursor0 % slots]
                    if slot:
                        return slot
                    self._cursor0 += 1
                    if self._cursor0 % slots == 0:
                        self._cursor1 += 1
                        self._drain_overflow()
                        self._cascade_level1()
            elif self._count1:
                # Level 0 is empty: skip whole revolutions.  Advance the
                # level-1 cursor to its next non-empty slot, cascading the
                # overflow as its horizon moves.
                wheel1 = self._wheel1
                while not wheel1[self._cursor1 % slots]:
                    self._cursor1 += 1
                    self._drain_overflow()
                self._cursor0 = self._cursor1 * slots
                self._cascade_level1()
            else:
                # Everything lives in the far future: re-anchor both
                # cursors at the overflow head and pull its era in.
                head = self._overflow[0]
                self._cursor1 = max(self._cursor1, head.time // self._tick1)
                self._cursor0 = max(self._cursor0, self._cursor1 * self._slots)
                self._drain_overflow()
                self._cascade_level1()

    # ------------------------------------------------------------------- pop

    def pop_batch(self, until: Optional["Time"] = None) -> Optional[List["Event"]]:
        if not self._size:
            return None
        slot = self._advance_to_next()
        when = slot[0].time
        if until is not None and when > until:
            return None
        batch = [heappop(slot)]
        while slot and slot[0].time == when:
            batch.append(heappop(slot))
        self._count0 -= len(batch)
        self._size -= len(batch)
        return batch


#: Registry of scheduler names accepted by ``Simulator(scheduler=...)``
#: and ``Config.engine_scheduler``.
SCHEDULERS = {
    "heap": HeapScheduler,
    "wheel": TimerWheelScheduler,
}


def create_scheduler(spec: Union[str, Scheduler, None]) -> Scheduler:
    """Resolve a scheduler spec: an instance, a registered name, or None."""
    if spec is None:
        return HeapScheduler()
    if isinstance(spec, Scheduler):
        return spec
    factory = SCHEDULERS.get(spec)
    if factory is None:
        raise ValueError(f"unknown scheduler {spec!r}; "
                         f"valid: {', '.join(sorted(SCHEDULERS))}")
    return factory()
