"""The discrete-event engine.

A :class:`Simulator` is the single authority for virtual time.  Components
never sleep or poll; they schedule callbacks with :meth:`Simulator.call_at`
or :meth:`Simulator.call_later` and the engine runs them in timestamp order.
Ties are broken by insertion order (FIFO), which keeps runs reproducible.

The engine also owns randomness.  Components draw jitter, loss decisions and
identifiers from named :class:`random.Random` streams handed out by
:meth:`Simulator.rng`; two components asking for different stream names never
perturb each other's sequences, so adding a new component does not change
existing results.

Finally the engine owns observability: a per-simulation
:class:`~repro.obs.metrics.MetricsRegistry` (``sim.metrics``) that protocol
components record into, plus its own profiling — per-label dispatch
counters, a high-water queue-depth gauge (live events only; cancelled
events are excluded), and wall-clock accounting surfaced via
:meth:`Simulator.profile`.  Wall time is deliberately *not* in the
registry: the metrics snapshot must be byte-identical across same-seed
runs, and wall clocks are not.

Performance notes (the engine is the hottest loop in the repository):

* :class:`Event` is a hand-rolled ``__slots__`` class, not a dataclass —
  the slotted layout roughly halves its construction cost, and with
  pooling on (the default) steady-state runs barely construct events at
  all: fire-and-forget callbacks scheduled through :meth:`Simulator.post_at`
  / :meth:`Simulator.post_later` return no handle, so the engine recycles
  their :class:`Event` objects through a free list the moment they
  dispatch.  ``call_at``/``call_later`` events are *never* recycled —
  callers hold them as cancellation handles, and a stale handle must stay
  inert forever rather than cancel an unrelated reused event.
* The event queue is a pluggable :class:`~repro.sim.scheduler.Scheduler`.
  The default :class:`~repro.sim.scheduler.HeapScheduler` stores
  ``(time, seq, event)`` tuples so heap comparisons run in C, and the
  pooled fast path pops them inline without batch-list round-trips.
* Dispatch labels are interned at scheduling time; the fast path counts
  them into a plain ``dict`` inside the loop and flushes into the metrics
  registry only when a run ends (or :meth:`profile` is called), so the
  per-event cost is one dict hit instead of a registry lookup.  Both
  paths produce identical ``engine/dispatched`` counters.

Every fast path above is observationally neutral: a same-seed simulation
produces byte-identical ``metrics.snapshot()`` output with pooling on or
off, under either scheduler (``python -m repro.bench`` gates on it).
"""

from __future__ import annotations

import random
import sys
import time as _wallclock
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Union

from repro.obs.capture import note_simulator
from repro.obs.metrics import Counter, MetricsRegistry
from repro.sim.scheduler import HeapScheduler, Scheduler, create_scheduler
from repro.sim.trace import Trace
from repro.sim.units import SECOND

#: Simulated time: an integer count of nanoseconds since simulation start.
Time = int

_intern = sys.intern

#: Process-wide default for ``Simulator(pooling=None)``.  ``Config.engine_pooling``
#: feeds through the :class:`~repro.api.Scenario` facade; tests flip this to
#: exercise both modes without threading a parameter through every factory.
DEFAULT_POOLING = True

#: Upper bound on the per-simulator event free list.  Beyond this the
#: steady-state working set is covered and extra events are left to the GC.
EVENT_POOL_CAP = 4096


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events sort by ``(time, seq)``: earlier deadlines first, and among
    equal deadlines the event scheduled first runs first.

    This is also the public cancellation handle: everything
    :meth:`Simulator.call_at`/:meth:`Simulator.call_later` returns is an
    :class:`Event`, so components should annotate stored timers as
    ``Optional[Event]`` and call :meth:`cancel` without casts.
    ``post_at``/``post_later`` return no handle — their events may be
    recycled and must never be cancellable from outside.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_owner")

    def __init__(self, time: Time, seq: int, callback: Callable[[], None],
                 label: str = "", cancelled: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        # The owning Simulator while a *handle* event sits in its queue;
        # cleared on pop so a late cancel() cannot corrupt the queue
        # accounting.  Pooled (post_*) events never set it: ``_owner is
        # None`` at dispatch is the engine's recyclability test.
        self._owner: Optional["Simulator"] = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.time, self.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} {self.label!r}{state}>"

    def cancel(self) -> None:
        """Prevent the callback from running when its deadline arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream is derived from it, so a
        simulation is fully determined by ``(seed, component behaviour)``.
    trace:
        Optional pre-built :class:`Trace`; a fresh one is created otherwise.
    metrics:
        Optional pre-built :class:`MetricsRegistry`; a fresh one is created
        otherwise.  Passing a shared registry lets cooperating simulations
        aggregate, at the cost of label discipline being on the caller.
    scheduler:
        Event queue implementation: a :class:`~repro.sim.scheduler.Scheduler`
        instance, a registered name (``"heap"``, ``"wheel"``), or ``None``
        for the default heap.  Both built-ins order events identically, so
        the choice affects wall time only, never results.
    pooling:
        Recycle ``post_at``/``post_later`` events through a free list and
        run the inline heap fast path.  ``None`` (default) follows the
        module-level :data:`DEFAULT_POOLING`; ``Config.engine_pooling``
        sets it through the Scenario facade.  Results are byte-identical
        either way — ``False`` exists for debugging (every event is a
        fresh object, friendlier to ``id()``-based inspection).
    label_accounting:
        Keep per-label dispatch counters (the ``engine/dispatched``
        metrics).  Leave on (default) for reproducible snapshots; turning
        it off removes those counters from the snapshot entirely and is
        only for raw-throughput measurement.
    """

    def __init__(self, seed: int = 0, trace: Optional[Trace] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 scheduler: Union[str, Scheduler, None] = None,
                 pooling: Optional[bool] = None,
                 label_accounting: bool = True) -> None:
        self._now: Time = 0
        self._seq: int = 0
        self._scheduler: Scheduler = create_scheduler(scheduler)
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self.trace: Trace = trace if trace is not None else Trace(self)
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry())
        self._running = False
        self._events_run = 0
        self._pooling = DEFAULT_POOLING if pooling is None else bool(pooling)
        # The inline fast path requires the tuple-heap layout; any other
        # scheduler (or a HeapScheduler subclass) takes the generic loop,
        # which still recycles post events when pooling is on.
        self._fast = self._pooling and type(self._scheduler) is HeapScheduler
        self._event_pool: List[Event] = []
        self._pool_reuses = 0
        self._count_labels = label_accounting
        # O(1) accounting of live and cancelled-but-still-queued events, so
        # that pending() and the depth gauge never scan the queue.  The
        # invariant `_live == len(scheduler) - _cancelled_in_queue` holds
        # at every point the old subtraction was evaluated.
        self._live = 0
        self._cancelled_in_queue = 0
        self._depth_hw = 0
        self._queue_depth_gauge = self.metrics.gauge("engine",
                                                     "queue_depth_max")
        self._dispatch_counters: Dict[str, Counter] = {}
        self._label_counts: Dict[str, int] = {}
        #: Wall-clock nanoseconds spent inside run() (profiling only; kept
        #: out of the metrics registry to preserve snapshot determinism).
        self.wall_time_ns: int = 0
        note_simulator(self)

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> Time:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for harness statistics)."""
        return self._events_run

    @property
    def scheduler(self) -> Scheduler:
        """The event queue implementation in use."""
        return self._scheduler

    @property
    def pooling(self) -> bool:
        """Whether event recycling and the inline fast path are enabled."""
        return self._pooling

    # ------------------------------------------------------------ randomness

    def rng(self, stream: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are keyed by name and derived from the master seed, so the
        sequence observed through one stream is independent of how many
        other streams exist or how often they are used.
        """
        existing = self._rngs.get(stream)
        if existing is not None:
            return existing
        derived = random.Random(f"{self._seed}/{stream}")
        self._rngs[stream] = derived
        return derived

    # ------------------------------------------------------------ scheduling

    def call_at(self, when: Time, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run at absolute time *when*.

        Returns the :class:`Event` as a cancellation handle; the event is
        therefore never pooled.  Prefer :meth:`post_at` when the handle
        would be discarded.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {when} ns; "
                f"it is already {self._now} ns"
            )
        event = Event(when, self._seq, callback, _intern(label))
        event._owner = self
        self._seq += 1
        self._scheduler.push(event)
        self._bump_live()
        return event

    def call_later(self, delay: Time, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run *delay* nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(self._now + delay, callback, label)

    def post_at(self, when: Time, callback: Callable[[], None], label: str = "") -> None:
        """Schedule *callback* at *when*, fire-and-forget.

        The no-handle twin of :meth:`call_at`: nothing escapes that could
        ever call ``cancel()``, so with pooling on the engine recycles the
        backing :class:`Event` the moment it dispatches.  Datapath code
        (link deliveries, serial FIFOs, forwarding) schedules exclusively
        through this, which is what makes steady-state runs allocate
        almost nothing.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {when} ns; "
                f"it is already {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = when
            event.seq = seq
            event.callback = callback
            event.label = _intern(label)
            self._pool_reuses += 1
        else:
            event = Event(when, seq, callback, _intern(label))
        if self._fast:
            heappush(self._scheduler._heap, (when, seq, event))
        else:
            self._scheduler.push(event)
        self._bump_live()

    def post_later(self, delay: Time, callback: Callable[[], None], label: str = "") -> None:
        """Schedule *callback* *delay* nanoseconds from now, fire-and-forget."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        self.post_at(self._now + delay, callback, label)

    def _bump_live(self) -> None:
        live = self._live + 1
        self._live = live
        if live > self._depth_hw:
            self._depth_hw = live
            gauge = self._queue_depth_gauge
            if live > gauge.value:
                gauge.value = live

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; it no longer counts as live."""
        self._cancelled_in_queue += 1
        self._live -= 1

    # --------------------------------------------------------------- running

    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this bound.  Events scheduled
            exactly at ``until`` still run; the clock is then advanced to
            ``until`` so back-to-back ``run(until=...)`` calls tile time.
        max_events:
            Safety valve against runaway loops; raises if this *call*
            executes more than ``max_events`` callbacks.  The budget is
            per-call: a fresh ``run()`` starts from zero, regardless of
            how many events earlier calls dispatched.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        wall_start = _wallclock.perf_counter_ns()
        try:
            if self._fast:
                self._run_fast(until, max_events)
            else:
                self._run_generic(until, max_events)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self.wall_time_ns += _wallclock.perf_counter_ns() - wall_start

    def _run_fast(self, until: Optional[Time], max_events: Optional[int]) -> None:
        """Inline heap loop: pops ``(time, seq, event)`` tuples straight off
        ``HeapScheduler._heap``, recycles post events, and defers label
        accounting to a plain dict flushed when the run ends."""
        heap = self._scheduler._heap
        pool = self._event_pool
        counts = self._label_counts if self._count_labels else None
        pop = heappop
        events_local = 0
        try:
            if until is None and max_events is None:
                while heap:
                    when, _seq, event = pop(heap)
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        event._owner = None
                        continue
                    self._live -= 1
                    self._now = when
                    events_local += 1
                    if counts is not None:
                        label = event.label
                        try:
                            counts[label] += 1
                        except KeyError:
                            counts[label] = 1
                    callback = event.callback
                    if event._owner is None:
                        if len(pool) < EVENT_POOL_CAP:
                            event.callback = None
                            pool.append(event)
                    else:
                        event._owner = None
                    callback()
            else:
                ran_this_call = 0
                while heap:
                    head = heap[0]
                    when = head[0]
                    if until is not None and when > until:
                        break
                    pop(heap)
                    event = head[2]
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        event._owner = None
                        continue
                    self._live -= 1
                    self._now = when
                    events_local += 1
                    ran_this_call += 1
                    if max_events is not None and ran_this_call > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
                    if counts is not None:
                        label = event.label
                        try:
                            counts[label] += 1
                        except KeyError:
                            counts[label] = 1
                    callback = event.callback
                    if event._owner is None:
                        if len(pool) < EVENT_POOL_CAP:
                            event.callback = None
                            pool.append(event)
                    else:
                        event._owner = None
                    callback()
        finally:
            self._events_run += events_local
            if counts:
                self._flush_label_counts()

    def _run_generic(self, until: Optional[Time], max_events: Optional[int]) -> None:
        """Batched scheduler-agnostic loop (identical to the pre-pooling
        engine apart from recycling post events when pooling is on)."""
        scheduler = self._scheduler
        counters = self._dispatch_counters
        counting = self._count_labels
        pooling = self._pooling
        pool = self._event_pool
        ran_this_call = 0
        while True:
            batch = scheduler.pop_batch(until)
            if batch is None:
                break
            for event in batch:
                if event.cancelled:
                    # Lazy purge: cancelled events are dropped without
                    # running their callbacks.
                    self._cancelled_in_queue -= 1
                    event._owner = None
                    continue
                self._live -= 1
                self._now = event.time
                self._events_run += 1
                ran_this_call += 1
                if max_events is not None and ran_this_call > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                if counting:
                    label = event.label
                    counter = counters.get(label)
                    if counter is None:
                        counter = self.metrics.counter("engine", "dispatched",
                                                       label=label or "unlabeled")
                        counters[label] = counter
                    counter.value += 1
                callback = event.callback
                if event._owner is None:
                    if pooling and len(pool) < EVENT_POOL_CAP:
                        event.callback = None
                        pool.append(event)
                else:
                    event._owner = None
                callback()

    def run_for(self, duration: Time) -> None:
        """Run for *duration* nanoseconds of virtual time from now."""
        self.run(until=self._now + duration)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    # ------------------------------------------------------------- profiling

    def _flush_label_counts(self) -> None:
        """Drain the fast loop's deferred label counts into the registry."""
        counts = self._label_counts
        if not counts:
            return
        counters = self._dispatch_counters
        for label, n in counts.items():
            counter = counters.get(label)
            if counter is None:
                counter = self.metrics.counter("engine", "dispatched",
                                               label=label or "unlabeled")
                counters[label] = counter
            counter.value += n
        counts.clear()

    def profile(self) -> Dict[str, object]:
        """Engine profile: simulated vs wall time plus dispatch breakdown.

        Unlike ``metrics.snapshot()`` this includes wall-clock figures, so
        it is *not* reproducible across runs — use it for performance
        work, not for golden-file comparisons.

        The ``event_pool`` block reports the engine arena (reuses, current
        free-list size, hit rate over all dispatches) and ``packet_arenas``
        the per-class packet free lists.  When the simulator has recycled
        at least one event a lazy ``engine/pool_reuses`` counter is also
        materialised in the registry — only here, so snapshots taken
        without profiling stay byte-identical to unpooled runs.
        """
        self._flush_label_counts()
        dispatched = {
            label or "unlabeled": counter.value
            for label, counter in sorted(self._dispatch_counters.items())
        }
        wall = self.wall_time_ns
        reuses = self._pool_reuses
        if reuses:
            # Lazy: materialised only on profile(), so unprofiled runs stay
            # snapshot-neutral (the byte-identity guard depends on that).
            self.metrics.counter("engine", "pool_reuses").value = reuses
        try:
            from repro.net.packet import arena_stats
            packet_arenas = arena_stats()
        except ImportError:  # pragma: no cover - packet layer not loaded
            packet_arenas = {}
        return {
            "events_run": self._events_run,
            "sim_time_ns": self._now,
            "wall_time_ns": wall,
            "sim_to_wall_ratio": (self._now / wall) if wall else None,
            "queue_depth_max": self._queue_depth_gauge.value,
            "pending": self.pending(),
            "scheduler": self._scheduler.name,
            "pooling": self._pooling,
            "dispatched_by_label": dispatched,
            "event_pool": {
                "reuses": reuses,
                "free": len(self._event_pool),
                "hit_rate": (reuses / self._events_run) if self._events_run else 0.0,
            },
            "packet_arenas": packet_arenas,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now / SECOND:.6f}s pending={self.pending()} "
            f"run={self._events_run}>"
        )
