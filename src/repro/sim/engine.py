"""The discrete-event engine.

A :class:`Simulator` is the single authority for virtual time.  Components
never sleep or poll; they schedule callbacks with :meth:`Simulator.call_at`
or :meth:`Simulator.call_later` and the engine runs them in timestamp order.
Ties are broken by insertion order (FIFO), which keeps runs reproducible.

The engine also owns randomness.  Components draw jitter, loss decisions and
identifiers from named :class:`random.Random` streams handed out by
:meth:`Simulator.rng`; two components asking for different stream names never
perturb each other's sequences, so adding a new component does not change
existing results.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.trace import Trace
from repro.sim.units import SECOND

#: Simulated time: an integer count of nanoseconds since simulation start.
Time = int


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events sort by ``(time, seq)``: earlier deadlines first, and among
    equal deadlines the event scheduled first runs first.
    """

    time: Time
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its deadline arrives."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream is derived from it, so a
        simulation is fully determined by ``(seed, component behaviour)``.
    trace:
        Optional pre-built :class:`Trace`; a fresh one is created otherwise.
    """

    def __init__(self, seed: int = 0, trace: Optional[Trace] = None) -> None:
        self._now: Time = 0
        self._seq: int = 0
        self._queue: List[Event] = []
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self.trace: Trace = trace if trace is not None else Trace(self)
        self._running = False
        self._events_run = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> Time:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for harness statistics)."""
        return self._events_run

    # ------------------------------------------------------------ randomness

    def rng(self, stream: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are keyed by name and derived from the master seed, so the
        sequence observed through one stream is independent of how many
        other streams exist or how often they are used.
        """
        existing = self._rngs.get(stream)
        if existing is not None:
            return existing
        derived = random.Random(f"{self._seed}/{stream}")
        self._rngs[stream] = derived
        return derived

    # ------------------------------------------------------------ scheduling

    def call_at(self, when: Time, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {when} ns; "
                f"it is already {self._now} ns"
            )
        event = Event(time=when, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_later(self, delay: Time, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run *delay* nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(self._now + delay, callback, label)

    # --------------------------------------------------------------- running

    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this bound.  Events scheduled
            exactly at ``until`` still run; the clock is then advanced to
            ``until`` so back-to-back ``run(until=...)`` calls tile time.
        max_events:
            Safety valve against runaway loops; raises if exceeded.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_run += 1
                if max_events is not None and self._events_run > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                event.callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: Time) -> None:
        """Run for *duration* nanoseconds of virtual time from now."""
        self.run(until=self._now + duration)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now / SECOND:.6f}s pending={self.pending()} "
            f"run={self._events_run}>"
        )
