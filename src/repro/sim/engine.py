"""The discrete-event engine.

A :class:`Simulator` is the single authority for virtual time.  Components
never sleep or poll; they schedule callbacks with :meth:`Simulator.call_at`
or :meth:`Simulator.call_later` and the engine runs them in timestamp order.
Ties are broken by insertion order (FIFO), which keeps runs reproducible.

The engine also owns randomness.  Components draw jitter, loss decisions and
identifiers from named :class:`random.Random` streams handed out by
:meth:`Simulator.rng`; two components asking for different stream names never
perturb each other's sequences, so adding a new component does not change
existing results.

Finally the engine owns observability: a per-simulation
:class:`~repro.obs.metrics.MetricsRegistry` (``sim.metrics``) that protocol
components record into, plus its own profiling — per-label dispatch
counters, a high-water queue-depth gauge (live events only; cancelled
events are excluded), and wall-clock accounting surfaced via
:meth:`Simulator.profile`.  Wall time is deliberately *not* in the
registry: the metrics snapshot must be byte-identical across same-seed
runs, and wall clocks are not.

Performance notes (the engine is the hottest loop in the repository):

* :class:`Event` is a hand-rolled ``__slots__`` class, not a dataclass —
  event construction happens once per scheduled callback and the slotted
  layout roughly halves its cost (``python -m repro.bench`` tracks it).
* The event queue is a pluggable :class:`~repro.sim.scheduler.Scheduler`
  (binary heap by default, hierarchical timer wheel as an alternative)
  that hands back *batches* of same-timestamp events, so a burst of
  simultaneous timers pays one queue operation, not one per event.
* Dispatch labels are interned at scheduling time, making the per-event
  counter lookup a pointer-keyed dict hit.
"""

from __future__ import annotations

import random
import sys
import time as _wallclock
from typing import Callable, Dict, Optional, Union

from repro.obs.capture import note_simulator
from repro.obs.metrics import Counter, MetricsRegistry
from repro.sim.scheduler import Scheduler, create_scheduler
from repro.sim.trace import Trace
from repro.sim.units import SECOND

#: Simulated time: an integer count of nanoseconds since simulation start.
Time = int

_intern = sys.intern


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events sort by ``(time, seq)``: earlier deadlines first, and among
    equal deadlines the event scheduled first runs first.

    This is also the public cancellation handle: everything
    :meth:`Simulator.call_at`/:meth:`Simulator.call_later` returns is an
    :class:`Event`, so components should annotate stored timers as
    ``Optional[Event]`` and call :meth:`cancel` without casts.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_owner")

    def __init__(self, time: Time, seq: int, callback: Callable[[], None],
                 label: str = "", cancelled: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        # The owning Simulator while the event sits in its queue; cleared on
        # pop so a late cancel() cannot corrupt the queue accounting.
        self._owner: Optional["Simulator"] = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.time, self.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq} {self.label!r}{state}>"

    def cancel(self) -> None:
        """Prevent the callback from running when its deadline arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named RNG stream is derived from it, so a
        simulation is fully determined by ``(seed, component behaviour)``.
    trace:
        Optional pre-built :class:`Trace`; a fresh one is created otherwise.
    metrics:
        Optional pre-built :class:`MetricsRegistry`; a fresh one is created
        otherwise.  Passing a shared registry lets cooperating simulations
        aggregate, at the cost of label discipline being on the caller.
    scheduler:
        Event queue implementation: a :class:`~repro.sim.scheduler.Scheduler`
        instance, a registered name (``"heap"``, ``"wheel"``), or ``None``
        for the default heap.  Both built-ins order events identically, so
        the choice affects wall time only, never results.
    """

    def __init__(self, seed: int = 0, trace: Optional[Trace] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 scheduler: Union[str, Scheduler, None] = None) -> None:
        self._now: Time = 0
        self._seq: int = 0
        self._scheduler: Scheduler = create_scheduler(scheduler)
        self._seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self.trace: Trace = trace if trace is not None else Trace(self)
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry())
        self._running = False
        self._events_run = 0
        # O(1) accounting of cancelled-but-still-queued events, so that
        # pending() and the depth gauge never scan the queue.
        self._cancelled_in_queue = 0
        self._queue_depth_gauge = self.metrics.gauge("engine",
                                                     "queue_depth_max")
        self._dispatch_counters: Dict[str, Counter] = {}
        #: Wall-clock nanoseconds spent inside run() (profiling only; kept
        #: out of the metrics registry to preserve snapshot determinism).
        self.wall_time_ns: int = 0
        note_simulator(self)

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> Time:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for harness statistics)."""
        return self._events_run

    @property
    def scheduler(self) -> Scheduler:
        """The event queue implementation in use."""
        return self._scheduler

    # ------------------------------------------------------------ randomness

    def rng(self, stream: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are keyed by name and derived from the master seed, so the
        sequence observed through one stream is independent of how many
        other streams exist or how often they are used.
        """
        existing = self._rngs.get(stream)
        if existing is not None:
            return existing
        derived = random.Random(f"{self._seed}/{stream}")
        self._rngs[stream] = derived
        return derived

    # ------------------------------------------------------------ scheduling

    def call_at(self, when: Time, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run at absolute time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {when} ns; "
                f"it is already {self._now} ns"
            )
        event = Event(when, self._seq, callback, _intern(label))
        event._owner = self
        self._seq += 1
        self._scheduler.push(event)
        depth = len(self._scheduler) - self._cancelled_in_queue
        gauge = self._queue_depth_gauge
        if depth > gauge.value:
            gauge.value = depth
        return event

    def call_later(self, delay: Time, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run *delay* nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(self._now + delay, callback, label)

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; it no longer counts as live."""
        self._cancelled_in_queue += 1

    # --------------------------------------------------------------- running

    def run(self, until: Optional[Time] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this bound.  Events scheduled
            exactly at ``until`` still run; the clock is then advanced to
            ``until`` so back-to-back ``run(until=...)`` calls tile time.
        max_events:
            Safety valve against runaway loops; raises if this *call*
            executes more than ``max_events`` callbacks.  The budget is
            per-call: a fresh ``run()`` starts from zero, regardless of
            how many events earlier calls dispatched.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        wall_start = _wallclock.perf_counter_ns()
        scheduler = self._scheduler
        counters = self._dispatch_counters
        ran_this_call = 0
        try:
            while True:
                batch = scheduler.pop_batch(until)
                if batch is None:
                    break
                for event in batch:
                    if event.cancelled:
                        # Lazy purge: cancelled events are dropped without
                        # running their callbacks.
                        self._cancelled_in_queue -= 1
                        event._owner = None
                        continue
                    event._owner = None
                    self._now = event.time
                    self._events_run += 1
                    ran_this_call += 1
                    if max_events is not None and ran_this_call > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (runaway simulation?)"
                        )
                    label = event.label
                    counter = counters.get(label)
                    if counter is None:
                        counter = self.metrics.counter("engine", "dispatched",
                                                       label=label or "unlabeled")
                        counters[label] = counter
                    counter.value += 1
                    event.callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self.wall_time_ns += _wallclock.perf_counter_ns() - wall_start

    def run_for(self, duration: Time) -> None:
        """Run for *duration* nanoseconds of virtual time from now."""
        self.run(until=self._now + duration)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._scheduler) - self._cancelled_in_queue

    # ------------------------------------------------------------- profiling

    def profile(self) -> Dict[str, object]:
        """Engine profile: simulated vs wall time plus dispatch breakdown.

        Unlike ``metrics.snapshot()`` this includes wall-clock figures, so
        it is *not* reproducible across runs — use it for performance
        work, not for golden-file comparisons.
        """
        dispatched = {
            label or "unlabeled": counter.value
            for label, counter in sorted(self._dispatch_counters.items())
        }
        wall = self.wall_time_ns
        return {
            "events_run": self._events_run,
            "sim_time_ns": self._now,
            "wall_time_ns": wall,
            "sim_to_wall_ratio": (self._now / wall) if wall else None,
            "queue_depth_max": self._queue_depth_gauge.value,
            "pending": self.pending(),
            "scheduler": self._scheduler.name,
            "dispatched_by_label": dispatched,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now / SECOND:.6f}s pending={self.pending()} "
            f"run={self._events_run}>"
        )
