"""The worker pool: run trial lists in-process or across processes.

A :class:`Trial` names a module-level function by ``"module:function"``
path and carries its keyword arguments.  :class:`ParallelRunner` executes
a list of trials and returns their results **in submission order**, via
one of two interchangeable paths:

* ``jobs=1`` (or one trial, or no usable ``multiprocessing``) — plain
  in-process loop.  Parent-side :func:`repro.obs.capture_simulators`
  blocks see every simulator the trials build, exactly as before.
* ``jobs=N`` — a ``multiprocessing.Pool`` of N workers.  Each worker
  resolves the function path, runs the trial inside its own metrics
  capture, and ships back ``(result, merged MetricsRegistry)``; the
  parent feeds the returned registries into any active capture so
  ``--metrics`` reports are complete either way.

The function-path indirection (rather than pickling callables) is what
makes the pool spawn-safe: the child only needs to import the module,
which works under ``fork``, ``spawn`` and ``forkserver`` alike.
"""

from __future__ import annotations

import importlib
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.capture import (
    capture_active,
    capture_simulators,
    note_metrics_registry,
)
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Trial:
    """One independent unit of work: a function path plus its kwargs.

    ``func`` is a ``"package.module:function"`` reference to a
    module-level callable; ``params`` must be picklable (plain data plus
    :class:`~repro.config.Config` are both fine).  The callable returns
    plain data (dicts/lists/numbers), which keeps results cheap to ship
    between processes and trivially serializable for reports.
    """

    func: str
    params: Dict[str, Any] = field(default_factory=dict)


def resolve_trial(func_ref: str) -> Callable:
    """Import and return the callable named by ``"module:function"``."""
    module_name, sep, attr = func_ref.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"trial function reference must look like 'module:function', "
            f"got {func_ref!r}")
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"{module_name!r} has no attribute {attr!r}") from exc
    if not callable(func):
        raise ValueError(f"{func_ref!r} is not callable")
    return func


#: Worker payload: (function path, params, collect-metrics flag).
_Payload = Tuple[str, Dict[str, Any], bool]


def _run_payload(payload: _Payload):
    """Execute one trial in a worker process.

    Module-level so the pool can pickle it by reference under ``spawn``.
    Returns ``(result, registry-or-None)``; the registry is the merged
    metrics of every simulator the trial built, collected only when the
    parent asked (a capture block was active at submit time).
    """
    func_ref, params, collect = payload
    func = resolve_trial(func_ref)
    if not collect:
        return func(**params), None
    with capture_simulators() as sims:
        result = func(**params)
    registry = MetricsRegistry.merged(sim.metrics for sim in sims)
    return result, registry


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: 0/None means "one per CPU"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


class ParallelRunner:
    """Runs trial lists, serially or across a process pool.

    ``jobs`` — worker count; 1 means in-process, 0 means one per CPU.
    ``start_method`` — ``"fork"``/``"spawn"``/``"forkserver"``; None
    picks the platform default (fork on Linux — cheapest — spawn on
    macOS/Windows).  Results always come back in submission order, and a
    pool that cannot be created degrades to the in-process path rather
    than failing the run.
    """

    def __init__(self, jobs: int = 1,
                 start_method: Optional[str] = None) -> None:
        self.jobs = effective_jobs(jobs)
        self.start_method = start_method

    def run(self, trials: Iterable[Trial],
            collect_metrics: Optional[bool] = None) -> List[Any]:
        """Execute *trials*, returning their results in order.

        ``collect_metrics=None`` (the default) collects worker-side
        metrics registries exactly when a parent capture block is
        active, so ``--metrics`` works transparently; pass True/False to
        force.  Collected registries are fed to the active captures (or
        discarded when none is active).
        """
        trial_list = list(trials)
        if collect_metrics is None:
            collect_metrics = capture_active()
        if self.jobs <= 1 or len(trial_list) <= 1:
            return self._run_serial(trial_list)
        outcomes = self._run_pool(trial_list, collect_metrics)
        if outcomes is None:  # pool unavailable: degrade, don't fail
            return self._run_serial(trial_list)
        results: List[Any] = []
        for result, registry in outcomes:
            results.append(result)
            if registry is not None:
                note_metrics_registry(registry)
        return results

    def _run_serial(self, trials: Sequence[Trial]) -> List[Any]:
        # In-process: parent captures see the simulators directly, so no
        # registry plumbing is needed (or wanted — it would double count).
        return [resolve_trial(trial.func)(**trial.params) for trial in trials]

    def _run_pool(self, trials: Sequence[Trial], collect: bool):
        import multiprocessing

        payloads: List[_Payload] = [(trial.func, dict(trial.params), collect)
                                    for trial in trials]
        workers = min(self.jobs, len(trials))
        try:
            context = (multiprocessing.get_context(self.start_method)
                       if self.start_method
                       else multiprocessing.get_context())
            with context.Pool(processes=workers) as pool:
                # map() preserves submission order; chunksize 1 keeps the
                # coarse trials balanced across workers.
                return pool.map(_run_payload, payloads, chunksize=1)
        except (ImportError, OSError, ValueError) as exc:
            warnings.warn(
                f"multiprocessing unavailable ({exc!r}); "
                f"running {len(trials)} trials in-process",
                RuntimeWarning, stacklevel=3)
            return None


def run_trials(trials: Iterable[Trial], jobs: int = 1,
               runner: Optional[ParallelRunner] = None,
               collect_metrics: Optional[bool] = None) -> List[Any]:
    """Convenience wrapper: run *trials* with *runner* or a fresh one.

    Every ``run_*_experiment(jobs=...)`` entry point funnels through
    here, so the serial and parallel paths share one code path up to the
    pool itself.
    """
    active = runner if runner is not None else ParallelRunner(jobs=jobs)
    return active.run(trials, collect_metrics=collect_metrics)
