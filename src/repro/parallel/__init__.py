"""Sharded parallel experiment execution.

The experiment harnesses decompose into *trials*: pure, seed-addressed
units of work (``(params, seed) -> plain-data result``) that build their
own :class:`~repro.sim.engine.Simulator` and never share state.  This
package runs lists of such trials either in-process (``jobs=1``) or
across a ``multiprocessing`` worker pool (``jobs=N``), and guarantees
the two paths produce identical results:

* **Seeds are addressed by trial index, never by worker.**  A trial's
  seed is a pure function of the experiment's base seed and the trial's
  position (:mod:`repro.parallel.seeds`), so adding workers reassigns
  *where* a trial runs but never *what* it computes.
* **Results merge in trial order.**  The pool preserves submission
  order, so the merge/summarize step sees the same sequence whether one
  process ran everything or eight processes raced.
* **Spawn-safe.**  Trials are referenced by ``"module:function"`` path
  and carry picklable params, so the pool works under the ``spawn``
  start method (macOS/Windows default) as well as ``fork``.
* **Graceful degradation.**  ``jobs=1``, a single trial, or a platform
  without working ``multiprocessing`` all fall back to the in-process
  loop — same results, no pool.

See ``docs/PERFORMANCE.md`` ("Parallel execution") for the user-facing
flags and the determinism contract.
"""

from repro.parallel.runner import (
    ParallelRunner,
    Trial,
    resolve_trial,
    run_trials,
)
from repro.parallel.seeds import (
    balanced_shards,
    shard_slices,
    spawn_seed,
    trial_seeds,
)

__all__ = [
    "ParallelRunner",
    "Trial",
    "resolve_trial",
    "run_trials",
    "spawn_seed",
    "trial_seeds",
    "shard_slices",
    "balanced_shards",
]
