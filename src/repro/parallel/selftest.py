"""Tiny module-level trial functions for exercising the worker pool.

The pool references trials by ``"module:function"`` path, so its tests
need real importable functions — cheap ones, importable in spawn-started
children too.  They double as minimal examples of the trial contract:
picklable params in, plain data out, any simulators built inside show up
in metrics captures.
"""

from __future__ import annotations

from repro.parallel.seeds import spawn_seed
from repro.sim.engine import Simulator
from repro.sim.units import ms


def echo_trial(value) -> dict:
    """The identity trial: returns its (picklable) input."""
    return {"value": value}


def seeded_sim_trial(seed: int, timers: int = 8) -> dict:
    """Builds a tiny simulation: *timers* callbacks, one counter metric.

    Deterministic in *seed* via :func:`spawn_seed`, so tests can check
    that results depend only on params, never on which worker ran them.
    """
    sim = Simulator(seed=seed)
    counter = sim.metrics.counter("selftest", "fired")
    for index in range(timers):
        sim.call_at(ms(index + 1), counter.inc, label="selftest")
    sim.run()
    return {"seed": seed, "fired": counter.value,
            "derived": spawn_seed(seed, timers)}


def failing_trial(message: str = "boom") -> dict:
    """Raises; lets tests assert worker exceptions surface in the parent."""
    raise RuntimeError(message)
