"""Deterministic seed derivation and shard partitioning.

The determinism contract for parallel runs rests on one rule: **a
trial's seed depends only on the experiment's base seed and the trial's
logical position — never on how many workers are running or which worker
picks the trial up.**  These helpers make that rule easy to follow and
hard to break.

:func:`spawn_seed` derives child seeds by hashing an index path
(``spawn_seed(base, fleet_index, shard_index)``), giving well-separated
streams even when base seeds are small consecutive integers.
:func:`trial_seeds` is the simple arithmetic form the pre-parallel
experiments already used (``seed + index * stride``), kept so their
reports stay byte-identical to the serial originals.
"""

from __future__ import annotations

from typing import List, Sequence

_MASK64 = (1 << 64) - 1
#: splitmix64 constants (Steele, Lea & Flood: "Fast Splittable PRNGs").
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(value: int) -> int:
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK64
    return value ^ (value >> 31)


def spawn_seed(base_seed: int, *path: int) -> int:
    """A child seed for the trial addressed by *path* under *base_seed*.

    Pure and order-sensitive: ``spawn_seed(s, 1, 2)`` differs from
    ``spawn_seed(s, 2, 1)``, and neither depends on worker count or
    execution order.  Output is a 63-bit non-negative integer (every
    ``Simulator(seed=...)`` consumer accepts it).
    """
    value = base_seed & _MASK64
    for index in path:
        value = _splitmix64(value ^ (index & _MASK64))
    return value & (_MASK64 >> 1)


def trial_seeds(base_seed: int, count: int, stride: int = 1) -> List[int]:
    """The legacy arithmetic seed sequence ``base + index * stride``.

    This is what the serial experiments always did; the builders keep
    using it so refactored reports match the originals byte for byte.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [base_seed + index * stride for index in range(count)]


def shard_slices(n_items: int, shards: int) -> List[slice]:
    """Contiguous, balanced, order-preserving slices of ``range(n_items)``.

    The first ``n_items % shards`` shards get one extra item.  Useful for
    chunking an ordered trial list; concatenating the slices in order
    always reproduces the original sequence.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    shards = min(shards, max(n_items, 1))
    base, extra = divmod(n_items, shards)
    out: List[slice] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


def balanced_shards(total: int, shard_capacity: int) -> List[int]:
    """Split *total* items into near-equal shard sizes of at most
    *shard_capacity* each.

    ``balanced_shards(250, 100) == [84, 83, 83]`` — the shard count is
    the minimum that respects the capacity, and sizes differ by at most
    one so no shard dominates wall-clock.
    """
    if shard_capacity <= 0:
        raise ValueError(f"shard_capacity must be positive, got {shard_capacity}")
    if total <= 0:
        return []
    shards = -(-total // shard_capacity)  # ceil
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def partition(items: Sequence, shards: int) -> List[List]:
    """Materialized :func:`shard_slices` partition of *items*."""
    return [list(items[piece]) for piece in shard_slices(len(items), shards)]
