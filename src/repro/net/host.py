"""Host: a node with interfaces and a full protocol stack.

A :class:`Host` wires together the IP layer, ICMP, UDP and TCP services and
a loopback interface.  Correspondent hosts in the paper are exactly this —
"all applications on ... correspondent hosts need not know anything about
mobility" — so this class contains no mobile-IP code at all.  The mobile
host and home agent in :mod:`repro.core` build on it through the public
extension points (route hook, protocol registration, extra interfaces).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import Config, DEFAULT_CONFIG, HostTimings
from repro.net.addressing import IPAddress, Subnet
from repro.net.icmp import ICMPService
from repro.net.interface import LoopbackInterface, NetworkInterface
from repro.net.ip import IPStack
from repro.net.routing import RouteEntry
from repro.net.tcp import TCPService
from repro.net.udp import UDPService
from repro.sim.engine import Simulator


class Host:
    """A network node: interfaces + IP + ICMP + UDP + TCP."""

    def __init__(self, sim: Simulator, name: str,
                 config: Config = DEFAULT_CONFIG,
                 timings: Optional[HostTimings] = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config
        self.timings = timings if timings is not None else config.generic_host
        self.interfaces: List[NetworkInterface] = []
        self.ip = IPStack(sim, self, config, self.timings)
        self.icmp = ICMPService(sim, self, config, self.timings)
        self.udp = UDPService(sim, self, config, self.timings)
        self.tcp = TCPService(sim, self, config, self.timings)
        self.loopback = LoopbackInterface(sim, config, name=f"lo.{name}")
        self.add_interface(self.loopback)

    # -------------------------------------------------------------- interfaces

    def add_interface(self, iface: NetworkInterface) -> NetworkInterface:
        """Attach an interface to this host's stack."""
        if iface.host is not None and iface.host is not self:
            raise ValueError(f"{iface.name} already belongs to {iface.host.name}")
        iface.host = self
        if iface not in self.interfaces:
            self.interfaces.append(iface)
            self.ip.invalidate_local_cache()
        return iface

    def interface(self, name: str) -> NetworkInterface:
        """Look an interface up by name (raises KeyError if absent)."""
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise KeyError(f"{self.name} has no interface {name!r}")

    # ------------------------------------------------------------ convenience

    def configure_interface(self, iface: NetworkInterface, address: IPAddress,
                            net: Subnet, bring_up: bool = True,
                            connected_route: bool = True) -> None:
        """Instantly configure an interface (for topology construction).

        Unlike :meth:`NetworkInterface.configure`, this is immediate: it is
        the "the network was already set up before the experiment started"
        path.  Experiments that *measure* configuration use the interface's
        own delayed methods instead.
        """
        iface.subnet = net
        iface.add_address(address, make_primary=True)
        if bring_up:
            iface.state = iface.state.__class__.UP
            # Let technology hooks (radio channel publication) fire.
            iface._on_address_added(address)
        if connected_route:
            self.ip.routes.add(RouteEntry(destination=net, interface=iface))

    def add_default_route(self, gateway: IPAddress,
                          iface: Optional[NetworkInterface] = None) -> RouteEntry:
        """Install a default route via *gateway*.

        If *iface* is omitted, the interface whose subnet contains the
        gateway is used.
        """
        if iface is None:
            iface = self.interface_for_subnet_of(gateway)
        return self.ip.routes.add_default(iface, gateway=gateway)

    def interface_for_subnet_of(self, addr: IPAddress) -> NetworkInterface:
        """The interface whose subnet contains *addr* (KeyError if none)."""
        for iface in self.interfaces:
            if iface.subnet is not None and addr in iface.subnet:
                return iface
        raise KeyError(f"{self.name} has no interface on {addr}'s subnet")

    def primary_address(self) -> Optional[IPAddress]:
        """The first non-loopback address, for display and client IDs."""
        for iface in self.interfaces:
            if isinstance(iface, LoopbackInterface):
                continue
            if iface.address is not None:
                return iface.address
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} addr={self.primary_address()}>"
