"""Selective acknowledgment (RFC 2018) bookkeeping for the TCP sender
and receiver.

Two small, pure data structures — no timers, no wire format, no
randomness — so both sides of SACK stay unit-testable in isolation:

* :class:`SackScoreboard` — the sender's view of which sequence ranges
  the receiver has reported holding.  The connection consults it to skip
  already-received data when retransmitting and to pick the next hole
  during fast recovery.  SACK information is advisory (RFC 2018 §8): a
  receiver may *renege* and discard data it previously SACKed, so the
  scoreboard is cleared on every retransmission timeout and everything
  from ``snd_una`` is eligible for retransmission again.
* :class:`ReassemblyBuffer` — the receiver's out-of-order segment store.
  It holds whatever arrived above ``rcv_nxt``, yields the SACK blocks to
  advertise, and drains contiguous runs once the hole fills.

Sequence ranges are half-open ``[start, end)`` byte intervals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: At most this many SACK blocks ride in one segment (RFC 2018: the
#: option space allows 3 when timestamps are in use; we advertise the
#: lowest three so the sender repairs holes front-to-back).
MAX_SACK_BLOCKS = 3

Block = Tuple[int, int]


class SackScoreboard:
    """Sender-side record of receiver-reported ``[start, end)`` ranges."""

    __slots__ = ("_blocks",)

    def __init__(self) -> None:
        self._blocks: List[Block] = []   # sorted, non-overlapping

    def __bool__(self) -> bool:
        return bool(self._blocks)

    @property
    def blocks(self) -> Tuple[Block, ...]:
        """The recorded ranges, sorted and coalesced."""
        return tuple(self._blocks)

    def record(self, blocks: Tuple[Block, ...], snd_una: int) -> int:
        """Fold newly advertised blocks in; returns newly-SACKed bytes.

        Blocks at or below ``snd_una`` are stale (already cumulatively
        acknowledged) and ignored, as are malformed ``end <= start``
        blocks — a hostile or confused peer must not corrupt the board.
        """
        newly = 0
        for start, end in blocks:
            if end <= start:
                continue
            start = max(start, snd_una)
            if end <= start:
                continue
            newly += self._insert(start, end)
        return newly

    def _insert(self, start: int, end: int) -> int:
        merged: List[Block] = []
        added = end - start
        for b_start, b_end in self._blocks:
            if b_end < start or b_start > end:
                merged.append((b_start, b_end))
                continue
            # Overlapping or adjacent: coalesce, discounting the overlap.
            added -= max(0, min(end, b_end) - max(start, b_start))
            start = min(start, b_start)
            end = max(end, b_end)
        merged.append((start, end))
        merged.sort()
        self._blocks = merged
        return max(added, 0)

    def advance(self, snd_una: int) -> None:
        """Drop everything the cumulative ACK now covers."""
        self._blocks = [(max(start, snd_una), end)
                        for start, end in self._blocks if end > snd_una]

    def clear(self) -> None:
        """Forget everything (RTO fired: the receiver may have reneged)."""
        self._blocks = []

    def is_sacked(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` lies entirely inside one SACKed run."""
        for b_start, b_end in self._blocks:
            if b_start <= start and end <= b_end:
                return True
        return False

    def first_hole(self, snd_una: int, snd_max: int) -> Optional[Block]:
        """The lowest un-SACKed ``[start, end)`` range, or ``None``.

        ``None`` means nothing between ``snd_una`` and ``snd_max`` needs
        retransmission (everything is either cumulatively or selectively
        acknowledged).
        """
        cursor = snd_una
        for b_start, b_end in self._blocks:
            if b_end <= cursor:
                continue
            if b_start > cursor:
                return (cursor, min(b_start, snd_max))
            cursor = b_end
            if cursor >= snd_max:
                return None
        if cursor < snd_max:
            return (cursor, snd_max)
        return None

    def sacked_bytes(self) -> int:
        """Total bytes currently marked as received out of order."""
        return sum(end - start for start, end in self._blocks)


class ReassemblyBuffer:
    """Receiver-side store for segments that arrived above ``rcv_nxt``."""

    __slots__ = ("_segments",)

    def __init__(self) -> None:
        self._segments: Dict[int, object] = {}   # seq -> TCPSegment

    def __bool__(self) -> bool:
        return bool(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def store(self, seq: int, segment: object) -> None:
        """Keep one out-of-order segment (first copy wins)."""
        self._segments.setdefault(seq, segment)

    def pop(self, seq: int) -> Optional[object]:
        """Remove and return the segment starting exactly at *seq*."""
        return self._segments.pop(seq, None)

    def drop_below(self, rcv_nxt: int) -> None:
        """Discard segments the cumulative ACK has overtaken."""
        self._segments = {seq: seg for seq, seg in self._segments.items()
                          if seq >= rcv_nxt}

    def sack_blocks(self, seq_space) -> Tuple[Block, ...]:
        """The ranges to advertise, lowest-first, coalesced, capped.

        *seq_space* maps a stored segment to the sequence space it
        consumes (payload bytes plus SYN/FIN), so this module needs no
        knowledge of the segment class.
        """
        if not self._segments:
            return ()
        ranges = sorted((seq, seq + seq_space(segment))
                        for seq, segment in self._segments.items())
        merged: List[Block] = [ranges[0]]
        for start, end in ranges[1:]:
            last_start, last_end = merged[-1]
            if start <= last_end:
                merged[-1] = (last_start, max(last_end, end))
            else:
                merged.append((start, end))
        return tuple(merged[:MAX_SACK_BLOCKS])
