"""Network interfaces and their device state machines.

Figure 6's headline is that cold switching loses packets "due to bringing up
the new interface", so interfaces here are real state machines — DOWN,
STARTING, UP, STOPPING — whose transitions take the calibrated times in
:class:`repro.config.DeviceTimings` (plus jitter).  While an interface is
not UP it neither sends nor receives; every packet that hits it is counted
and traced so the experiment harnesses can attribute loss.

Interfaces can hold several IPv4 addresses at once (Linux IP aliases).  The
same-subnet switch experiment relies on this: the new care-of address is
added first and the old one removed later, which is what bounds the loss
window to well under the total 7.39 ms switch time.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.config import Config, DeviceTimings
from repro.net.addressing import IPAddress, MACAddress, Subnet
from repro.net.arp import ARPMessage, ARPService
from repro.net.packet import IPPacket
from repro.sim.engine import Simulator, Time
from repro.sim.randomness import jittered

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.link import EthernetSegment, PointToPointLink, RadioChannel


class InterfaceState(enum.Enum):
    """Device operational state."""

    DOWN = "down"
    STARTING = "starting"
    UP = "up"
    STOPPING = "stopping"


class InterfaceError(RuntimeError):
    """Raised on invalid interface operations (e.g. send while detached)."""


Callback = Optional[Callable[[], None]]


class NetworkInterface:
    """Base class: state machine, address list, statistics."""

    def __init__(self, sim: Simulator, name: str, device: DeviceTimings,
                 config: Config) -> None:
        self.sim = sim
        self.name = name
        self.device = device
        self.config = config
        self.host: Optional["Host"] = None
        self._state = InterfaceState.DOWN
        self._addresses: List[IPAddress] = []
        self._subnet: Optional[Subnet] = None
        self._rng = sim.rng(f"device:{name}")
        # Statistics: the loss-accounting backbone of the experiments.
        self.tx_packets = 0
        self.rx_packets = 0
        self.dropped_down = 0
        self.dropped_no_route = 0
        self._tx_counter = sim.metrics.counter("iface", "tx_packets",
                                               iface=name)
        self._rx_counter = sim.metrics.counter("iface", "rx_packets",
                                               iface=name)
        self._drop_counter = sim.metrics.counter("iface", "dropped_packets",
                                                 iface=name)

    def _count_tx(self) -> None:
        """Account one packet handed to the medium (mirrors ``tx_packets``)."""
        self.tx_packets += 1
        self._tx_counter.value += 1

    def _count_drop_down(self) -> None:
        """Account one packet lost because the device was not UP."""
        self.dropped_down += 1
        self._drop_counter.value += 1

    # ------------------------------------------------------------- addresses

    @property
    def address(self) -> Optional[IPAddress]:
        """The primary (preferred source) address, if any."""
        return self._addresses[0] if self._addresses else None

    @property
    def addresses(self) -> List[IPAddress]:
        """All addresses (primary first)."""
        return list(self._addresses)

    def owns_address(self, addr: IPAddress) -> bool:
        """True if *addr* is configured on this interface."""
        return addr in self._addresses

    @property
    def subnet(self) -> Optional[Subnet]:
        """The connected prefix (None until configured)."""
        return self._subnet

    @subnet.setter
    def subnet(self, value: Optional[Subnet]) -> None:
        self._subnet = value
        if self.host is not None:
            self.host.ip.invalidate_local_cache()

    def add_address(self, addr: IPAddress, make_primary: bool = False) -> None:
        """Install *addr* (an alias) on this interface."""
        if self.host is not None:
            self.host.ip.invalidate_local_cache()
        if addr in self._addresses:
            if make_primary:
                self._addresses.remove(addr)
                self._addresses.insert(0, addr)
            return
        if make_primary:
            self._addresses.insert(0, addr)
        else:
            self._addresses.append(addr)
        self._on_address_added(addr)
        self.sim.trace.emit("device", "address_added", interface=self.name,
                            address=str(addr))

    def remove_address(self, addr: IPAddress) -> None:
        """Remove *addr*; packets for it are no longer accepted."""
        if addr not in self._addresses:
            return
        if self.host is not None:
            self.host.ip.invalidate_local_cache()
        self._addresses.remove(addr)
        self._on_address_removed(addr)
        self.sim.trace.emit("device", "address_removed", interface=self.name,
                            address=str(addr))

    def _on_address_added(self, addr: IPAddress) -> None:
        """Technology hook (radio publishes to the channel, etc.)."""

    def _on_address_removed(self, addr: IPAddress) -> None:
        """Technology hook."""

    # ------------------------------------------------------- state machine

    @property
    def state(self) -> InterfaceState:
        """Device operational state."""
        return self._state

    @state.setter
    def state(self, value: InterfaceState) -> None:
        self._state = value
        # Route lookups are memoized per destination and filtered by
        # interface liveness, so any state change on an attached interface
        # invalidates its host's cache.  Transitions are rare (handoffs);
        # lookups are per-packet.
        host = self.host
        if host is not None:
            host.ip.routes.invalidate_cache()

    @property
    def is_up(self) -> bool:
        """True when the device is operational."""
        return self._state == InterfaceState.UP

    def _jittered(self, base: int) -> int:
        return jittered(self._rng, base, self.config.jitter)

    def bring_up(self, on_done: Callback = None) -> None:
        """``ifconfig up``: after the device's up-delay, start receiving."""
        if self.state == InterfaceState.UP:
            if on_done is not None:
                on_done()
            return
        if self.state == InterfaceState.STARTING:
            raise InterfaceError(f"{self.name} is already starting")
        self.state = InterfaceState.STARTING
        self.sim.trace.emit("device", "up_start", interface=self.name)

        def finish() -> None:
            if self.state != InterfaceState.STARTING:
                # A bring_down (e.g. an injected flap) raced this bring_up;
                # the later operation wins.
                self.sim.trace.emit("device", "up_aborted", interface=self.name)
                return
            self.state = InterfaceState.UP
            self.sim.trace.emit("device", "up_done", interface=self.name)
            for addr in self._addresses:
                self._on_address_added(addr)
            if on_done is not None:
                on_done()

        self.sim.call_later(self._jittered(self.device.up_delay), finish,
                            label=f"ifup:{self.name}")

    def bring_down(self, on_done: Callback = None) -> None:
        """``ifconfig down``: stop sending/receiving after the down-delay."""
        if self.state == InterfaceState.DOWN:
            if on_done is not None:
                on_done()
            return
        self.state = InterfaceState.STOPPING
        self.sim.trace.emit("device", "down_start", interface=self.name)

        def finish() -> None:
            if self.state != InterfaceState.STOPPING:
                self.sim.trace.emit("device", "down_aborted",
                                    interface=self.name)
                return
            self.state = InterfaceState.DOWN
            self.sim.trace.emit("device", "down_done", interface=self.name)
            if on_done is not None:
                on_done()

        self.sim.call_later(self._jittered(self.device.down_delay), finish,
                            label=f"ifdown:{self.name}")

    def flap(self, down_for: Time, on_restored: Callback = None) -> None:
        """Force the device down, then bring it back after *down_for* ns.

        The fault injector's interface-flap primitive.  If something else
        restarted the device while it was down, the restore step defers to
        it rather than fighting over the state machine.
        """
        self.sim.trace.emit("device", "flap", interface=self.name,
                            down_ms=down_for / 1_000_000)

        def restore() -> None:
            if self.state == InterfaceState.DOWN:
                self.bring_up(on_restored)
            elif on_restored is not None:
                on_restored()

        def downed() -> None:
            self.sim.call_later(down_for, restore,
                                label=f"flap-restore:{self.name}")

        self.bring_down(downed)

    def configure(self, addr: IPAddress, net: Subnet,
                  on_done: Callback = None, make_primary: bool = True) -> None:
        """Configure an address (Figure 7's "configure interface" stage).

        The address becomes live only when the configure delay elapses,
        matching the ioctl round-trip on the real system.
        """
        self.sim.trace.emit("device", "configure_start", interface=self.name,
                            address=str(addr))

        def finish() -> None:
            self.subnet = net
            self.add_address(addr, make_primary=make_primary)
            self.sim.trace.emit("device", "configure_done", interface=self.name,
                                address=str(addr))
            if on_done is not None:
                on_done()

        self.sim.call_later(self._jittered(self.device.configure_delay), finish,
                            label=f"ifconfig:{self.name}")

    # ------------------------------------------------------------------ I/O

    def send_ip(self, packet: IPPacket, next_hop: IPAddress) -> None:
        """Transmit an IP packet toward *next_hop* (technology-specific)."""
        raise NotImplementedError

    def _guard_send(self, packet: IPPacket) -> bool:
        """Common send-side checks; returns True if the packet may go out."""
        if self.state != InterfaceState.UP:
            self._count_drop_down()
            self.sim.trace.emit("device", "tx_drop_down", interface=self.name,
                                packet=packet.describe())
            return False
        return True

    def _deliver_to_host(self, packet: IPPacket) -> None:
        if self.state != InterfaceState.UP:
            self._count_drop_down()
            self.sim.trace.emit("device", "rx_drop_down", interface=self.name,
                                packet=packet.describe())
            return
        if self.host is None:
            raise InterfaceError(f"{self.name} is not attached to a host")
        self.rx_packets += 1
        self._rx_counter.value += 1
        self.host.ip.receive_packet(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.state.value} {self.address}>"


class EthernetInterface(NetworkInterface):
    """An Ethernet NIC on a shared segment, with its own ARP service."""

    def __init__(self, sim: Simulator, name: str, mac: MACAddress,
                 config: Config, device: Optional[DeviceTimings] = None) -> None:
        super().__init__(sim, name, device or config.ethernet_device, config)
        self.mac = mac
        self.segment: Optional["EthernetSegment"] = None
        self.arp = ARPService(self)

    def attach(self, segment: "EthernetSegment") -> None:
        """Plug into an Ethernet segment."""
        if self.segment is not None:
            raise InterfaceError(f"{self.name} already attached")
        self.segment = segment
        segment.attach(self)

    def detach(self) -> None:
        """Unplug the cable (physically moving the mobile host)."""
        if self.segment is None:
            return
        self.segment.detach(self)
        self.segment = None
        self.arp.flush()

    def send_ip(self, packet: IPPacket, next_hop: IPAddress) -> None:
        """Transmit toward *next_hop*, resolving its MAC via ARP."""
        if not self._guard_send(packet):
            return
        if self.segment is None:
            # The cable is unplugged: packets fall on the floor, exactly
            # as on real hardware.
            self._count_drop_down()
            self.sim.trace.emit("device", "tx_drop_unplugged",
                                interface=self.name)
            return
        self._count_tx()
        if next_hop.is_limited_broadcast or (
            self.subnet is not None and next_hop == self.subnet.broadcast
        ):
            self.transmit_ip_frame(packet, broadcast=True)
            return
        self.arp.resolve_and_send(packet, next_hop)

    def transmit_ip_frame(self, packet: IPPacket, mac: Optional[MACAddress] = None,
                          broadcast: bool = False) -> None:
        """Frame *packet* and put it on the segment (post-ARP path)."""
        from repro.net.addressing import BROADCAST_MAC
        from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame

        if self.segment is None or self.state != InterfaceState.UP:
            self._count_drop_down()
            return
        dst = BROADCAST_MAC if broadcast else mac
        assert dst is not None
        frame = EthernetFrame(src=self.mac, dst=dst, ethertype=ETHERTYPE_IPV4,
                              payload=packet)
        self.segment.transmit(frame, self)

    def transmit_arp(self, message: ARPMessage, dst: MACAddress) -> None:
        """Frame and transmit one ARP message."""
        from repro.net.ethernet import ETHERTYPE_ARP, EthernetFrame

        if self.segment is None or self.state not in (InterfaceState.UP, InterfaceState.STARTING):
            return
        frame = EthernetFrame(src=self.mac, dst=dst, ethertype=ETHERTYPE_ARP,
                              payload=message)
        self.segment.transmit(frame, self)

    def deliver_frame(self, frame: object) -> None:
        """Receive one frame from the segment."""
        from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame

        assert isinstance(frame, EthernetFrame)
        if self.state != InterfaceState.UP:
            self._count_drop_down()
            return
        if frame.dst != self.mac and not frame.dst.is_broadcast:
            return  # not for us; NIC filter discards silently
        if frame.ethertype == ETHERTYPE_ARP:
            assert isinstance(frame.payload, ARPMessage)
            self.arp.handle(frame.payload)
            return
        if frame.ethertype == ETHERTYPE_IPV4:
            assert isinstance(frame.payload, IPPacket)
            self._deliver_to_host(frame.payload)


class RadioInterface(NetworkInterface):
    """A Metricom radio behind a serial port (the STRIP driver's world).

    Outgoing packets pay the serial-line cost (115.2 kbit/s) before the
    radio hop; incoming packets pay it after.  Starmode has no ARP: owned
    addresses are published to the channel's static map.
    """

    def __init__(self, sim: Simulator, name: str, config: Config,
                 device: Optional[DeviceTimings] = None) -> None:
        super().__init__(sim, name, device or config.radio_device, config)
        self.channel: Optional["RadioChannel"] = None
        # The serial line is full duplex; each direction serializes
        # independently (115.2 kbit/s each way).
        self._serial_busy_until = {"tx": 0, "rx": 0}

    def attach(self, channel: "RadioChannel") -> None:
        """Join a radio channel."""
        if self.channel is not None:
            raise InterfaceError(f"{self.name} already attached")
        self.channel = channel
        channel.attach(self)

    def _serial_finish_time(self, size_bytes: int, direction: str) -> int:
        """When this packet clears the serial line (FIFO per direction)."""
        from repro.sim.units import transmission_delay

        serial = self.config.serial
        start = max(self.sim.now, self._serial_busy_until[direction])
        finish = start + transmission_delay(size_bytes, serial.bandwidth_bps)
        self._serial_busy_until[direction] = finish
        return finish + serial.latency

    def _on_address_added(self, addr: IPAddress) -> None:
        if self.channel is not None and self.state == InterfaceState.UP:
            self.channel.publish(addr, self)

    def _on_address_removed(self, addr: IPAddress) -> None:
        if self.channel is not None:
            self.channel.withdraw(addr)

    def send_ip(self, packet: IPPacket, next_hop: IPAddress) -> None:
        """Haul the packet over the serial line, then radiate it."""
        if not self._guard_send(packet):
            return
        if self.channel is None:
            raise InterfaceError(f"{self.name} has no channel")
        self._count_tx()
        deliver_at = self._serial_finish_time(packet.size_bytes, "tx")
        self.sim.post_at(
            deliver_at,
            lambda: self._radio_transmit(packet, next_hop),
            label=f"serial-tx:{self.name}",
        )

    def _radio_transmit(self, packet: IPPacket, next_hop: IPAddress) -> None:
        if self.channel is None or self.state != InterfaceState.UP:
            self._count_drop_down()
            return
        self.channel.transmit(packet, next_hop, self)

    def deliver_from_radio(self, packet: IPPacket) -> None:
        """Packet arrived over the air; haul it across the serial line."""
        if self.state != InterfaceState.UP:
            self._count_drop_down()
            self.sim.trace.emit("device", "rx_drop_down", interface=self.name,
                                packet=packet.describe())
            return
        deliver_at = self._serial_finish_time(packet.size_bytes, "rx")
        self.sim.post_at(
            deliver_at,
            lambda: self._deliver_to_host(packet),
            label=f"serial-rx:{self.name}",
        )


class PointToPointInterface(NetworkInterface):
    """One end of a point-to-point IP link (backbone hop, PPP, SLIP)."""

    def __init__(self, sim: Simulator, name: str, config: Config,
                 device: Optional[DeviceTimings] = None) -> None:
        super().__init__(sim, name, device or config.virtual_device, config)
        self.link: Optional["PointToPointLink"] = None

    def attach(self, link: "PointToPointLink") -> None:
        """Connect to one end of a point-to-point link."""
        if self.link is not None:
            raise InterfaceError(f"{self.name} already attached")
        self.link = link
        link.connect(self)

    def send_ip(self, packet: IPPacket, next_hop: IPAddress) -> None:
        """Transmit to the far endpoint (next hop is implicit)."""
        if not self._guard_send(packet):
            return
        if self.link is None:
            raise InterfaceError(f"{self.name} has no link")
        self._count_tx()
        self.link.transmit(packet, self)

    def deliver_from_link(self, packet: IPPacket) -> None:
        """Receive one packet from the link."""
        self._deliver_to_host(packet)


class LoopbackInterface(NetworkInterface):
    """The ``lo`` interface: packets bounce straight back to the host."""

    def __init__(self, sim: Simulator, config: Config, name: str = "lo") -> None:
        super().__init__(sim, name, config.virtual_device, config)
        self.state = InterfaceState.UP  # loopback is born up

    def send_ip(self, packet: IPPacket, next_hop: IPAddress) -> None:
        """Bounce the packet straight back to this host."""
        if not self._guard_send(packet):
            return
        self._count_tx()
        self.sim.post_later(0, lambda: self._deliver_to_host(packet),
                            label=f"lo:{self.name}")
