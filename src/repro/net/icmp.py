"""ICMP: echo (ping), destination unreachable, time exceeded, redirects.

MosquitoNet uses ICMP in two paper-visible ways.  First, the mobile host
probes correspondents with ping to discover whether the triangle route
survives a foreign network's transit filter, falling back to reverse
tunneling on failure (Section 3.2).  Second, answering foreign-network
pings is the canonical example of the mobile host's *local role*
(Section 5.2) — the echo reply must carry the care-of source address, not
the home address.  Routing redirects are the third design pressure the
paper cites against full transparency; hosts here honour them by
installing a host route, so tests can exercise that scenario.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.config import Config, HostTimings
from repro.net.addressing import IPAddress, UNSPECIFIED
from repro.net.packet import ICMP_HEADER_BYTES, PROTO_ICMP, IPPacket
from repro.sim.engine import Event, Simulator
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface
    from repro.net.routing import RouteResult

#: ICMP types (the subset we implement).
TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_REDIRECT = 5
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11


@dataclass(frozen=True)
class ICMPMessage:
    """An ICMP message; ``body`` meaning depends on ``icmp_type``."""

    icmp_type: int
    code: int = 0
    ident: int = 0
    seq: int = 0
    #: For errors: the offending packet's description.  For redirects: the
    #: recommended gateway.  For echoes: opaque payload size only matters.
    body: object = None
    data_bytes: int = 0

    @property
    def size_bytes(self) -> int:
        """Wire size: header plus data."""
        return ICMP_HEADER_BYTES + self.data_bytes


@dataclass
class _PendingPing:
    on_reply: Callable[[int], None]
    on_timeout: Callable[[], None]
    sent_at: int
    timeout_event: Event


class ICMPService:
    """Per-host ICMP processing and the ping client."""

    _ident_counter = itertools.count(1)

    def __init__(self, sim: Simulator, host: "Host", config: Config,
                 timings: HostTimings) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.timings = timings
        self._rng = sim.rng(f"icmp:{host.name}")
        self._tx_fifo = FifoDelay(sim)
        self._rx_fifo = FifoDelay(sim)
        self._pending: Dict[Tuple[int, int], _PendingPing] = {}
        self._seq = itertools.count(1)
        #: Honour redirects by installing host routes (Linux default).
        self.accept_redirects = True
        # Statistics.
        self.echoes_answered = 0
        self.redirects_received = 0
        host.ip.register_protocol(PROTO_ICMP, self._receive)

    # ------------------------------------------------------------------ ping

    def ping(self, dst: IPAddress,
             on_reply: Callable[[int], None],
             on_timeout: Callable[[], None],
             src: IPAddress = UNSPECIFIED,
             timeout: int = ms(3000),
             data_bytes: int = 56) -> None:
        """Send one echo request; exactly one of the callbacks fires.

        ``on_reply`` receives the round-trip time in nanoseconds.
        """
        ident = next(self._ident_counter)
        seq = next(self._seq)
        message = ICMPMessage(icmp_type=TYPE_ECHO_REQUEST, ident=ident, seq=seq,
                              data_bytes=data_bytes)
        key = (ident, seq)

        def timed_out() -> None:
            pending = self._pending.pop(key, None)
            if pending is not None:
                pending.on_timeout()

        event = self.sim.call_later(timeout, timed_out, label=f"ping-timeout:{dst}")
        self._pending[key] = _PendingPing(on_reply=on_reply, on_timeout=on_timeout,
                                          sent_at=self.sim.now, timeout_event=event)
        self._send(dst, message, src)

    def _send(self, dst: IPAddress, message: ICMPMessage,
              src: IPAddress = UNSPECIFIED) -> None:
        route = self.host.ip.ip_rt_route(dst, src)
        source = src
        if source.is_unspecified:
            source = route.source if route is not None else UNSPECIFIED
        if source.is_unspecified:
            # Routes through address-less virtual interfaces leave no
            # source; fall back to any address this host owns rather than
            # emitting from 0.0.0.0.
            fallback = self.host.primary_address()
            if fallback is not None:
                source = fallback
        packet = IPPacket(src=source, dst=dst, protocol=PROTO_ICMP,
                          payload=message, ttl=self.config.default_ttl)
        delay = jittered(self._rng, self.timings.tx_cost, self.config.jitter)
        self._tx_fifo.post(delay, lambda: self.host.ip.send(packet),
                           label=f"icmp-tx:{self.host.name}")

    # ----------------------------------------------------------------- errors

    def send_dest_unreachable(self, offending: IPPacket) -> None:
        """Tell the sender its packet could not be routed."""
        if offending.protocol == PROTO_ICMP:
            return  # never ICMP about ICMP errors
        message = ICMPMessage(icmp_type=TYPE_DEST_UNREACHABLE,
                              body=offending.describe(), data_bytes=28)
        self._send(offending.src, message)

    def send_time_exceeded(self, offending: IPPacket) -> None:
        """Tell the sender its packet's TTL ran out."""
        if offending.protocol == PROTO_ICMP:
            return
        message = ICMPMessage(icmp_type=TYPE_TIME_EXCEEDED,
                              body=offending.describe(), data_bytes=28)
        self._send(offending.src, message)

    def maybe_send_redirect(self, packet: IPPacket, route: "RouteResult",
                            in_iface: "NetworkInterface") -> None:
        """Routers: advise an on-link sender of a better first hop."""
        if in_iface.subnet is None or packet.src not in in_iface.subnet:
            return
        message = ICMPMessage(icmp_type=TYPE_REDIRECT,
                              body={"destination": packet.dst,
                                    "gateway": route.next_hop(packet.dst)},
                              data_bytes=28)
        self._send(packet.src, message)

    # ---------------------------------------------------------------- receive

    def _receive(self, packet: IPPacket, iface: "NetworkInterface") -> None:
        message = packet.payload
        assert isinstance(message, ICMPMessage)
        delay = jittered(self._rng, self.timings.rx_cost, self.config.jitter)
        self._rx_fifo.post(delay, lambda: self._process(packet, message, iface),
                           label=f"icmp-rx:{self.host.name}")

    def _process(self, packet: IPPacket, message: ICMPMessage,
                 iface: "NetworkInterface") -> None:
        if message.icmp_type == TYPE_ECHO_REQUEST:
            self._answer_echo(packet, message, iface)
        elif message.icmp_type == TYPE_ECHO_REPLY:
            self._match_reply(message)
        elif message.icmp_type == TYPE_REDIRECT:
            self._handle_redirect(message, iface)
        elif message.icmp_type in (TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED):
            self.sim.trace.emit("icmp", "error_received", host=self.host.name,
                                icmp_type=message.icmp_type,
                                body=str(message.body))

    def _answer_echo(self, packet: IPPacket, message: ICMPMessage,
                     iface: "NetworkInterface") -> None:
        self.echoes_answered += 1
        reply = ICMPMessage(icmp_type=TYPE_ECHO_REPLY, ident=message.ident,
                            seq=message.seq, data_bytes=message.data_bytes)
        # Local-role rule (Section 5.2): the reply's source is the address
        # the request was sent to — a ping of the care-of address is
        # answered from the care-of address, with no mobile-IP treatment.
        self._send(packet.src, reply, src=packet.dst)

    def _match_reply(self, message: ICMPMessage) -> None:
        key = (message.ident, message.seq)
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        pending.timeout_event.cancel()
        pending.on_reply(self.sim.now - pending.sent_at)

    def _handle_redirect(self, message: ICMPMessage, iface: "NetworkInterface") -> None:
        self.redirects_received += 1
        self.sim.trace.emit("icmp", "redirect", host=self.host.name,
                            body=str(message.body))
        if not self.accept_redirects or not isinstance(message.body, dict):
            return
        destination = message.body.get("destination")
        gateway = message.body.get("gateway")
        if isinstance(destination, IPAddress) and isinstance(gateway, IPAddress):
            self.host.ip.routes.add_host_route(destination, iface, gateway=gateway,
                                               metric=-1)
