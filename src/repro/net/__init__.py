"""The network substrate: everything below the mobile-IP layer.

This package is a from-scratch, protocol-faithful model of the pieces of a
1996 Linux network stack that MosquitoNet touches: IPv4 addressing and
routing, ARP (including proxy and gratuitous ARP), Ethernet segments, serial
lines and Metricom-style radio channels, interface/device state machines
with realistic bring-up costs, ICMP, UDP, a simplified TCP, and DHCP.

The mobile-IP layer in :mod:`repro.core` plugs into exactly the same three
extension points the paper used in the kernel: the route-lookup function
(``ip_rt_route``), an extra policy table, and a virtual encapsulating
interface.
"""

from repro.net.addressing import (
    BROADCAST_MAC,
    UNSPECIFIED,
    IPAddress,
    MACAddress,
    Subnet,
    ip,
    subnet,
)
from repro.net.packet import (
    PROTO_ICMP,
    PROTO_IPIP,
    PROTO_TCP,
    PROTO_UDP,
    AppData,
    IPPacket,
    UDPDatagram,
)
from repro.net.routing import RouteEntry, RouteResult, RoutingTable
from repro.net.host import Host
from repro.net.router import Router
from repro.net.link import EthernetSegment, PointToPointLink, RadioChannel
from repro.net.interface import (
    EthernetInterface,
    LoopbackInterface,
    NetworkInterface,
    RadioInterface,
)
from repro.net.dhcp import DHCPClient, DHCPServer

__all__ = [
    "IPAddress",
    "MACAddress",
    "Subnet",
    "ip",
    "subnet",
    "UNSPECIFIED",
    "BROADCAST_MAC",
    "IPPacket",
    "UDPDatagram",
    "AppData",
    "PROTO_ICMP",
    "PROTO_IPIP",
    "PROTO_TCP",
    "PROTO_UDP",
    "RoutingTable",
    "RouteEntry",
    "RouteResult",
    "Host",
    "Router",
    "EthernetSegment",
    "PointToPointLink",
    "RadioChannel",
    "NetworkInterface",
    "EthernetInterface",
    "LoopbackInterface",
    "RadioInterface",
    "DHCPClient",
    "DHCPServer",
]
