"""A TCP faithful enough to measure mobility against modern transports.

The paper's motivating requirement is that "restarting all applications
every time we change locations is unacceptably annoying" — long-lived TCP
sessions (remote logins, news readers) must survive a network switch.  That
works in MosquitoNet because the connection's addresses never change: the
mobile host's end is always the home address, and segments lost during an
outage are recovered by ordinary retransmission.

This implementation covers what the reproduction needs:

* three-way handshake, data transfer, FIN teardown, RST on unknown segments;
* byte-oriented sequence numbers with cumulative ACKs;
* RFC 6298 retransmission timeout: SRTT/RTTVAR estimation
  (:class:`RtoEstimator`), Karn's algorithm (retransmitted segments are
  never timed, on any path), exponential backoff that resets on a fresh
  RTT sample, min/max bounds from ``Config.tcp_min_rto``/``tcp_max_rto``;
* pluggable congestion control (:mod:`repro.net.congestion`): the seed's
  Tahoe variant (slow start + congestion avoidance, timeout collapse —
  the byte-identical default), Reno (RFC 5681 fast retransmit/fast
  recovery with NewReno partial ACKs), and CUBIC (RFC 8312, deterministic
  fixed-point), selected via ``Config.tcp_congestion_control``;
* selective acknowledgments (RFC 2018, ``Config.tcp_sack``): the receiver
  buffers out-of-order segments and advertises up to three SACK blocks;
  the sender keeps a :class:`~repro.net.sack.SackScoreboard` and skips
  already-received ranges when retransmitting;
* receiver flow control (RFC 9293, ``Config.tcp_flow_control``): every
  segment advertises the free space in a configurable receive buffer
  (``TCPSegment.wnd``), applications consume from the buffer explicitly
  (or implicitly — :meth:`TCPConnection.consume`), the sender's flight is
  bounded by ``min(cwnd, peer rwnd)``, and a closed window is probed by
  an exponentially backed-off persist timer rather than retransmitted
  into (zero-window probes never count against ``MAX_RETRANSMITS``);
* delayed ACKs (RFC 9293 3.8.6.3, ``Config.tcp_delayed_ack``):
  every-second-segment or timeout, with immediate ACKs for out-of-order
  data, FIN, and window updates;
* Nagle's algorithm (RFC 9293 3.7.4, ``Config.tcp_nagle``): at most one
  sub-MSS segment of fresh data outstanding (payloads are indivisible
  application objects here, so small writes are delayed, not coalesced);
* simultaneous close (FIN_WAIT_1 -> CLOSING -> TIME_WAIT), TIME_WAIT
  re-ACK + 2MSL restart on a retransmitted FIN, and in-window RST
  validation.

Out of scope: urgent data, window scaling (windows are byte counts, not
16-bit wire fields, so scaling has nothing to do).
"""

from __future__ import annotations

import enum
import itertools
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.config import Config, HostTimings
from repro.net.addressing import IPAddress, UNSPECIFIED
from repro.net.congestion import (
    DUP_ACK_THRESHOLD,
    CongestionControl,
    make_congestion_control,
)
from repro.net.packet import PROTO_TCP, TCP_HEADER_BYTES, AppData, IPPacket
from repro.net.sack import ReassemblyBuffer, SackScoreboard
from repro.sim.arena import poolable, release
from repro.sim.engine import Event, Simulator
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

FLAG_SYN = "SYN"
FLAG_ACK = "ACK"
FLAG_FIN = "FIN"
FLAG_RST = "RST"

#: Wire cost of the SACK option: 2 bytes of kind/length plus 8 per block.
SACK_OPTION_BASE_BYTES = 2
SACK_BLOCK_BYTES = 8


@poolable(clear=("flags", "payload", "sack"))
class TCPSegment:
    """One TCP segment; ``seq`` counts bytes, SYN/FIN occupy one each.

    A hand-rolled ``__slots__`` value class (previously a frozen
    dataclass): one is allocated per transmission including every
    retransmission, so construction cost is part of the datapath.
    Treat instances as immutable.  ``sack`` carries the receiver's
    advertised ``(start, end)`` blocks (empty when SACK is off).
    ``wnd`` is the advertised receive window in bytes, or ``-1`` when the
    sender does not advertise one (flow control off — the legacy wire
    image).  Like ``sack`` it is wire-accounted, but its 16-bit field is
    part of ``TCP_HEADER_BYTES`` (a real TCP header always carries it),
    so advertising costs no extra bytes.
    ``size_bytes`` is precomputed at construction (immutability makes the
    cache trivially sound); delivered segments are recycled through the
    class arena once the receiver is provably done with them.
    """

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "payload",
                 "sack", "wnd", "size_bytes")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: frozenset, payload: Optional[AppData] = None,
                 sack: Tuple[Tuple[int, int], ...] = (),
                 wnd: int = -1) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload = payload if payload is not None else AppData()
        self.sack = sack
        self.wnd = wnd
        size = TCP_HEADER_BYTES + self.payload.size_bytes
        if sack:
            size += SACK_OPTION_BASE_BYTES + SACK_BLOCK_BYTES * len(sack)
        self.size_bytes = size

    @classmethod
    def acquire(cls, src_port: int, dst_port: int, seq: int, ack: int,
                flags: frozenset, payload: Optional[AppData] = None,
                sack: Tuple[Tuple[int, int], ...] = (),
                wnd: int = -1) -> "TCPSegment":
        """Pooled constructor: identical semantics to ``TCPSegment(...)``."""
        pool = cls._pool
        if pool:
            self = pool.pop()
            cls._pool_reuses += 1
            self.src_port = src_port
            self.dst_port = dst_port
            self.seq = seq
            self.ack = ack
            self.flags = flags
            self.payload = payload if payload is not None else AppData()
            self.sack = sack
            self.wnd = wnd
            size = TCP_HEADER_BYTES + self.payload.size_bytes
            if sack:
                size += SACK_OPTION_BASE_BYTES + SACK_BLOCK_BYTES * len(sack)
            self.size_bytes = size
            return self
        return cls(src_port, dst_port, seq, ack, flags, payload, sack, wnd)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TCPSegment):
            return NotImplemented
        return (self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.seq == other.seq and self.ack == other.ack
                and self.flags == other.flags
                and self.payload == other.payload
                and self.sack == other.sack
                and self.wnd == other.wnd)

    def __hash__(self) -> int:
        return hash((TCPSegment, self.src_port, self.dst_port, self.seq,
                     self.ack, self.flags, self.payload, self.sack,
                     self.wnd))

    def __repr__(self) -> str:
        return (f"TCPSegment(src_port={self.src_port}, "
                f"dst_port={self.dst_port}, seq={self.seq}, ack={self.ack}, "
                f"flags={self.flags!r}, payload={self.payload!r}, "
                f"sack={self.sack!r}, wnd={self.wnd})")

    @property
    def seq_space(self) -> int:
        """Sequence-number space consumed: data bytes plus SYN/FIN."""
        length = self.payload.size_bytes
        if FLAG_SYN in self.flags:
            length += 1
        if FLAG_FIN in self.flags:
            length += 1
        return length

    def describe(self) -> str:
        """One-line human-readable summary."""
        names = "|".join(sorted(self.flags)) or "-"
        base = (f"{self.src_port}->{self.dst_port} {names} seq={self.seq} "
                f"ack={self.ack} len={self.payload.size_bytes}")
        if self.sack:
            blocks = ",".join(f"{start}-{end}" for start, end in self.sack)
            base += f" sack={blocks}"
        if self.wnd >= 0:
            base += f" wnd={self.wnd}"
        return base


class TCPState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSING = "closing"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


#: Key identifying one connection: (local port, remote addr, remote port).
ConnKey = Tuple[int, IPAddress, int]

_initial_seq = itertools.count(1000, 64000)

#: Retransmission limits (defaults; ``Config.tcp_min_rto``/``tcp_max_rto``
#: override per simulation).
MIN_RTO = ms(400)
MAX_RTO = ms(16_000)
MAX_RETRANSMITS = 12
TIME_WAIT_DELAY = ms(2000)
#: Fixed in-flight window (segments' worth of bytes).
DEFAULT_WINDOW_BYTES = 4096
#: Maximum payload bytes per segment.
DEFAULT_MSS = 512

#: States in which the sender may have data in flight.  CLOSING belongs
#: here because our FIN is still unacknowledged and must keep
#: retransmitting (simultaneous close).
_DATA_STATES = (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT,
                TCPState.FIN_WAIT_1, TCPState.CLOSING, TCPState.LAST_ACK)


class RtoEstimator:
    """RFC 6298 retransmission-timeout state, in integer nanoseconds.

    ``SRTT``/``RTTVAR`` use the RFC's EWMA gains (1/8 and 1/4) in integer
    arithmetic; ``RTO = SRTT + max(G, 4 * RTTVAR)`` clamped to the
    configured bounds.  The simulator's clock is exact, so the clock
    granularity ``G`` defaults to zero rather than the RFC's 1-second
    wall-clock guidance — the *bounds* carry the conservatism instead.
    Karn's algorithm lives in the connection (it decides which segments
    are timed); this class owns the backoff, which per RFC 6298 (5.5-5.7)
    doubles on each timer expiry and resets once a fresh sample arrives.
    """

    __slots__ = ("min_rto", "max_rto", "granularity", "backoff_limit",
                 "srtt", "rttvar", "rto", "backoff")

    def __init__(self, *, min_rto: int = MIN_RTO, max_rto: int = MAX_RTO,
                 granularity: int = 0, backoff_limit: int = 6,
                 initial_rto: int = ms(1000)) -> None:
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.granularity = granularity
        self.backoff_limit = backoff_limit
        self.srtt: Optional[int] = None
        self.rttvar: int = 0
        self.rto: int = initial_rto
        self.backoff: int = 0

    def sample(self, measured: int) -> None:
        """Fold one RTT measurement in (RFC 6298 2.2/2.3); resets backoff."""
        if self.srtt is None:
            self.srtt = measured
            self.rttvar = measured // 2
        else:
            delta = measured - self.srtt
            self.srtt += delta // 8
            self.rttvar += (abs(delta) - self.rttvar) // 4
        self.rto = max(self.min_rto,
                       min(self.max_rto,
                           self.srtt + max(self.granularity, 4 * self.rttvar)))
        self.backoff = 0

    def back_off(self) -> None:
        """The timer expired: double the next timeout (bounded)."""
        self.backoff = min(self.backoff + 1, self.backoff_limit)

    def current(self) -> int:
        """The timeout to arm right now, backoff included."""
        return min(self.max_rto, self.rto << self.backoff)


@dataclass
class _SendItem:
    offset: int
    data: AppData
    fin: bool = False


class TCPConnection:
    """One endpoint of a TCP connection.

    Window policy is delegated to a :class:`CongestionControl` strategy
    (``congestion_control`` keyword, default from
    ``Config.tcp_congestion_control``); ``initial_cwnd`` /
    ``initial_ssthresh`` are keyword-only tuning knobs.
    """

    def __init__(self, service: "TCPService", local_addr: IPAddress,
                 local_port: int, remote_addr: IPAddress, remote_port: int,
                 *shim_args,
                 congestion_control: Optional[str] = None,
                 initial_cwnd: Optional[int] = None,
                 initial_ssthresh: Optional[int] = None) -> None:
        if shim_args:
            if len(shim_args) > 2:
                raise TypeError(
                    f"TCPConnection takes at most 2 positional tuning "
                    f"arguments (cwnd, ssthresh), got {len(shim_args)}")
            warnings.warn(
                "passing cwnd/ssthresh tuning positionally to TCPConnection "
                "is deprecated; use keyword-only initial_cwnd= and "
                "initial_ssthresh=", DeprecationWarning, stacklevel=2)
            shim = dict(zip(("initial_cwnd", "initial_ssthresh"), shim_args))
            if initial_cwnd is None:
                initial_cwnd = shim.get("initial_cwnd")
            if initial_ssthresh is None:
                initial_ssthresh = shim.get("initial_ssthresh")
        self._service = service
        self.sim = service.sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = TCPState.CLOSED
        config = service.config

        # Send side.
        self.iss = next(_initial_seq)
        self.snd_una = self.iss          # oldest unacknowledged
        self.snd_nxt = self.iss          # next to (re)send
        self.snd_max = self.iss          # highest ever sent (for rewinds)
        self._send_buffer: List[_SendItem] = []
        self._next_offset = 0            # byte offset after SYN for app data
        self._fin_queued = False

        # Receive side.
        self.rcv_nxt = 0

        # Flow control (RFC 9293).  Off by default: segments advertise no
        # window (wnd=-1 on the wire) and the sender falls back to the
        # seed's fixed DEFAULT_WINDOW_BYTES clamp inside the strategy.
        self._fc = config.tcp_flow_control
        self.rcv_buffer = config.tcp_recv_buffer
        self._rcv_buffered = 0           # delivered-not-yet-consumed bytes
        #: When True (default), delivered data is consumed the moment the
        #: application callback returns — the legacy fast-reader model.
        #: Set False and call :meth:`consume` to model a slow application.
        self.auto_consume = True
        self._last_advertised_wnd = -1
        self.peer_rwnd: Optional[int] = None
        self._wnd_seq = -1               # RFC 9293 3.10.7.4 update ordering
        self._wnd_ack = -1
        self._persist_event: Optional[Event] = None
        self._persist_backoff = 0
        self._probe_seq: Optional[int] = None  # seq of the in-flight probe
        self.persist_probes = 0
        self._zw_accum_ns = 0            # closed stall intervals, summed
        self._zw_since: Optional[int] = None
        self._rwnd_gauge = None          # lazy: only materialises with fc on

        # Delayed ACKs (RFC 9293 3.8.6.3).
        self._delack = config.tcp_delayed_ack
        self._delack_timeout = config.tcp_delayed_ack_timeout
        self._delack_pending = 0         # in-order data segments unACKed
        self._delack_event: Optional[Event] = None
        self.delayed_acks = 0

        # Nagle (RFC 9293 3.7.4).
        self._nagle = config.tcp_nagle

        # Congestion control: a pluggable strategy.  With flow control on
        # the peer's advertised window replaces the fixed clamp, so the
        # strategy's cap rises to the receive-buffer size.
        name = (congestion_control if congestion_control is not None
                else config.tcp_congestion_control)
        max_window = (max(DEFAULT_WINDOW_BYTES, self.rcv_buffer)
                      if self._fc else DEFAULT_WINDOW_BYTES)
        self.cc: CongestionControl = make_congestion_control(
            name, mss=DEFAULT_MSS, max_window=max_window,
            initial_cwnd=initial_cwnd, initial_ssthresh=initial_ssthresh)
        self._dupacks = 0
        self._in_recovery = False
        self._recover = self.iss         # recovery point (RFC 6582)
        self._rexmit_cursor = self.iss   # highest seq retransmitted this
        #                                  recovery (scoreboard-driven)

        # Selective acknowledgments (both directions gated on one knob).
        self._scoreboard: Optional[SackScoreboard] = (
            SackScoreboard() if config.tcp_sack else None)
        self._reassembly: Optional[ReassemblyBuffer] = (
            ReassemblyBuffer() if config.tcp_sack else None)

        # RTT estimation / RTO (RFC 6298), nanoseconds.
        self._rto_est = RtoEstimator(min_rto=config.tcp_min_rto,
                                     max_rto=config.tcp_max_rto)
        self._timing_seq: Optional[int] = None   # Karn: seq whose RTT we time
        self._timing_sent_at = 0
        self._retransmit_event: Optional[Event] = None
        self._retransmit_count = 0
        self._timewait_event: Optional[Event] = None

        # Callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[AppData], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None

        # Statistics (examples and tests read these).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------ public API

    @property
    def key(self) -> ConnKey:
        """The demux key: (local port, remote addr, remote port)."""
        return (self.local_port, self.remote_addr, self.remote_port)

    @property
    def cwnd(self) -> int:
        """The congestion window, owned by the strategy."""
        return self.cc.cwnd

    @cwnd.setter
    def cwnd(self, value: int) -> None:
        self.cc.cwnd = value

    @property
    def ssthresh(self) -> int:
        """The slow-start threshold, owned by the strategy."""
        return self.cc.ssthresh

    @ssthresh.setter
    def ssthresh(self, value: int) -> None:
        self.cc.ssthresh = value

    # Estimator internals, exposed read-only for tests and experiments.

    @property
    def _srtt(self) -> Optional[int]:
        return self._rto_est.srtt

    @property
    def _rttvar(self) -> int:
        return self._rto_est.rttvar

    @property
    def _rto(self) -> int:
        return self._rto_est.rto

    @property
    def _rto_backoff(self) -> int:
        return self._rto_est.backoff

    @property
    def rcv_buffered(self) -> int:
        """Bytes delivered in order but not yet consumed by the app."""
        return self._rcv_buffered

    @property
    def zero_window_ns(self) -> int:
        """Total time spent stalled on the peer's window, live.

        Counts every persist-mode interval: windows of exactly zero and
        windows too small to admit the next (indivisible) payload both
        stall the sender identically.  An in-progress stall is included.
        """
        open_interval = (self.sim.now - self._zw_since
                         if self._zw_since is not None else 0)
        return self._zw_accum_ns + open_interval

    def _rcv_window(self) -> int:
        """Free receive-buffer space: what we may advertise (RFC 9293)."""
        return max(0, self.rcv_buffer - self._rcv_buffered)

    def consume(self, nbytes: int) -> None:
        """The application read *nbytes* from the receive buffer.

        Only meaningful with ``Config.tcp_flow_control`` and
        ``auto_consume`` off.  Reopening a window the peer last saw
        closed (or nearly so) sends an immediate window-update ACK, so a
        stalled sender recovers without waiting for its next persist
        probe.
        """
        if nbytes <= 0:
            return
        self._rcv_buffered = max(0, self._rcv_buffered - nbytes)
        if not self._fc or self.state == TCPState.CLOSED:
            return
        threshold = min(DEFAULT_MSS, self.rcv_buffer // 2)
        if (0 <= self._last_advertised_wnd < threshold
                and self._rcv_window() >= threshold):
            self._send_ack()

    def send(self, data: AppData) -> None:
        """Queue application data for reliable delivery.

        Writes larger than the MSS are segmented; the first segment keeps
        the application's content object (so small-message protocols see
        their objects intact) and continuation segments carry sizing only,
        as a byte stream would.
        """
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise TCPError(f"cannot send in state {self.state.value}")
        if data.size_bytes <= 0:
            raise TCPError("cannot send an empty payload")
        remaining = data.size_bytes
        first = True
        while remaining > 0:
            take = min(remaining, DEFAULT_MSS)
            chunk = AppData(data.content if first
                            else ("segment-of", data.content), take)
            self._send_buffer.append(_SendItem(offset=self._next_offset,
                                               data=chunk))
            self._next_offset += take
            remaining -= take
            first = False
        self._pump()

    def close(self) -> None:
        """Half-close: FIN after any queued data."""
        if self.state in (TCPState.CLOSED, TCPState.TIME_WAIT,
                          TCPState.LAST_ACK, TCPState.FIN_WAIT_1,
                          TCPState.FIN_WAIT_2, TCPState.CLOSING):
            return
        self._fin_queued = True
        self._send_buffer.append(_SendItem(offset=self._next_offset,
                                           data=AppData(None, 0), fin=True))
        self._next_offset += 1
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT_1
        elif self.state == TCPState.CLOSE_WAIT:
            self.state = TCPState.LAST_ACK
        self._pump()

    def abort(self) -> None:
        """Send RST and drop all state."""
        self._emit(flags=frozenset({FLAG_RST}))
        self._teardown()

    # ---------------------------------------------------------- client opening

    def _open_active(self) -> None:
        self.state = TCPState.SYN_SENT
        self._emit(flags=frozenset({FLAG_SYN}), seq=self.iss)
        self.snd_nxt = self.iss + 1
        self.snd_max = self.snd_nxt
        self._start_timing(self.iss)
        self._arm_retransmit()

    # ----------------------------------------------------------------- sending

    def _pump(self) -> None:
        """Transmit whatever the window allows."""
        if self.state not in _DATA_STATES:
            return
        window_limit = self.snd_una + self.cc.effective_window(
            self.peer_rwnd if self._fc else None)
        base = self.iss + 1
        for item in self._send_buffer:
            seq = base + item.offset
            end = seq + (1 if item.fin else item.data.size_bytes)
            if seq < self.snd_nxt:
                continue  # already in flight
            if end > window_limit:
                break
            if (self._scoreboard is not None and end <= self.snd_max
                    and self._scoreboard.is_sacked(seq, end)):
                # Rewound over a range the receiver already holds: skip
                # it instead of re-sending (scoreboard-driven recovery).
                self.snd_nxt = max(self.snd_nxt, end)
                continue
            fresh = end > self.snd_max
            if (self._nagle and fresh and not item.fin
                    and item.data.size_bytes < DEFAULT_MSS
                    and self.snd_nxt > self.snd_una):
                # Nagle: hold fresh sub-MSS data while anything is
                # unacknowledged (one small segment in flight at a time).
                break
            if item.fin:
                self._emit(flags=frozenset({FLAG_FIN, FLAG_ACK}), seq=seq)
            else:
                self._emit(flags=frozenset({FLAG_ACK}), seq=seq, payload=item.data)
                self.bytes_sent += item.data.size_bytes
            self.snd_nxt = end
            self.snd_max = max(self.snd_max, end)
            if self._timing_seq is None and fresh:
                # Karn's algorithm: only first transmissions are timed; a
                # retransmission's ACK is ambiguous and must not feed the
                # estimator.
                self._start_timing(seq)
        if (self.snd_nxt > self.snd_una and self._retransmit_event is None
                and self._persist_event is None):
            # Only arm if idle: re-arming on every application write would
            # keep pushing the deadline out and the timer would never fire
            # while the application keeps producing data.
            self._arm_retransmit()
        elif self.snd_una == self.snd_max and self._window_blocked():
            # Everything sent is acknowledged, data is queued, and the
            # peer's window admits none of it: probe (RFC 9293 3.8.6.1).
            self._enter_persist()

    def _emit(self, flags: frozenset, seq: Optional[int] = None,
              payload: Optional[AppData] = None) -> None:
        sack: Tuple[Tuple[int, int], ...] = ()
        if (self._reassembly is not None and self._reassembly
                and FLAG_ACK in flags):
            sack = self._reassembly.sack_blocks(lambda seg: seg.seq_space)
        wnd = -1
        if self._fc:
            wnd = self._rcv_window()
            self._last_advertised_wnd = wnd
            if self._rwnd_gauge is None:
                self._rwnd_gauge = self.sim.metrics.gauge(
                    "tcp", "rwnd_bytes", host=self._service.host.name)
            self._rwnd_gauge.set(wnd)
        if self._delack_pending:
            # Whatever goes out carries rcv_nxt, so the held ACK
            # piggybacks on it.
            self._delack_clear()
        segment = TCPSegment.acquire(
            self.local_port, self.remote_port,
            seq if seq is not None else self.snd_nxt,
            self.rcv_nxt, flags,
            payload if payload is not None else AppData.acquire(None, 0),
            sack, wnd,
        )
        self.segments_sent += 1
        self._service.transmit(self, segment)

    def _send_ack(self) -> None:
        self._emit(flags=frozenset({FLAG_ACK}))

    # ------------------------------------------------- flow control (RFC 9293)

    def _update_peer_wnd(self, segment: TCPSegment) -> None:
        """Track the peer's advertised window (newest segment wins)."""
        wnd = segment.wnd
        if wnd < 0:
            return  # the peer does not advertise (legacy stack)
        if (segment.seq > self._wnd_seq
                or (segment.seq == self._wnd_seq
                    and segment.ack >= self._wnd_ack)):
            self._wnd_seq = segment.seq
            self._wnd_ack = segment.ack
            self.peer_rwnd = wnd
            if not self._window_blocked():
                probing = self._persist_event is not None
                self._exit_persist()
                if probing:
                    self._pump()

    def _window_blocked(self) -> bool:
        """True when pending data exists but the peer's window admits none.

        Payloads are indivisible application objects, so "blocked" is not
        only ``rwnd == 0``: a window smaller than the next item stalls the
        sender just as hard, and the persist machinery must cover it —
        otherwise a lost window-update ACK deadlocks the connection.
        """
        if not self._fc or self.peer_rwnd is None or not self._send_buffer:
            return False
        base = self.iss + 1
        for item in self._send_buffer:
            seq = base + item.offset
            end = seq + (1 if item.fin else item.data.size_bytes)
            if end <= self.snd_una:
                continue
            return end > self.snd_una + self.peer_rwnd
        return False

    def _enter_persist(self) -> None:
        """Begin window probing: the RTO never fires while stalled."""
        if self._persist_event is not None:
            return
        self._cancel_retransmit()
        if self._zw_since is None:
            self._zw_since = self.sim.now
        self._persist_backoff = 0
        self.sim.trace.emit("tcp", "zero_window", conn=self._describe(),
                            rwnd=self.peer_rwnd,
                            pending=len(self._send_buffer))
        self._arm_persist()

    def _exit_persist(self) -> None:
        """The window admits data again (or the connection is done)."""
        self._cancel_persist()
        self._probe_seq = None
        self._persist_backoff = 0
        if self._zw_since is not None:
            self._zw_accum_ns += self.sim.now - self._zw_since
            self._zw_since = None

    def _arm_persist(self) -> None:
        delay = min(self._rto_est.max_rto,
                    self._rto_est.current() << self._persist_backoff)
        self._persist_event = self.sim.call_later(
            delay, self._on_persist_timeout,
            label=f"tcp-persist:{self.local_port}")

    def _cancel_persist(self) -> None:
        if self._persist_event is not None:
            self._persist_event.cancel()
            self._persist_event = None

    def _on_persist_timeout(self) -> None:
        self._persist_event = None
        if self.state not in _DATA_STATES or not self._send_buffer:
            self._exit_persist()
            return
        if not self._window_blocked():
            self._exit_persist()
            self._pump()  # the window opened while the timer was pending
            return
        self._send_probe()
        # Exponential backoff, bounded like the RTO's; probes continue
        # indefinitely — a zero window is flow control, not a dead peer,
        # so they never count against MAX_RETRANSMITS.
        self._persist_backoff = min(self._persist_backoff + 1,
                                    self._rto_est.backoff_limit)
        self._arm_persist()

    def _send_probe(self) -> None:
        """Transmit the first pending item into the closed window.

        RFC 9293's probe is one byte; payloads here are indivisible
        application objects, so the probe carries the whole next item
        (at most one MSS).  The receiver drops what it cannot buffer and
        answers with an ACK carrying its current window — which is all
        the probe is for.  Probes are never RTT-timed (Karn) and advance
        ``snd_max`` so the eventual ACK is recognised as valid.
        """
        base = self.iss + 1
        for item in self._send_buffer:
            seq = base + item.offset
            end = seq + (1 if item.fin else item.data.size_bytes)
            if end <= self.snd_una:
                continue
            self.persist_probes += 1
            self._service.persist_probes_counter().inc()
            self.sim.trace.emit("tcp", "zero_window_probe",
                                conn=self._describe(), seq=seq,
                                attempt=self._persist_backoff + 1)
            if item.fin:
                self._emit(flags=frozenset({FLAG_FIN, FLAG_ACK}), seq=seq)
            else:
                self._emit(flags=frozenset({FLAG_ACK}), seq=seq,
                           payload=item.data)
            self._probe_seq = seq
            self.snd_nxt = max(self.snd_nxt, end)
            self.snd_max = max(self.snd_max, end)
            return

    # --------------------------------------------- delayed ACKs (RFC 9293)

    def _delay_ack(self) -> None:
        """Hold the ACK for one more segment or the delack timeout."""
        self._delack_pending += 1
        if self._delack_pending >= 2:
            self._send_ack()  # _emit clears the pending state
            return
        self.delayed_acks += 1
        self._service.delayed_acks_counter().inc()
        self._delack_event = self.sim.call_later(
            self._delack_timeout, self._on_delack_timeout,
            label=f"tcp-delack:{self.local_port}")

    def _on_delack_timeout(self) -> None:
        self._delack_event = None
        if self._delack_pending:
            self._send_ack()

    def _delack_clear(self) -> None:
        self._delack_pending = 0
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None

    # ----------------------------------------------------- retransmission/RTT

    def _start_timing(self, seq: int) -> None:
        self._timing_seq = seq
        self._timing_sent_at = self.sim.now

    def _update_rtt(self, measured: int) -> None:
        self._rto_est.sample(measured)

    def _arm_retransmit(self) -> None:
        self._cancel_retransmit()
        self._retransmit_event = self.sim.call_later(
            self._rto_est.current(), self._on_retransmit_timeout,
            label=f"tcp-rto:{self.local_port}",
        )

    def _cancel_retransmit(self) -> None:
        if self._retransmit_event is not None:
            self._retransmit_event.cancel()
            self._retransmit_event = None

    def _on_retransmit_timeout(self) -> None:
        self._retransmit_event = None
        if self.snd_una >= self.snd_max and self.state not in (
                TCPState.SYN_SENT, TCPState.SYN_RECEIVED):
            return  # everything acknowledged meanwhile
        if self._window_blocked() and self.state in _DATA_STATES:
            # The window closed (or shrank below the next item) with data
            # in flight: this is a stall, not congestion.  Rewind and hand
            # the frontier to the persist machinery — probes never count
            # against MAX_RETRANSMITS and never back off the estimator.
            self.snd_nxt = self.snd_una
            self._enter_persist()
            return
        self._service.rto_counter.value += 1
        self._retransmit_count += 1
        if self._retransmit_count > MAX_RETRANSMITS:
            self.sim.trace.emit("tcp", "gave_up", conn=self._describe())
            if self.on_reset is not None:
                self.on_reset()
            self._teardown()
            return
        self.segments_retransmitted += 1
        self._service.retransmits_counter.value += 1
        self._rto_est.back_off()
        self._timing_seq = None  # Karn's rule
        if self._in_recovery:
            # The timeout overrides fast recovery entirely.
            self._in_recovery = False
        self._dupacks = 0
        if self._scoreboard is not None:
            # RFC 2018: SACK data is advisory and the receiver may have
            # reneged; after a timeout everything unacknowledged is fair
            # game again.
            self._scoreboard.clear()
        # On timeout the strategy remembers half the flight as the
        # slow-start threshold and collapses the window; the pump then
        # resends exactly one segment now and recovery proceeds as ACKs
        # return, instead of dumping the whole window into a slow link.
        flight = self.snd_max - self.snd_una
        self.cc.on_timeout(flight, self.sim.now)
        self._set_cc_gauges()
        self.sim.trace.emit("tcp", "retransmit", conn=self._describe(),
                            snd_una=self.snd_una, attempt=self._retransmit_count)
        if self.state == TCPState.SYN_SENT:
            self._emit(flags=frozenset({FLAG_SYN}), seq=self.iss)
        elif self.state == TCPState.SYN_RECEIVED:
            self._emit(flags=frozenset({FLAG_SYN, FLAG_ACK}), seq=self.iss)
        else:
            self.snd_nxt = self.snd_una
            self._pump()
        self._arm_retransmit()

    # --------------------------------------------------------------- receiving

    def handle_segment(self, segment: TCPSegment) -> None:
        """Process one received segment (the whole state machine)."""
        if FLAG_RST in segment.flags:
            if not self._rst_acceptable(segment):
                # RFC 9293 3.10.7.3: an out-of-window RST is a blind-reset
                # attempt (or ancient duplicate) and must not kill the
                # connection.
                self.sim.trace.emit("tcp", "rst_ignored",
                                    conn=self._describe(), seq=segment.seq)
                return
            self.sim.trace.emit("tcp", "reset_received", conn=self._describe())
            if self.on_reset is not None:
                self.on_reset()
            self._teardown()
            return
        if self._fc:
            self._update_peer_wnd(segment)
        if self.state == TCPState.TIME_WAIT:
            # RFC 9293 3.10.7.4: a retransmitted FIN (our final ACK was
            # lost, the peer is stuck in LAST_ACK) must be re-ACKed and
            # the 2MSL clock restarted.  Pure ACKs are ignored — re-ACKing
            # them would ping-pong forever between two simultaneous-close
            # peers that are both in TIME_WAIT.
            if segment.seq_space > 0:
                self._send_ack()
                self._arm_time_wait()
            return
        if self.state == TCPState.SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if self.state == TCPState.SYN_RECEIVED and FLAG_ACK in segment.flags \
                and segment.ack >= self.iss + 1:
            self.state = TCPState.ESTABLISHED
            self._established()
        if FLAG_ACK in segment.flags:
            self._process_ack(segment)
        if FLAG_SYN in segment.flags and self.state == TCPState.ESTABLISHED:
            # Peer retransmitted SYN+ACK (our ACK was lost): re-ACK it.
            self._send_ack()
            return
        self._process_payload(segment)

    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if FLAG_SYN not in segment.flags or FLAG_ACK not in segment.flags:
            return
        if segment.ack != self.iss + 1:
            return
        self.rcv_nxt = segment.seq + 1
        self.snd_una = segment.ack
        self._retransmit_count = 0
        if self._timing_seq is not None and self._timing_seq == self.iss:
            self._update_rtt(self.sim.now - self._timing_sent_at)
            self._timing_seq = None
        self._cancel_retransmit()
        self.state = TCPState.ESTABLISHED
        self._send_ack()
        self._established()
        self._pump()

    def _established(self) -> None:
        self.sim.trace.emit("tcp", "established", conn=self._describe())
        if self.on_established is not None:
            callback, self.on_established = self.on_established, None
            callback()

    # ------------------------------------------------------------- ACK intake

    def _process_ack(self, segment: TCPSegment) -> None:
        ack = segment.ack
        if self._scoreboard is not None and segment.sack:
            self._service.sack_blocks_counter().inc(len(segment.sack))
            self._scoreboard.record(segment.sack, self.snd_una)
        if ack <= self.snd_una or ack > self.snd_max:
            if ack == self.snd_una and self.snd_max > self.snd_una:
                # An ACK that advances nothing while data is in flight.
                self._service.dup_ack_counter.value += 1
                if (self.cc.supports_fast_retransmit
                        and self._probe_seq is None
                        and segment.payload.size_bytes == 0
                        and FLAG_SYN not in segment.flags
                        and FLAG_FIN not in segment.flags):
                    # Rejected zero-window probes elicit dup ACKs too, but
                    # those signal a closed window, not a hole.
                    self._on_dup_ack()
            if self._fc:
                # A pure window update carries no new ack; the reopened
                # window may admit queued data.
                self._pump()
            return
        acked = ack - self.snd_una
        if self._timing_seq is not None and ack > self._timing_seq:
            self._update_rtt(self.sim.now - self._timing_sent_at)
            self._timing_seq = None
        self.snd_una = ack
        if self.snd_nxt < ack:
            self.snd_nxt = ack  # a late ACK can outrun a rewound send point
        self._retransmit_count = 0
        if self._probe_seq is not None and ack > self._probe_seq:
            self._probe_seq = None  # the probe itself was accepted
        if self._scoreboard is not None:
            self._scoreboard.advance(ack)
        if self._in_recovery:
            if ack >= self._recover:
                # Full ACK: everything outstanding at recovery entry is in.
                self._in_recovery = False
                self._dupacks = 0
                self.cc.on_exit_recovery(self.sim.now)
                self._set_cc_gauges()
            else:
                # Partial ACK (RFC 6582): repair the next hole, deflate.
                self.cc.on_partial_ack(acked, self.sim.now)
                self._retransmit_hole()
        else:
            self._dupacks = 0
            if (self._fc and self.peer_rwnd is not None
                    and self.peer_rwnd < self.cc.cwnd):
                # RFC 5681 caution: the receiver, not the network, is the
                # bottleneck — growing cwnd would only build a burst for
                # the moment the window reopens.
                self.cc.on_rwnd_limited(self.sim.now)
            else:
                self.cc.on_ack(acked, self.sim.now, self._rto_est.srtt)
        self._trim_send_buffer()
        if self.snd_una >= self.snd_max:
            self._cancel_retransmit()
            self._on_all_acked()
        elif self._persist_event is None:
            self._arm_retransmit()
        self._pump()

    # ------------------------------------------------- fast retransmit (Reno+)

    def _on_dup_ack(self) -> None:
        if self.state not in _DATA_STATES:
            return
        self._dupacks += 1
        if self._in_recovery:
            self.cc.on_dup_ack_in_recovery(self.sim.now)
            if self._scoreboard is not None:
                self._retransmit_hole()
            self._pump()  # the inflated window may admit new data
        elif self._dupacks >= DUP_ACK_THRESHOLD:
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        self._in_recovery = True
        self._recover = self.snd_max
        self._rexmit_cursor = self.snd_una
        flight = self.snd_max - self.snd_una
        self.cc.on_enter_recovery(flight, self.sim.now)
        self._timing_seq = None  # Karn: the retransmission is never timed
        self.fast_retransmits += 1
        self._service.fast_retransmits_counter().inc()
        self.sim.trace.emit("tcp", "fast_retransmit", conn=self._describe(),
                            snd_una=self.snd_una)
        self._set_cc_gauges()
        self._retransmit_hole()
        self._arm_retransmit()  # restart the RTO for the retransmission

    def _retransmit_hole(self) -> None:
        """Retransmit one segment covering the oldest unrepaired hole."""
        if self._scoreboard is not None:
            hole = self._scoreboard.first_hole(
                max(self.snd_una, self._rexmit_cursor), self.snd_max)
            if hole is None:
                return
            target = hole[0]
        else:
            target = self.snd_una
            if self._rexmit_cursor > target:
                return  # this hole was already retransmitted this recovery
        base = self.iss + 1
        for item in self._send_buffer:
            seq = base + item.offset
            end = seq + (1 if item.fin else item.data.size_bytes)
            if end <= target:
                continue
            if (self._scoreboard is not None
                    and self._scoreboard.is_sacked(seq, end)):
                continue  # never resend what the receiver reported holding
            self.segments_retransmitted += 1
            self._service.retransmits_counter.value += 1
            if self._scoreboard is not None:
                self._service.sack_retransmits_counter().inc()
            if item.fin:
                self._emit(flags=frozenset({FLAG_FIN, FLAG_ACK}), seq=seq)
            else:
                self._emit(flags=frozenset({FLAG_ACK}), seq=seq,
                           payload=item.data)
            self._rexmit_cursor = end
            return

    def _set_cc_gauges(self) -> None:
        """Record the window trajectory (lazy: keys appear on first event)."""
        metrics = self.sim.metrics
        host = self._service.host.name
        metrics.gauge("tcp", "cwnd_bytes", host=host).set(self.cc.cwnd)
        metrics.gauge("tcp", "ssthresh_bytes", host=host).set(self.cc.ssthresh)

    # ----------------------------------------------------------- data intake

    def _trim_send_buffer(self) -> None:
        base = self.iss + 1
        self._send_buffer = [
            item for item in self._send_buffer
            if base + item.offset + (1 if item.fin else item.data.size_bytes)
            > self.snd_una
        ]

    def _on_all_acked(self) -> None:
        if self.state == TCPState.FIN_WAIT_1 and self._fin_queued:
            self.state = TCPState.FIN_WAIT_2
        elif self.state == TCPState.CLOSING:
            # Simultaneous close, second half: the peer just acknowledged
            # our FIN (we already consumed theirs).
            self._enter_time_wait()
        elif self.state == TCPState.LAST_ACK:
            self._teardown()

    def _process_payload(self, segment: TCPSegment) -> None:
        has_fin = FLAG_FIN in segment.flags
        length = segment.payload.size_bytes
        if length == 0 and not has_fin:
            return
        if (self._fc and segment.seq + segment.seq_space
                > self.rcv_nxt + self._rcv_window()):
            # Beyond our advertised window: a zero-window probe, or a
            # sender overrunning a window that shrank in flight.  Drop the
            # data; the immediate ACK re-advertises the current window
            # (RFC 9293 3.8.6.1) — that answer is what unblocks the peer.
            self._send_ack()
            return
        if segment.seq != self.rcv_nxt:
            if self._reassembly is not None and segment.seq > self.rcv_nxt:
                # SACK: hold the out-of-order segment and advertise it.
                self._reassembly.store(segment.seq, segment)
            # Duplicate or out of order: re-ACK what we have (the ACK
            # carries SACK blocks when the knob is on; plain go-back-N
            # otherwise).
            self._send_ack()
            return
        filled_hole = self._reassembly is not None and bool(self._reassembly)
        self._deliver(segment)
        if self._reassembly is not None:
            self._reassembly.drop_below(self.rcv_nxt)
            while True:
                queued = self._reassembly.pop(self.rcv_nxt)
                if queued is None:
                    break
                self._deliver(queued)
                self._reassembly.drop_below(self.rcv_nxt)
        if (self._delack and not has_fin and not filled_hole
                and self.state in _DATA_STATES):
            # Plain in-order data with no out-of-order condition pending:
            # the ACK may wait for a ride (RFC 9293 3.8.6.3).
            self._delay_ack()
        else:
            self._send_ack()

    def _deliver(self, segment: TCPSegment) -> None:
        """Consume one in-order segment (payload and/or FIN)."""
        length = segment.payload.size_bytes
        if length > 0:
            self.rcv_nxt += length
            self.bytes_received += length
            if self._fc:
                self._rcv_buffered += length
            if self.on_data is not None:
                self.on_data(segment.payload)
            if self._fc and self.auto_consume:
                # Legacy fast-reader model: the application keeps up, so
                # the advertised window never closes on its account.
                self._rcv_buffered -= length
        if FLAG_FIN in segment.flags:
            self.rcv_nxt += 1
            self._handle_fin()

    def _handle_fin(self) -> None:
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
        elif self.state == TCPState.FIN_WAIT_2:
            self._enter_time_wait()
        elif self.state == TCPState.FIN_WAIT_1:
            # Simultaneous close (RFC 9293 figure 13): both FINs crossed
            # in flight.  Our own FIN is still unacknowledged — CLOSING
            # holds it on the retransmit path until the peer's ACK lands,
            # and only then does TIME_WAIT begin.
            self.state = TCPState.CLOSING
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback()

    def _enter_time_wait(self) -> None:
        self.state = TCPState.TIME_WAIT
        self._arm_time_wait()

    def _arm_time_wait(self) -> None:
        """(Re)start the 2MSL clock; a retransmitted FIN restarts it."""
        if self._timewait_event is not None:
            self._timewait_event.cancel()
        self._timewait_event = self.sim.call_later(
            TIME_WAIT_DELAY, self._on_time_wait_expired,
            label=f"tcp-timewait:{self.local_port}")

    def _on_time_wait_expired(self) -> None:
        self._timewait_event = None
        self._teardown()

    def _rst_acceptable(self, segment: TCPSegment) -> bool:
        """RFC 9293 3.10.7.3: only an in-window RST resets the connection.

        Deviation (documented in PROTOCOL.md §8): this wire format has no
        ACK flag on RSTs, so the SYN_SENT check reads the ``ack`` field
        directly, and the challenge-ACK refinement for RSTs that are
        in-window but not exactly ``rcv_nxt`` is not modelled.
        """
        if self.state == TCPState.SYN_SENT:
            return segment.ack == self.snd_nxt
        if self.rcv_nxt == 0:
            return True  # nothing learned yet; any reset is plausible
        wnd = self._rcv_window() if self._fc else DEFAULT_WINDOW_BYTES
        return (self.rcv_nxt <= segment.seq
                < self.rcv_nxt + max(wnd, 1))

    def _teardown(self) -> None:
        self._cancel_retransmit()
        self._exit_persist()
        self._delack_clear()
        if self._timewait_event is not None:
            self._timewait_event.cancel()
            self._timewait_event = None
        previous, self.state = self.state, TCPState.CLOSED
        if previous != TCPState.CLOSED:
            self._service.forget(self)

    def _describe(self) -> str:
        return (f"{self.local_addr}:{self.local_port}<->"
                f"{self.remote_addr}:{self.remote_port} {self.state.value}")


class TCPError(RuntimeError):
    """Raised on invalid TCP API usage."""


class TCPListener:
    """A passive socket waiting for connections on a port."""

    def __init__(self, service: "TCPService", port: int,
                 on_connection: Callable[[TCPConnection], None]) -> None:
        self.service = service
        self.port = port
        self.on_connection = on_connection
        self.closed = False

    def close(self) -> None:
        """Stop accepting; existing connections are unaffected."""
        self.closed = True
        self.service._listeners.pop(self.port, None)


class TCPService:
    """Per-host TCP: demux, connection table, transmission."""

    EPHEMERAL_START = 33000

    def __init__(self, sim: Simulator, host: "Host", config: Config,
                 timings: HostTimings) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.timings = timings
        self._rng = sim.rng(f"tcp:{host.name}")
        self._tx_fifo = FifoDelay(sim)
        self._rx_fifo = FifoDelay(sim)
        self._connections: Dict[ConnKey, TCPConnection] = {}
        self._listeners: Dict[int, TCPListener] = {}
        self._next_ephemeral = self.EPHEMERAL_START
        host.ip.register_protocol(PROTO_TCP, self._receive)
        # Created eagerly so every TCP host reports these even when zero.
        self.retransmits_counter = sim.metrics.counter(
            "tcp", "retransmits", host=host.name)
        self.rto_counter = sim.metrics.counter(
            "tcp", "rto_expirations", host=host.name)
        self.dup_ack_counter = sim.metrics.counter(
            "tcp", "dup_acks", host=host.name)

    # ------------------------------------------------------------ lazy metrics
    # Created on first touch (like repro.faults' injected counters) so
    # default Tahoe/no-SACK runs leave snapshots byte-identical to the
    # pre-seam build.

    def fast_retransmits_counter(self):
        """Counter of fast-retransmit (3-dup-ACK) recoveries entered."""
        return self.sim.metrics.counter("tcp", "fast_retransmits",
                                        host=self.host.name)

    def sack_blocks_counter(self):
        """Counter of SACK blocks received and recorded."""
        return self.sim.metrics.counter("tcp", "sack_blocks_received",
                                        host=self.host.name)

    def sack_retransmits_counter(self):
        """Counter of scoreboard-driven hole retransmissions."""
        return self.sim.metrics.counter("tcp", "sack_retransmits",
                                        host=self.host.name)

    def persist_probes_counter(self):
        """Counter of zero-window probes sent (RFC 9293 3.8.6.1)."""
        return self.sim.metrics.counter("tcp", "persist_probes",
                                        host=self.host.name)

    def delayed_acks_counter(self):
        """Counter of ACKs deferred by the delayed-ACK timer."""
        return self.sim.metrics.counter("tcp", "delayed_acks",
                                        host=self.host.name)

    # ------------------------------------------------------------- public API

    def listen(self, port: int,
               on_connection: Callable[[TCPConnection], None]) -> TCPListener:
        """Accept connections on *port*; the callback gets each new one."""
        if port in self._listeners:
            raise TCPError(f"TCP port {port} already listening on {self.host.name}")
        listener = TCPListener(self, port, on_connection)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_addr: IPAddress, remote_port: int,
                src: IPAddress = UNSPECIFIED,
                local_port: int = 0, *,
                congestion_control: Optional[str] = None,
                initial_cwnd: Optional[int] = None,
                initial_ssthresh: Optional[int] = None) -> TCPConnection:
        """Open a connection; callbacks are set on the returned object.

        An unspecified ``src`` lets ``ip_rt_route()`` choose — on a mobile
        host that pins the connection to the home address, which is exactly
        why it survives later moves.  ``congestion_control`` overrides
        ``Config.tcp_congestion_control`` for this connection only.
        """
        if local_port == 0:
            local_port = self._allocate_ephemeral(remote_addr, remote_port)
        source = src
        if source.is_unspecified:
            route = self.host.ip.ip_rt_route(remote_addr, source)
            if route is None:
                raise TCPError(f"no route to {remote_addr}")
            source = route.source
        conn = TCPConnection(self, source, local_port, remote_addr, remote_port,
                             congestion_control=congestion_control,
                             initial_cwnd=initial_cwnd,
                             initial_ssthresh=initial_ssthresh)
        key = conn.key
        if key in self._connections:
            raise TCPError(f"connection {key} already exists")
        self._connections[key] = conn
        conn._open_active()
        return conn

    def _allocate_ephemeral(self, remote_addr: IPAddress, remote_port: int) -> int:
        port = self._next_ephemeral
        while (port, remote_addr, remote_port) in self._connections:
            port += 1
        self._next_ephemeral = port + 1
        return port

    # ---------------------------------------------------------------- plumbing

    def forget(self, conn: TCPConnection) -> None:
        """Drop a closed connection from the demux table."""
        self._connections.pop(conn.key, None)

    def transmit(self, conn: TCPConnection, segment: TCPSegment) -> None:
        """Wrap a segment in IP and send it (with host tx cost)."""
        packet = IPPacket.acquire(conn.local_addr, conn.remote_addr,
                                  PROTO_TCP, segment,
                                  self.config.default_ttl)
        delay = jittered(self._rng, self.timings.tx_cost, self.config.jitter)
        self._tx_fifo.post(delay, lambda: self.host.ip.send(packet),
                           label=f"tcp-tx:{self.host.name}")

    def _receive(self, packet: IPPacket, iface: "NetworkInterface") -> None:
        segment = packet.payload
        assert isinstance(segment, TCPSegment)
        delay = jittered(self._rng, self.timings.rx_cost, self.config.jitter)
        self._rx_fifo.post(delay, lambda: self._dispatch(packet, segment),
                           label=f"tcp-rx:{self.host.name}")

    def _dispatch(self, packet: IPPacket, segment: TCPSegment) -> None:
        try:
            self._demux(packet, segment)
        finally:
            # Recycle-on-delivery: at this point the only expected
            # references are this frame's parameters plus the closure cell
            # in the (already-dispatched) rx event.  Anything extra — a
            # reassembly buffer, a trace, a deferred callback — raises the
            # refcount and silently vetoes the release.
            release(packet, held=2)
            release(segment, held=2)

    def _demux(self, packet: IPPacket, segment: TCPSegment) -> None:
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment)
            return
        listener = self._listeners.get(segment.dst_port)
        if listener is not None and not listener.closed and FLAG_SYN in segment.flags \
                and FLAG_ACK not in segment.flags:
            self._accept(listener, packet, segment)
            return
        if FLAG_RST not in segment.flags:
            self._send_reset(packet, segment)

    def _accept(self, listener: TCPListener, packet: IPPacket,
                segment: TCPSegment) -> None:
        conn = TCPConnection(self, packet.dst, segment.dst_port,
                             packet.src, segment.src_port)
        self._connections[conn.key] = conn
        conn.state = TCPState.SYN_RECEIVED
        conn.rcv_nxt = segment.seq + 1
        listener.on_connection(conn)
        conn._emit(flags=frozenset({FLAG_SYN, FLAG_ACK}), seq=conn.iss)
        conn.snd_nxt = conn.iss + 1
        conn._start_timing(conn.iss)
        conn._arm_retransmit()

    def _send_reset(self, packet: IPPacket, segment: TCPSegment) -> None:
        reset = TCPSegment.acquire(segment.dst_port, segment.src_port,
                                   segment.ack, segment.seq + segment.seq_space,
                                   frozenset({FLAG_RST}))
        response = IPPacket.acquire(packet.dst, packet.src, PROTO_TCP,
                                    reset, self.config.default_ttl)
        self.sim.trace.emit("tcp", "reset_sent", host=self.host.name,
                            segment=segment.describe())
        self.host.ip.send(response)
