"""A simplified TCP: enough to show connections surviving handoffs.

The paper's motivating requirement is that "restarting all applications
every time we change locations is unacceptably annoying" — long-lived TCP
sessions (remote logins, news readers) must survive a network switch.  That
works in MosquitoNet because the connection's addresses never change: the
mobile host's end is always the home address, and segments lost during an
outage are recovered by ordinary retransmission.

This implementation is deliberately scoped to what the reproduction needs:

* three-way handshake, data transfer, FIN teardown, RST on unknown segments;
* byte-oriented sequence numbers with cumulative ACKs;
* timeout retransmission driven by one RTO timer per connection, with
  Jacobson/Karels RTT estimation and exponential backoff (Karn's rule:
  retransmitted segments don't update the RTT estimate);
* Tahoe-style congestion control: slow start and congestion avoidance,
  timeout collapses the window to one segment.  Without it a timeout
  across the 34 kbit/s radio would dump the whole window into a pipe that
  takes over a second to drain it — congestion collapse, the exact
  problem Van Jacobson fixed in 1988 and every 1996 TCP already had.

Out of scope: out-of-order reassembly (a receiver ACKs what it has; the
sender resends the rest), fast retransmit, selective ACKs, urgent data,
window scaling.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.config import Config, HostTimings
from repro.net.addressing import IPAddress, UNSPECIFIED
from repro.net.packet import PROTO_TCP, TCP_HEADER_BYTES, AppData, IPPacket
from repro.sim.engine import Event, Simulator
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

FLAG_SYN = "SYN"
FLAG_ACK = "ACK"
FLAG_FIN = "FIN"
FLAG_RST = "RST"


class TCPSegment:
    """One TCP segment; ``seq`` counts bytes, SYN/FIN occupy one each.

    A hand-rolled ``__slots__`` value class (previously a frozen
    dataclass): one is allocated per transmission including every
    retransmission, so construction cost is part of the datapath.
    Treat instances as immutable.
    """

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "payload")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: frozenset, payload: Optional[AppData] = None) -> None:
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload = payload if payload is not None else AppData()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TCPSegment):
            return NotImplemented
        return (self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.seq == other.seq and self.ack == other.ack
                and self.flags == other.flags
                and self.payload == other.payload)

    def __hash__(self) -> int:
        return hash((TCPSegment, self.src_port, self.dst_port, self.seq,
                     self.ack, self.flags, self.payload))

    def __repr__(self) -> str:
        return (f"TCPSegment(src_port={self.src_port}, "
                f"dst_port={self.dst_port}, seq={self.seq}, ack={self.ack}, "
                f"flags={self.flags!r}, payload={self.payload!r})")

    @property
    def size_bytes(self) -> int:
        """Wire size: TCP header plus payload."""
        return TCP_HEADER_BYTES + self.payload.size_bytes

    @property
    def seq_space(self) -> int:
        """Sequence-number space consumed: data bytes plus SYN/FIN."""
        length = self.payload.size_bytes
        if FLAG_SYN in self.flags:
            length += 1
        if FLAG_FIN in self.flags:
            length += 1
        return length

    def describe(self) -> str:
        """One-line human-readable summary."""
        names = "|".join(sorted(self.flags)) or "-"
        return (f"{self.src_port}->{self.dst_port} {names} seq={self.seq} "
                f"ack={self.ack} len={self.payload.size_bytes}")


class TCPState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


#: Key identifying one connection: (local port, remote addr, remote port).
ConnKey = Tuple[int, IPAddress, int]

_initial_seq = itertools.count(1000, 64000)

#: Retransmission limits.
MIN_RTO = ms(400)
MAX_RTO = ms(16_000)
MAX_RETRANSMITS = 12
TIME_WAIT_DELAY = ms(2000)
#: Fixed in-flight window (segments' worth of bytes).
DEFAULT_WINDOW_BYTES = 4096
#: Maximum payload bytes per segment.
DEFAULT_MSS = 512


@dataclass
class _SendItem:
    offset: int
    data: AppData
    fin: bool = False


class TCPConnection:
    """One endpoint of a TCP connection."""

    def __init__(self, service: "TCPService", local_addr: IPAddress,
                 local_port: int, remote_addr: IPAddress, remote_port: int) -> None:
        self._service = service
        self.sim = service.sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = TCPState.CLOSED

        # Send side.
        self.iss = next(_initial_seq)
        self.snd_una = self.iss          # oldest unacknowledged
        self.snd_nxt = self.iss          # next to (re)send
        self.snd_max = self.iss          # highest ever sent (for rewinds)
        self._send_buffer: List[_SendItem] = []
        self._next_offset = 0            # byte offset after SYN for app data
        self._fin_queued = False

        # Receive side.
        self.rcv_nxt = 0

        # Congestion control (Tahoe): slow start + congestion avoidance.
        self.cwnd = 2 * DEFAULT_MSS
        self.ssthresh = DEFAULT_WINDOW_BYTES

        # RTT estimation (Jacobson/Karels), nanoseconds.
        self._srtt: Optional[int] = None
        self._rttvar: int = 0
        self._rto: int = ms(1000)
        self._rto_backoff = 0
        self._timing_seq: Optional[int] = None   # Karn: seq whose RTT we time
        self._timing_sent_at = 0
        self._retransmit_event: Optional[Event] = None
        self._retransmit_count = 0

        # Callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[AppData], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None

        # Statistics (examples and tests read these).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_retransmitted = 0

    # ------------------------------------------------------------ public API

    @property
    def key(self) -> ConnKey:
        """The demux key: (local port, remote addr, remote port)."""
        return (self.local_port, self.remote_addr, self.remote_port)

    def send(self, data: AppData) -> None:
        """Queue application data for reliable delivery.

        Writes larger than the MSS are segmented; the first segment keeps
        the application's content object (so small-message protocols see
        their objects intact) and continuation segments carry sizing only,
        as a byte stream would.
        """
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise TCPError(f"cannot send in state {self.state.value}")
        if data.size_bytes <= 0:
            raise TCPError("cannot send an empty payload")
        remaining = data.size_bytes
        first = True
        while remaining > 0:
            take = min(remaining, DEFAULT_MSS)
            chunk = AppData(data.content if first
                            else ("segment-of", data.content), take)
            self._send_buffer.append(_SendItem(offset=self._next_offset,
                                               data=chunk))
            self._next_offset += take
            remaining -= take
            first = False
        self._pump()

    def close(self) -> None:
        """Half-close: FIN after any queued data."""
        if self.state in (TCPState.CLOSED, TCPState.TIME_WAIT,
                          TCPState.LAST_ACK, TCPState.FIN_WAIT_1,
                          TCPState.FIN_WAIT_2):
            return
        self._fin_queued = True
        self._send_buffer.append(_SendItem(offset=self._next_offset,
                                           data=AppData(None, 0), fin=True))
        self._next_offset += 1
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT_1
        elif self.state == TCPState.CLOSE_WAIT:
            self.state = TCPState.LAST_ACK
        self._pump()

    def abort(self) -> None:
        """Send RST and drop all state."""
        self._emit(flags=frozenset({FLAG_RST}))
        self._teardown()

    # ---------------------------------------------------------- client opening

    def _open_active(self) -> None:
        self.state = TCPState.SYN_SENT
        self._emit(flags=frozenset({FLAG_SYN}), seq=self.iss)
        self.snd_nxt = self.iss + 1
        self.snd_max = self.snd_nxt
        self._start_timing(self.iss)
        self._arm_retransmit()

    # ----------------------------------------------------------------- sending

    def _pump(self) -> None:
        """Transmit whatever the window allows."""
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT,
                              TCPState.FIN_WAIT_1, TCPState.LAST_ACK):
            return
        window_limit = self.snd_una + min(DEFAULT_WINDOW_BYTES, self.cwnd)
        base = self.iss + 1
        for item in self._send_buffer:
            seq = base + item.offset
            end = seq + (1 if item.fin else item.data.size_bytes)
            if seq < self.snd_nxt:
                continue  # already in flight
            if end > window_limit:
                break
            if item.fin:
                self._emit(flags=frozenset({FLAG_FIN, FLAG_ACK}), seq=seq)
            else:
                self._emit(flags=frozenset({FLAG_ACK}), seq=seq, payload=item.data)
                self.bytes_sent += item.data.size_bytes
            self.snd_nxt = end
            self.snd_max = max(self.snd_max, end)
            if self._timing_seq is None:
                self._start_timing(seq)
        if self.snd_nxt > self.snd_una and self._retransmit_event is None:
            # Only arm if idle: re-arming on every application write would
            # keep pushing the deadline out and the timer would never fire
            # while the application keeps producing data.
            self._arm_retransmit()

    def _emit(self, flags: frozenset, seq: Optional[int] = None,
              payload: Optional[AppData] = None) -> None:
        segment = TCPSegment(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=seq if seq is not None else self.snd_nxt,
            ack=self.rcv_nxt, flags=flags,
            payload=payload if payload is not None else AppData(None, 0),
        )
        self.segments_sent += 1
        self._service.transmit(self, segment)

    def _send_ack(self) -> None:
        self._emit(flags=frozenset({FLAG_ACK}))

    # ----------------------------------------------------- retransmission/RTT

    def _start_timing(self, seq: int) -> None:
        self._timing_seq = seq
        self._timing_sent_at = self.sim.now

    def _update_rtt(self, measured: int) -> None:
        if self._srtt is None:
            self._srtt = measured
            self._rttvar = measured // 2
        else:
            delta = measured - self._srtt
            self._srtt += delta // 8
            self._rttvar += (abs(delta) - self._rttvar) // 4
        self._rto = max(MIN_RTO, min(MAX_RTO, self._srtt + 4 * self._rttvar))
        self._rto_backoff = 0

    def _arm_retransmit(self) -> None:
        self._cancel_retransmit()
        rto = min(MAX_RTO, self._rto << self._rto_backoff)
        self._retransmit_event = self.sim.call_later(
            rto, self._on_retransmit_timeout,
            label=f"tcp-rto:{self.local_port}",
        )

    def _cancel_retransmit(self) -> None:
        if self._retransmit_event is not None:
            self._retransmit_event.cancel()
            self._retransmit_event = None

    def _on_retransmit_timeout(self) -> None:
        self._retransmit_event = None
        if self.snd_una >= self.snd_max and self.state not in (
                TCPState.SYN_SENT, TCPState.SYN_RECEIVED):
            return  # everything acknowledged meanwhile
        self._service.rto_counter.value += 1
        self._retransmit_count += 1
        if self._retransmit_count > MAX_RETRANSMITS:
            self.sim.trace.emit("tcp", "gave_up", conn=self._describe())
            if self.on_reset is not None:
                self.on_reset()
            self._teardown()
            return
        self.segments_retransmitted += 1
        self._service.retransmits_counter.value += 1
        self._rto_backoff = min(self._rto_backoff + 1, 6)
        self._timing_seq = None  # Karn's rule
        # Tahoe on timeout: remember half the flight as the slow-start
        # threshold, collapse the window to one segment, and rewind the
        # send point to the oldest unacknowledged byte.  The pump then
        # resends exactly one segment now; slow start re-covers the rest
        # as ACKs return, instead of dumping the whole window into a slow
        # link at once.
        flight = self.snd_max - self.snd_una
        self.ssthresh = max(flight // 2, DEFAULT_MSS)
        self.cwnd = DEFAULT_MSS
        self.sim.trace.emit("tcp", "retransmit", conn=self._describe(),
                            snd_una=self.snd_una, attempt=self._retransmit_count)
        if self.state == TCPState.SYN_SENT:
            self._emit(flags=frozenset({FLAG_SYN}), seq=self.iss)
        elif self.state == TCPState.SYN_RECEIVED:
            self._emit(flags=frozenset({FLAG_SYN, FLAG_ACK}), seq=self.iss)
        else:
            self.snd_nxt = self.snd_una
            self._pump()
        self._arm_retransmit()

    # --------------------------------------------------------------- receiving

    def handle_segment(self, segment: TCPSegment) -> None:
        """Process one received segment (the whole state machine)."""
        if FLAG_RST in segment.flags:
            self.sim.trace.emit("tcp", "reset_received", conn=self._describe())
            if self.on_reset is not None:
                self.on_reset()
            self._teardown()
            return
        if self.state == TCPState.SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if self.state == TCPState.SYN_RECEIVED and FLAG_ACK in segment.flags \
                and segment.ack >= self.iss + 1:
            self.state = TCPState.ESTABLISHED
            self._established()
        if FLAG_ACK in segment.flags:
            self._process_ack(segment.ack)
        if FLAG_SYN in segment.flags and self.state == TCPState.ESTABLISHED:
            # Peer retransmitted SYN+ACK (our ACK was lost): re-ACK it.
            self._send_ack()
            return
        self._process_payload(segment)

    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if FLAG_SYN not in segment.flags or FLAG_ACK not in segment.flags:
            return
        if segment.ack != self.iss + 1:
            return
        self.rcv_nxt = segment.seq + 1
        self.snd_una = segment.ack
        self._retransmit_count = 0
        if self._timing_seq is not None and self._timing_seq == self.iss:
            self._update_rtt(self.sim.now - self._timing_sent_at)
            self._timing_seq = None
        self._cancel_retransmit()
        self.state = TCPState.ESTABLISHED
        self._send_ack()
        self._established()
        self._pump()

    def _established(self) -> None:
        self.sim.trace.emit("tcp", "established", conn=self._describe())
        if self.on_established is not None:
            callback, self.on_established = self.on_established, None
            callback()

    def _process_ack(self, ack: int) -> None:
        if ack <= self.snd_una or ack > self.snd_max:
            if ack == self.snd_una and self.snd_max > self.snd_una:
                # An ACK that advances nothing while data is in flight.
                self._service.dup_ack_counter.value += 1
            return
        if self._timing_seq is not None and ack > self._timing_seq:
            self._update_rtt(self.sim.now - self._timing_sent_at)
            self._timing_seq = None
        self.snd_una = ack
        if self.snd_nxt < ack:
            self.snd_nxt = ack  # a late ACK can outrun a rewound send point
        self._retransmit_count = 0
        # Congestion window growth: slow start below ssthresh (one MSS per
        # ACK), additive increase above it.
        if self.cwnd < self.ssthresh:
            self.cwnd += DEFAULT_MSS
        else:
            self.cwnd += max(DEFAULT_MSS * DEFAULT_MSS // self.cwnd, 1)
        self.cwnd = min(self.cwnd, DEFAULT_WINDOW_BYTES)
        self._trim_send_buffer()
        if self.snd_una >= self.snd_max:
            self._cancel_retransmit()
            self._on_all_acked()
        else:
            self._arm_retransmit()
        self._pump()

    def _trim_send_buffer(self) -> None:
        base = self.iss + 1
        self._send_buffer = [
            item for item in self._send_buffer
            if base + item.offset + (1 if item.fin else item.data.size_bytes)
            > self.snd_una
        ]

    def _on_all_acked(self) -> None:
        if self.state == TCPState.FIN_WAIT_1 and self._fin_queued:
            self.state = TCPState.FIN_WAIT_2
        elif self.state == TCPState.LAST_ACK:
            self._teardown()

    def _process_payload(self, segment: TCPSegment) -> None:
        has_fin = FLAG_FIN in segment.flags
        length = segment.payload.size_bytes
        if length == 0 and not has_fin:
            return
        if segment.seq != self.rcv_nxt:
            # Out of order or duplicate: re-ACK what we have (go-back-N).
            self._send_ack()
            return
        if length > 0:
            self.rcv_nxt += length
            self.bytes_received += length
            if self.on_data is not None:
                self.on_data(segment.payload)
        if has_fin:
            self.rcv_nxt += 1
            self._handle_fin()
        self._send_ack()

    def _handle_fin(self) -> None:
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
        elif self.state == TCPState.FIN_WAIT_2:
            self.state = TCPState.TIME_WAIT
            self.sim.call_later(TIME_WAIT_DELAY, self._teardown,
                                label=f"tcp-timewait:{self.local_port}")
        elif self.state == TCPState.FIN_WAIT_1:
            self.state = TCPState.TIME_WAIT
            self.sim.call_later(TIME_WAIT_DELAY, self._teardown,
                                label=f"tcp-timewait:{self.local_port}")
        if self.on_close is not None:
            callback, self.on_close = self.on_close, None
            callback()

    def _teardown(self) -> None:
        self._cancel_retransmit()
        previous, self.state = self.state, TCPState.CLOSED
        if previous != TCPState.CLOSED:
            self._service.forget(self)

    def _describe(self) -> str:
        return (f"{self.local_addr}:{self.local_port}<->"
                f"{self.remote_addr}:{self.remote_port} {self.state.value}")


class TCPError(RuntimeError):
    """Raised on invalid TCP API usage."""


class TCPListener:
    """A passive socket waiting for connections on a port."""

    def __init__(self, service: "TCPService", port: int,
                 on_connection: Callable[[TCPConnection], None]) -> None:
        self.service = service
        self.port = port
        self.on_connection = on_connection
        self.closed = False

    def close(self) -> None:
        """Stop accepting; existing connections are unaffected."""
        self.closed = True
        self.service._listeners.pop(self.port, None)


class TCPService:
    """Per-host TCP: demux, connection table, transmission."""

    EPHEMERAL_START = 33000

    def __init__(self, sim: Simulator, host: "Host", config: Config,
                 timings: HostTimings) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.timings = timings
        self._rng = sim.rng(f"tcp:{host.name}")
        self._tx_fifo = FifoDelay(sim)
        self._rx_fifo = FifoDelay(sim)
        self._connections: Dict[ConnKey, TCPConnection] = {}
        self._listeners: Dict[int, TCPListener] = {}
        self._next_ephemeral = self.EPHEMERAL_START
        host.ip.register_protocol(PROTO_TCP, self._receive)
        # Created eagerly so every TCP host reports these even when zero.
        self.retransmits_counter = sim.metrics.counter(
            "tcp", "retransmits", host=host.name)
        self.rto_counter = sim.metrics.counter(
            "tcp", "rto_expirations", host=host.name)
        self.dup_ack_counter = sim.metrics.counter(
            "tcp", "dup_acks", host=host.name)

    # ------------------------------------------------------------- public API

    def listen(self, port: int,
               on_connection: Callable[[TCPConnection], None]) -> TCPListener:
        """Accept connections on *port*; the callback gets each new one."""
        if port in self._listeners:
            raise TCPError(f"TCP port {port} already listening on {self.host.name}")
        listener = TCPListener(self, port, on_connection)
        self._listeners[port] = listener
        return listener

    def connect(self, remote_addr: IPAddress, remote_port: int,
                src: IPAddress = UNSPECIFIED,
                local_port: int = 0) -> TCPConnection:
        """Open a connection; callbacks are set on the returned object.

        An unspecified ``src`` lets ``ip_rt_route()`` choose — on a mobile
        host that pins the connection to the home address, which is exactly
        why it survives later moves.
        """
        if local_port == 0:
            local_port = self._allocate_ephemeral(remote_addr, remote_port)
        source = src
        if source.is_unspecified:
            route = self.host.ip.ip_rt_route(remote_addr, source)
            if route is None:
                raise TCPError(f"no route to {remote_addr}")
            source = route.source
        conn = TCPConnection(self, source, local_port, remote_addr, remote_port)
        key = conn.key
        if key in self._connections:
            raise TCPError(f"connection {key} already exists")
        self._connections[key] = conn
        conn._open_active()
        return conn

    def _allocate_ephemeral(self, remote_addr: IPAddress, remote_port: int) -> int:
        port = self._next_ephemeral
        while (port, remote_addr, remote_port) in self._connections:
            port += 1
        self._next_ephemeral = port + 1
        return port

    # ---------------------------------------------------------------- plumbing

    def forget(self, conn: TCPConnection) -> None:
        """Drop a closed connection from the demux table."""
        self._connections.pop(conn.key, None)

    def transmit(self, conn: TCPConnection, segment: TCPSegment) -> None:
        """Wrap a segment in IP and send it (with host tx cost)."""
        packet = IPPacket(src=conn.local_addr, dst=conn.remote_addr,
                          protocol=PROTO_TCP, payload=segment,
                          ttl=self.config.default_ttl)
        delay = jittered(self._rng, self.timings.tx_cost, self.config.jitter)
        self._tx_fifo.schedule(delay, lambda: self.host.ip.send(packet),
                               label=f"tcp-tx:{self.host.name}")

    def _receive(self, packet: IPPacket, iface: "NetworkInterface") -> None:
        segment = packet.payload
        assert isinstance(segment, TCPSegment)
        delay = jittered(self._rng, self.timings.rx_cost, self.config.jitter)
        self._rx_fifo.schedule(delay, lambda: self._dispatch(packet, segment),
                               label=f"tcp-rx:{self.host.name}")

    def _dispatch(self, packet: IPPacket, segment: TCPSegment) -> None:
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment)
            return
        listener = self._listeners.get(segment.dst_port)
        if listener is not None and not listener.closed and FLAG_SYN in segment.flags \
                and FLAG_ACK not in segment.flags:
            self._accept(listener, packet, segment)
            return
        if FLAG_RST not in segment.flags:
            self._send_reset(packet, segment)

    def _accept(self, listener: TCPListener, packet: IPPacket,
                segment: TCPSegment) -> None:
        conn = TCPConnection(self, packet.dst, segment.dst_port,
                             packet.src, segment.src_port)
        self._connections[conn.key] = conn
        conn.state = TCPState.SYN_RECEIVED
        conn.rcv_nxt = segment.seq + 1
        listener.on_connection(conn)
        conn._emit(flags=frozenset({FLAG_SYN, FLAG_ACK}), seq=conn.iss)
        conn.snd_nxt = conn.iss + 1
        conn._start_timing(conn.iss)
        conn._arm_retransmit()

    def _send_reset(self, packet: IPPacket, segment: TCPSegment) -> None:
        reset = TCPSegment(src_port=segment.dst_port, dst_port=segment.src_port,
                           seq=segment.ack, ack=segment.seq + segment.seq_space,
                           flags=frozenset({FLAG_RST}))
        response = IPPacket(src=packet.dst, dst=packet.src, protocol=PROTO_TCP,
                            payload=reset, ttl=self.config.default_ttl)
        self.sim.trace.emit("tcp", "reset_sent", host=self.host.name,
                            segment=segment.describe())
        self.host.ip.send(response)
