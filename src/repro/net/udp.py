"""UDP and a small socket-style API.

Sockets matter to the paper's transparency story (Section 5.2): a socket
bound to the unspecified source address is *not* mobile-aware — the stack
fills in the home address and applies mobile IP.  A socket explicitly bound
to a particular interface address ("mobile-aware software") bypasses mobile
IP entirely; that is the mobile host's local role.  Both behaviours fall
out of passing the socket's bound source address as the hint to
``ip_rt_route()``, exactly as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.config import Config, HostTimings
from repro.net.addressing import IPAddress, UNSPECIFIED
from repro.net.packet import PROTO_UDP, AppData, IPPacket, UDPDatagram
from repro.sim.arena import release
from repro.sim.engine import Simulator
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

#: Handler signature: (data, source_address, source_port, destination_address).
DatagramHandler = Callable[[AppData, IPAddress, int, IPAddress], None]


class UDPError(RuntimeError):
    """Raised on invalid socket operations (port in use, etc.)."""


class UDPSocket:
    """One bound UDP endpoint."""

    def __init__(self, service: "UDPService", port: int,
                 bound_address: IPAddress) -> None:
        self._service = service
        self.port = port
        #: UNSPECIFIED means "any local address, stack chooses source".
        self.bound_address = bound_address
        self.handler: Optional[DatagramHandler] = None
        self.closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def on_datagram(self, handler: DatagramHandler) -> "UDPSocket":
        """Register the receive callback; returns self for chaining."""
        self.handler = handler
        return self

    def sendto(self, data: AppData, dst: IPAddress, dst_port: int,
               via: Optional["NetworkInterface"] = None,
               ttl: Optional[int] = None) -> None:
        """Send one datagram.

        The packet's source starts as this socket's bound address; an
        unbound socket sends with the unspecified source and lets
        ``ip_rt_route()`` choose — which on a mobile host means the home
        address and full mobile-IP treatment.
        """
        if self.closed:
            raise UDPError("socket is closed")
        self.datagrams_sent += 1
        self._service.send_datagram(self, data, dst, dst_port, via=via, ttl=ttl)

    def close(self) -> None:
        """Release the port; further sends raise."""
        if not self.closed:
            self.closed = True
            self._service.release(self)

    def _deliver(self, data: AppData, src: IPAddress, src_port: int,
                 dst: IPAddress) -> None:
        self.datagrams_received += 1
        if self.handler is not None:
            self.handler(data, src, src_port, dst)


class UDPService:
    """Per-host UDP: port table, demux, datagram transmission."""

    EPHEMERAL_START = 49152

    def __init__(self, sim: Simulator, host: "Host", config: Config,
                 timings: HostTimings) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.timings = timings
        self._rng = sim.rng(f"udp:{host.name}")
        self._tx_fifo = FifoDelay(sim)
        self._rx_fifo = FifoDelay(sim)
        self._sockets: Dict[int, UDPSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_START
        self.datagrams_dropped_no_port = 0
        host.ip.register_protocol(PROTO_UDP, self._receive)

    # --------------------------------------------------------------- sockets

    def open(self, port: int = 0,
             bound_address: IPAddress = UNSPECIFIED) -> UDPSocket:
        """Bind a socket; port 0 picks an ephemeral port."""
        if port == 0:
            port = self._allocate_ephemeral()
        if port in self._sockets:
            raise UDPError(f"UDP port {port} already bound on {self.host.name}")
        sock = UDPSocket(self, port, bound_address)
        self._sockets[port] = sock
        return sock

    def release(self, sock: UDPSocket) -> None:
        """Unbind a socket's port (internal, called by close)."""
        existing = self._sockets.get(sock.port)
        if existing is sock:
            del self._sockets[sock.port]

    def _allocate_ephemeral(self) -> int:
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
            if self._next_ephemeral > 0xFFFF:
                raise UDPError("ephemeral ports exhausted")
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # ------------------------------------------------------------------ send

    def send_datagram(self, sock: UDPSocket, data: AppData, dst: IPAddress,
                      dst_port: int, via: Optional["NetworkInterface"] = None,
                      ttl: Optional[int] = None) -> None:
        """Build and transmit one datagram for *sock*."""
        datagram = UDPDatagram.acquire(sock.port, dst_port, data)
        source = sock.bound_address
        if source.is_unspecified and via is None:
            route = self.host.ip.ip_rt_route(dst, source)
            if route is not None:
                source = route.source
        elif source.is_unspecified and via is not None and via.address is not None:
            source = via.address
        packet = IPPacket.acquire(source, dst, PROTO_UDP, datagram,
                                  ttl if ttl is not None else self.config.default_ttl)
        delay = jittered(self._rng, self.timings.tx_cost, self.config.jitter)
        self._tx_fifo.post(delay, lambda: self.host.ip.send(packet, via=via),
                           label=f"udp-tx:{self.host.name}")

    # --------------------------------------------------------------- receive

    def _receive(self, packet: IPPacket, iface: "NetworkInterface") -> None:
        datagram = packet.payload
        assert isinstance(datagram, UDPDatagram)
        sock = self._sockets.get(datagram.dst_port)
        if sock is None or sock.closed:
            self.datagrams_dropped_no_port += 1
            self.sim.trace.emit("udp", "no_port", host=self.host.name,
                                port=datagram.dst_port)
            return
        if (not sock.bound_address.is_unspecified
                and not packet.dst.is_limited_broadcast
                and sock.bound_address != packet.dst):
            self.datagrams_dropped_no_port += 1
            self.sim.trace.emit("udp", "bound_mismatch", host=self.host.name,
                                port=datagram.dst_port, dst=str(packet.dst))
            return
        delay = jittered(self._rng, self.timings.rx_cost, self.config.jitter)
        self._rx_fifo.post(
            delay,
            lambda: self._deliver_datagram(sock, datagram, packet),
            label=f"udp-rx:{self.host.name}",
        )

    def _deliver_datagram(self, sock: UDPSocket, datagram: UDPDatagram,
                          packet: IPPacket) -> None:
        sock._deliver(datagram.payload, packet.src, datagram.src_port,
                      packet.dst)
        # Recycle-on-delivery: the expected remaining references are this
        # frame's parameters plus the rx closure's cells (held=2 each).
        # Anything else still holding the packet or datagram — a trace, a
        # fault hook, a test — raises the refcount and vetoes the release.
        release(packet, held=2)
        release(datagram, held=2)
