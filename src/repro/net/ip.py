"""The IP layer of a host: routing, local delivery, forwarding.

This module exposes the same three extension points the paper added to
Linux 1.2.13 (Section 3.3):

1. ``route_hook`` — a replacement for the route-lookup function
   ``ip_rt_route()``.  The mobile host installs a hook that consults the
   Mobile Policy Table *in addition to* the ordinary routing table; plain
   hosts leave it unset.
2. Protocol handler registration — the IP-in-IP (IPIP) module registers for
   protocol 4 exactly like TCP and UDP register for theirs.
3. ``forward_filter`` — routers use it for the "security-conscious" transit
   traffic filtering of Section 3.2 that defeats the plain triangle route.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Protocol

from repro.config import Config, HostTimings
from repro.net.addressing import IPAddress, UNSPECIFIED
from repro.net.packet import IPPacket
from repro.net.routing import RouteResult, RoutingTable
from repro.sim.engine import Simulator
from repro.sim.fifo import FifoDelay
from repro.sim.randomness import jittered

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

#: A protocol handler receives (packet, arriving_interface).
ProtocolHandler = Callable[[IPPacket, "NetworkInterface"], None]
#: A forward filter returns True to allow forwarding the packet.
ForwardFilter = Callable[[IPPacket, "NetworkInterface"], bool]


class RouteHook(Protocol):
    """Replacement for ``ip_rt_route()`` (the paper's single kernel hook).

    Called with the destination, the caller's source hint (possibly
    unspecified) and the default lookup function.  Return a
    :class:`RouteResult` to take over routing for this packet, or ``None``
    to fall through to the ordinary table.
    """

    def __call__(self, dst: IPAddress, src_hint: IPAddress,
                 default: Callable[[IPAddress, IPAddress], Optional[RouteResult]]
                 ) -> Optional[RouteResult]: ...


class IPStack:
    """Per-host IP: send, receive, deliver, forward."""

    def __init__(self, sim: Simulator, host: "Host", config: Config,
                 timings: HostTimings) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        self.timings = timings
        self.routes = RoutingTable(cache_size=config.route_cache_size)
        self.forwarding = False
        self.route_hook: Optional[RouteHook] = None
        self.forward_filter: Optional[ForwardFilter] = None
        #: Memoized :meth:`is_local` verdicts (addr value -> bool).  A
        #: hub router owns one interface per attached link, and scanning
        #: them all per received packet is O(ports) — quadratic across a
        #: fleet.  Interfaces invalidate the cache on any address or
        #: subnet change, so mobility (care-of churn) stays correct.
        self._local_cache: Dict[int, bool] = {}
        self._handlers: Dict[int, ProtocolHandler] = {}
        self._rng = sim.rng(f"ip:{host.name}")
        self._forward_fifo = FifoDelay(sim)
        # Statistics.
        self.sent = 0
        self.delivered = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_filtered = 0
        self.dropped_ttl = 0
        self.dropped_not_local = 0
        metrics = sim.metrics
        self._forwarded_counter = metrics.counter("ip", "forwards",
                                                  host=host.name)
        self._ttl_drop_counter = metrics.counter("ip", "ttl_drops",
                                                 host=host.name)
        self._no_route_counter = metrics.counter("ip", "no_route_drops",
                                                 host=host.name)
        self._filtered_counter = metrics.counter("ip", "filtered_drops",
                                                 host=host.name)

    # --------------------------------------------------------------- plumbing

    def register_protocol(self, protocol: int, handler: ProtocolHandler) -> None:
        """Register the upper-layer handler for an IP protocol number."""
        if protocol in self._handlers:
            raise ValueError(f"protocol {protocol} already registered on {self.host.name}")
        self._handlers[protocol] = handler

    def local_addresses(self) -> set:
        """Every address any of this host's interfaces currently owns."""
        owned = set()
        for iface in self.host.interfaces:
            owned.update(iface.addresses)
        return owned

    def invalidate_local_cache(self) -> None:
        """Drop memoized :meth:`is_local` verdicts (addresses changed)."""
        self._local_cache.clear()

    def is_local(self, addr: IPAddress) -> bool:
        """True if *addr* is one of ours (incl. loopback/broadcast)."""
        verdict = self._local_cache.get(addr.value)
        if verdict is None:
            verdict = self._is_local_scan(addr)
            if len(self._local_cache) < 65536:
                self._local_cache[addr.value] = verdict
        return verdict

    def _is_local_scan(self, addr: IPAddress) -> bool:
        if addr.is_loopback or addr.is_limited_broadcast:
            return True
        for iface in self.host.interfaces:
            if iface.owns_address(addr):
                return True
            if iface.subnet is not None and addr == iface.subnet.broadcast:
                return True
        return False

    # ---------------------------------------------------------------- routing

    def ip_rt_route(self, dst: IPAddress,
                    src_hint: IPAddress = UNSPECIFIED) -> Optional[RouteResult]:
        """The paper's hooked route lookup: interface + source + gateway."""
        if self.route_hook is not None:
            result = self.route_hook(dst, src_hint, self._default_lookup)
            if result is not None:
                return result
        return self._default_lookup(dst, src_hint)

    def _default_lookup(self, dst: IPAddress,
                        src_hint: IPAddress = UNSPECIFIED) -> Optional[RouteResult]:
        entry = self.routes.lookup(dst)
        if entry is None:
            return None
        source = src_hint
        if source.is_unspecified:
            if entry.source is not None:
                source = entry.source
            elif entry.interface.address is not None:
                source = entry.interface.address
            else:
                source = UNSPECIFIED
        return RouteResult(interface=entry.interface, source=source,
                           gateway=entry.gateway)

    # ----------------------------------------------------------------- sending

    def send(self, packet: IPPacket,
             via: Optional["NetworkInterface"] = None,
             next_hop: Optional[IPAddress] = None) -> bool:
        """Route and transmit a fully formed packet.

        ``via``/``next_hop`` bypass routing for callers that already know
        the interface (DHCP broadcasts before an address exists, VIF
        re-injection onto a pinned physical interface).
        Returns False when the packet could not be sent (no route).
        """
        self.sent += 1
        trace = self.sim.trace
        if trace.wants("ip"):
            # Guarded: packet.describe() formats the whole header chain,
            # which dominates the send path when tracing is off.
            trace.emit("ip", "send", host=self.host.name,
                       packet=packet.describe())
        if via is not None:
            hop = next_hop if next_hop is not None else self._next_hop_via(packet.dst, via)
            via.send_ip(packet, hop)
            return True
        if packet.dst.is_loopback or self.is_local(packet.dst):
            # Local destinations loop straight back up the stack.
            self.sim.post_later(0, lambda: self.deliver(packet, self.host.loopback),
                                label=f"ip-local:{self.host.name}")
            return True
        route = self.ip_rt_route(packet.dst, packet.src)
        if route is None:
            self.dropped_no_route += 1
            self._no_route_counter.value += 1
            if trace.wants("ip"):
                trace.emit("ip", "no_route", host=self.host.name,
                           packet=packet.describe())
            return False
        route.interface.send_ip(packet, route.next_hop(packet.dst))
        return True

    def _next_hop_via(self, dst: IPAddress, via: "NetworkInterface") -> IPAddress:
        """Link-layer next hop for a send pinned to *via*.

        On-link (or broadcast) destinations are delivered directly; off-link
        destinations go through a gateway reachable over *via* — most
        specific matching route first, any gateway on the interface's
        subnet as a fallback.
        """
        if dst.is_limited_broadcast:
            return dst
        if via.subnet is not None and dst in via.subnet:
            return dst
        best = None
        for entry in self.routes:
            if entry.interface is not via or not entry.matches(dst):
                continue
            if best is None or entry.destination.prefix_len > best.destination.prefix_len:
                best = entry
        if best is not None:
            return best.gateway if best.gateway is not None else dst
        for entry in self.routes:
            if (entry.gateway is not None and via.subnet is not None
                    and entry.gateway in via.subnet):
                return entry.gateway
        return dst

    # --------------------------------------------------------------- receiving

    def receive_packet(self, packet: IPPacket, iface: "NetworkInterface") -> None:
        """Entry point for packets arriving from an interface."""
        trace = self.sim.trace
        if trace.wants("ip"):
            trace.emit("ip", "receive", host=self.host.name,
                       interface=iface.name, packet=packet.describe())
        if self._destined_here(packet, iface):
            self.deliver(packet, iface)
            return
        if self.forwarding:
            self._forward(packet, iface)
            return
        self.dropped_not_local += 1
        if trace.wants("ip"):
            trace.emit("ip", "drop_not_local", host=self.host.name,
                       packet=packet.describe())

    def _destined_here(self, packet: IPPacket, iface: "NetworkInterface") -> bool:
        if self.is_local(packet.dst):
            return True
        if packet.dst.is_limited_broadcast:
            return True
        if iface.subnet is not None and packet.dst == iface.subnet.broadcast:
            return True
        return False

    def deliver(self, packet: IPPacket, iface: "NetworkInterface") -> None:
        """Demultiplex a locally destined packet to its protocol handler."""
        handler = self._handlers.get(packet.protocol)
        if handler is None:
            self.sim.trace.emit("ip", "no_protocol", host=self.host.name,
                                protocol=packet.protocol)
            return
        self.delivered += 1
        handler(packet, iface)

    # -------------------------------------------------------------- forwarding

    def _forward(self, packet: IPPacket, in_iface: "NetworkInterface") -> None:
        trace = self.sim.trace
        if packet.ttl <= 1:
            self.dropped_ttl += 1
            self._ttl_drop_counter.value += 1
            if trace.wants("ip"):
                trace.emit("ip", "ttl_exceeded", host=self.host.name,
                           packet=packet.describe())
            self.host.icmp.send_time_exceeded(packet)
            return
        if self.forward_filter is not None and not self.forward_filter(packet, in_iface):
            self.dropped_filtered += 1
            self._filtered_counter.value += 1
            if trace.wants("ip"):
                trace.emit("ip", "filtered", host=self.host.name,
                           packet=packet.describe())
            return
        route = self.ip_rt_route(packet.dst, packet.src)
        if route is None:
            self.dropped_no_route += 1
            self._no_route_counter.value += 1
            if trace.wants("ip"):
                trace.emit("ip", "no_route", host=self.host.name,
                           packet=packet.describe())
            self.host.icmp.send_dest_unreachable(packet)
            return
        forwarded = packet.decremented()
        self.forwarded += 1
        self._forwarded_counter.value += 1
        delay = jittered(self._rng, self.timings.forward_cost, self.config.jitter)
        out_iface = route.interface
        hop = route.next_hop(forwarded.dst)
        if out_iface is in_iface and route.gateway is not None:
            # Same-interface forwarding: the sender could have gone direct.
            self.host.icmp.maybe_send_redirect(packet, route, in_iface)
        self._forward_fifo.post(
            delay,
            lambda: out_iface.send_ip(forwarded, hop),
            label=f"fwd:{self.host.name}",
        )
