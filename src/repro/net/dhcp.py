"""DHCP: dynamic care-of address acquisition on foreign networks.

The paper's whole premise is that a visited network owes the mobile host
nothing beyond "its ability to provide a dynamically-assigned temporary IP
care-of address ... more easily provided automatically by DHCP" (Section 2).
This module implements the classic four-step handshake (DISCOVER, OFFER,
REQUEST, ACK) over UDP ports 67/68, leases with renewal, and release.

One paper-specific requirement (Section 5.1, the accidental-eavesdropping
note): "a well-written DHCP server would avoid reassigning the same IP
address for as long as possible."  The server's free pool is therefore a
FIFO of released addresses — a freshly released address goes to the back of
the queue and is handed out again only after every other free address has
been used.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.net.addressing import IPAddress, LIMITED_BROADCAST, Subnet, UNSPECIFIED
from repro.net.packet import AppData
from repro.sim.engine import Event
from repro.sim.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

SERVER_PORT = 67
CLIENT_PORT = 68

#: Approximate wire size of a BOOTP/DHCP message.
DHCP_MESSAGE_BYTES = 300


class DHCPOp(enum.Enum):
    DISCOVER = "discover"
    OFFER = "offer"
    REQUEST = "request"
    ACK = "ack"
    NAK = "nak"
    RELEASE = "release"
    DECLINE = "decline"


@dataclass(frozen=True)
class DHCPMessage:
    """One DHCP message (carried as the content of an ``AppData``)."""

    op: DHCPOp
    xid: int
    client_id: str
    your_ip: Optional[IPAddress] = None
    requested_ip: Optional[IPAddress] = None
    server_id: Optional[IPAddress] = None
    lease_time: int = 0
    subnet: Optional[Subnet] = None
    gateway: Optional[IPAddress] = None

    def wrap(self) -> AppData:
        """Box the message as a sized UDP payload."""
        return AppData(content=self, size_bytes=DHCP_MESSAGE_BYTES)


@dataclass
class Lease:
    """A server-side address binding."""

    address: IPAddress
    client_id: str
    expires_at: int


class DHCPServer:
    """Serves one subnet from a contiguous pool of host addresses.

    The paper's home and foreign networks each run their own server; the
    testbed instantiates one on net 36.8 (the wired foreign network).
    """

    def __init__(self, host: "Host", interface: "NetworkInterface",
                 pool_subnet: Subnet, first_host: int, last_host: int,
                 gateway: Optional[IPAddress] = None) -> None:
        if last_host < first_host:
            raise ValueError("empty DHCP pool")
        self.host = host
        self.sim = host.sim
        self.config = host.config
        self.interface = interface
        self.subnet = pool_subnet
        self.gateway = gateway
        #: FIFO free list: released addresses re-enter at the back, which is
        #: the reuse-avoidance behaviour Section 5.1 asks of a well-written
        #: server.
        self._free: Deque[IPAddress] = deque(
            pool_subnet.host(index) for index in range(first_host, last_host + 1)
        )
        self._leases: Dict[IPAddress, Lease] = {}
        self._offers: Dict[int, IPAddress] = {}
        self._socket = host.udp.open(SERVER_PORT).on_datagram(self._on_datagram)
        self.requests_served = 0
        #: Fault-injection hook: while False the server ignores all client
        #: traffic (an outage), without forgetting its leases.
        self.online = True
        self.dropped_while_offline = 0

    # ------------------------------------------------------------- inspection

    def lease_for(self, client_id: str) -> Optional[Lease]:
        """The active lease held by *client_id*, if any."""
        for lease in self._leases.values():
            if lease.client_id == client_id:
                return lease
        return None

    def active_leases(self) -> List[Lease]:
        """Every lease still within its lifetime."""
        now = self.sim.now
        return [lease for lease in self._leases.values() if lease.expires_at > now]

    def free_addresses(self) -> List[IPAddress]:
        """The free pool, in hand-out order (FIFO)."""
        return list(self._free)

    # ----------------------------------------------------------------- serving

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        message = data.content
        if not isinstance(message, DHCPMessage):
            return
        if not self.online:
            self.dropped_while_offline += 1
            self.sim.trace.emit("dhcp", "server_offline_drop",
                                server=self.host.name, op=message.op.value)
            return
        self._expire_stale()
        delay = self.config.dhcp_server_delay
        if message.op == DHCPOp.DISCOVER:
            self.sim.call_later(delay, lambda: self._offer(message),
                                label="dhcp-offer")
        elif message.op == DHCPOp.REQUEST:
            self.sim.call_later(delay, lambda: self._acknowledge(message, src),
                                label="dhcp-ack")
        elif message.op == DHCPOp.RELEASE:
            self._release(message)
        elif message.op == DHCPOp.DECLINE:
            self._decline(message)

    def _expire_stale(self) -> None:
        now = self.sim.now
        expired = [addr for addr, lease in self._leases.items()
                   if lease.expires_at <= now]
        for addr in expired:
            del self._leases[addr]
            self._free.append(addr)

    def _offer(self, message: DHCPMessage) -> None:
        address = self._choose_address(message)
        if address is None:
            self._reply(DHCPMessage(op=DHCPOp.NAK, xid=message.xid,
                                    client_id=message.client_id), UNSPECIFIED)
            return
        self._offers[message.xid] = address
        offer = DHCPMessage(op=DHCPOp.OFFER, xid=message.xid,
                            client_id=message.client_id, your_ip=address,
                            server_id=self.interface.address,
                            lease_time=self.config.dhcp_lease_time,
                            subnet=self.subnet, gateway=self.gateway)
        self._reply(offer, UNSPECIFIED)

    def _choose_address(self, message: DHCPMessage) -> Optional[IPAddress]:
        # An existing lease for this client is always renewed in place.
        existing = self.lease_for(message.client_id)
        if existing is not None:
            return existing.address
        requested = message.requested_ip
        if requested is not None and requested in self._free:
            self._free.remove(requested)
            self._free.appendleft(requested)  # consumed next, below
        if not self._free:
            return None
        return self._free[0]

    def _acknowledge(self, message: DHCPMessage, src: IPAddress) -> None:
        address = self._offers.pop(message.xid, None)
        if address is None:
            # REQUEST without a preceding OFFER: renewal of an existing
            # lease, or a client rebinding after reboot.
            existing = self.lease_for(message.client_id)
            if existing is None or (message.requested_ip is not None
                                    and message.requested_ip != existing.address):
                self._reply(DHCPMessage(op=DHCPOp.NAK, xid=message.xid,
                                        client_id=message.client_id), src)
                return
            address = existing.address
        if address in self._free:
            self._free.remove(address)
        lease = Lease(address=address, client_id=message.client_id,
                      expires_at=self.sim.now + self.config.dhcp_lease_time)
        self._leases[address] = lease
        self.requests_served += 1
        self.sim.trace.emit("dhcp", "lease_granted", server=self.host.name,
                            client=message.client_id, address=str(address))
        ack = DHCPMessage(op=DHCPOp.ACK, xid=message.xid,
                          client_id=message.client_id, your_ip=address,
                          server_id=self.interface.address,
                          lease_time=self.config.dhcp_lease_time,
                          subnet=self.subnet, gateway=self.gateway)
        self._reply(ack, src)

    def _release(self, message: DHCPMessage) -> None:
        address = message.requested_ip
        if address is None:
            return
        lease = self._leases.get(address)
        if lease is None or lease.client_id != message.client_id:
            return
        del self._leases[address]
        # Back of the FIFO: reused only after every other free address.
        self._free.append(address)
        self.sim.trace.emit("dhcp", "lease_released", server=self.host.name,
                            client=message.client_id, address=str(address))

    def _decline(self, message: DHCPMessage) -> None:
        """A client found the address in use: quarantine it.

        The address is parked under a sentinel lease for one lease period
        so it is not handed out again immediately (RFC 2131's required
        behaviour, and the right complement to the reuse-avoidance FIFO).
        """
        address = message.requested_ip
        if address is None or address not in self.subnet:
            return
        if address in self._free:
            self._free.remove(address)
        self._leases[address] = Lease(
            address=address, client_id="<declined>",
            expires_at=self.sim.now + self.config.dhcp_lease_time)
        self.sim.trace.emit("dhcp", "quarantined", server=self.host.name,
                            address=str(address))

    def _reply(self, message: DHCPMessage, unicast_to: IPAddress) -> None:
        # Clients without a configured address can only hear broadcasts.
        destination = unicast_to
        if destination.is_unspecified:
            destination = LIMITED_BROADCAST
        self._socket.sendto(message.wrap(), destination, CLIENT_PORT,
                            via=self.interface)


class DHCPClientState(enum.Enum):
    IDLE = "idle"
    SELECTING = "selecting"
    REQUESTING = "requesting"
    PROBING = "probing"          # duplicate-address detection
    BOUND = "bound"
    RENEWING = "renewing"


@dataclass(frozen=True)
class BoundLease:
    """What a successful acquisition hands to the caller."""

    address: IPAddress
    subnet: Subnet
    gateway: Optional[IPAddress]
    server_id: Optional[IPAddress]
    lease_time: int


class DHCPClient:
    """Acquires a care-of address for one interface.

    Usage: ``client.acquire(on_bound=...)``.  The callback receives a
    :class:`BoundLease`; the caller (the mobile host's handoff engine)
    configures the interface and registers with the home agent.
    """

    _xids = itertools.count(0x1000)

    #: How long the duplicate-address probe listens for an owner's reply.
    PROBE_WAIT = ms(600)

    def __init__(self, host: "Host", interface: "NetworkInterface",
                 client_id: Optional[str] = None,
                 detect_duplicates: bool = True) -> None:
        self.host = host
        self.sim = host.sim
        self.interface = interface
        self.client_id = client_id if client_id is not None else host.name
        #: Probe an offered address with ARP before adopting it: the
        #: counterpart of the server-side reuse avoidance Section 5.1
        #: calls for (a well-behaved client double-checks too).
        self.detect_duplicates = detect_duplicates
        self.declines_sent = 0
        self.state = DHCPClientState.IDLE
        self.lease: Optional[BoundLease] = None
        self._xid = 0
        self._socket = host.udp.open(CLIENT_PORT).on_datagram(self._on_datagram)
        self._on_bound: Optional[Callable[[BoundLease], None]] = None
        self._on_failed: Optional[Callable[[], None]] = None
        self._timeout_event: Optional[Event] = None
        self._renew_event: Optional[Event] = None
        #: The transaction timeout configured at acquire() time; renewals
        #: honour it too instead of a hard-coded constant.
        self._timeout: int = ms(4000)
        self._lease_expires_at: Optional[int] = None
        self.renew_failures = 0
        #: Fires when the lease lapses without a successful renewal (the
        #: handoff/recovery layer re-acquires or switches networks).
        self.on_lease_lost: Optional[Callable[[], None]] = None

    def acquire(self, on_bound: Callable[[BoundLease], None],
                on_failed: Optional[Callable[[], None]] = None,
                timeout: int = ms(4000)) -> None:
        """Run DISCOVER/OFFER/REQUEST/ACK; exactly one callback fires."""
        if self.state not in (DHCPClientState.IDLE, DHCPClientState.BOUND):
            raise RuntimeError(f"DHCP client busy ({self.state.value})")
        self._xid = next(self._xids)
        self._on_bound = on_bound
        self._on_failed = on_failed
        self._timeout = timeout
        self.state = DHCPClientState.SELECTING
        self._timeout_event = self.sim.call_later(timeout, self._fail,
                                                  label="dhcp-timeout")
        discover = DHCPMessage(op=DHCPOp.DISCOVER, xid=self._xid,
                               client_id=self.client_id,
                               requested_ip=self.lease.address if self.lease else None)
        self._broadcast(discover)

    def release(self) -> None:
        """Give the address back (the paper's lease hygiene on departure)."""
        if self.lease is None:
            return
        message = DHCPMessage(op=DHCPOp.RELEASE, xid=next(self._xids),
                              client_id=self.client_id,
                              requested_ip=self.lease.address,
                              server_id=self.lease.server_id)
        if self.lease.server_id is not None:
            self._socket.sendto(message.wrap(), self.lease.server_id, SERVER_PORT,
                                via=self.interface)
        else:
            self._broadcast(message)
        self._cancel_renewal()
        self._cancel_timeout()
        self.lease = None
        self._lease_expires_at = None
        self.state = DHCPClientState.IDLE

    # ----------------------------------------------------------------- guts

    def _broadcast(self, message: DHCPMessage) -> None:
        self._socket.sendto(message.wrap(), LIMITED_BROADCAST, SERVER_PORT,
                            via=self.interface)

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        message = data.content
        if not isinstance(message, DHCPMessage) or message.xid != self._xid:
            return
        if message.client_id != self.client_id:
            return
        if message.op == DHCPOp.OFFER and self.state == DHCPClientState.SELECTING:
            self.state = DHCPClientState.REQUESTING
            request = DHCPMessage(op=DHCPOp.REQUEST, xid=self._xid,
                                  client_id=self.client_id,
                                  requested_ip=message.your_ip,
                                  server_id=message.server_id)
            self._broadcast(request)
        elif message.op == DHCPOp.ACK and self.state in (
                DHCPClientState.REQUESTING, DHCPClientState.RENEWING):
            self._bound(message)
        elif message.op == DHCPOp.NAK:
            if self.state == DHCPClientState.RENEWING:
                # The server explicitly refused the renewal: the lease is
                # dead now, not merely unrefreshed.
                self._cancel_timeout()
                self._lease_lost()
            else:
                self._fail()

    def _bound(self, message: DHCPMessage) -> None:
        assert message.your_ip is not None and message.subnet is not None
        arp = getattr(self.interface, "arp", None)
        if self.detect_duplicates and arp is not None \
                and self.state == DHCPClientState.REQUESTING:
            # Duplicate-address detection before adopting the lease.
            self.state = DHCPClientState.PROBING
            arp.flush(message.your_ip)
            arp.send_probe(message.your_ip)
            self.sim.call_later(self.PROBE_WAIT,
                                lambda: self._probe_done(message),
                                label="dhcp-dad")
            return
        self._finalize_bind(message)

    def _probe_done(self, message: DHCPMessage) -> None:
        arp = self.interface.arp  # type: ignore[attr-defined]
        if arp.lookup(message.your_ip) is not None:
            # Someone answered: the address is in use.  Decline and retry.
            self.declines_sent += 1
            self.sim.trace.emit("dhcp", "declined", client=self.client_id,
                                address=str(message.your_ip))
            decline = DHCPMessage(op=DHCPOp.DECLINE, xid=self._xid,
                                  client_id=self.client_id,
                                  requested_ip=message.your_ip,
                                  server_id=message.server_id)
            self._broadcast(decline)
            self.state = DHCPClientState.IDLE
            on_bound, self._on_bound = self._on_bound, None
            on_failed, self._on_failed = self._on_failed, None
            self._cancel_timeout()
            if on_bound is not None:
                self.acquire(on_bound=on_bound, on_failed=on_failed)
            return
        self._finalize_bind(message)

    def _finalize_bind(self, message: DHCPMessage) -> None:
        assert message.your_ip is not None and message.subnet is not None
        self._cancel_timeout()
        self.state = DHCPClientState.BOUND
        self.lease = BoundLease(address=message.your_ip, subnet=message.subnet,
                                gateway=message.gateway,
                                server_id=message.server_id,
                                lease_time=message.lease_time)
        self._lease_expires_at = (self.sim.now + message.lease_time
                                  if message.lease_time > 0 else None)
        self.sim.trace.emit("dhcp", "bound", client=self.client_id,
                            address=str(message.your_ip))
        self._schedule_renewal(message.lease_time)
        if self._on_bound is not None:
            callback, self._on_bound = self._on_bound, None
            callback(self.lease)

    def _schedule_renewal(self, lease_time: int) -> None:
        self._cancel_renewal()
        if lease_time <= 0:
            return
        self._renew_event = self.sim.call_later(lease_time // 2, self._renew,
                                                label="dhcp-renew")

    def _renew(self) -> None:
        """Lease refresh — the paper's canonical *local role* traffic."""
        if self.lease is None or self.lease.server_id is None:
            return
        self.state = DHCPClientState.RENEWING
        self._xid = next(self._xids)
        request = DHCPMessage(op=DHCPOp.REQUEST, xid=self._xid,
                              client_id=self.client_id,
                              requested_ip=self.lease.address,
                              server_id=self.lease.server_id)
        # Renewal is unicast from the care-of address: deliberately outside
        # mobile IP (the local role of Section 5.2).
        self._socket.sendto(request.wrap(), self.lease.server_id, SERVER_PORT,
                            via=self.interface)
        self._timeout_event = self.sim.call_later(self._timeout,
                                                  self._renew_failed,
                                                  label="dhcp-renew-timeout")

    def _renew_failed(self) -> None:
        """A renewal went unanswered: retry while the lease lasts."""
        self._cancel_timeout()
        self.renew_failures += 1
        now = self.sim.now
        expires_at = self._lease_expires_at
        if self.lease is not None and expires_at is not None and now < expires_at:
            # Still within the lease: fall back to BOUND and try again at
            # half the remaining lifetime (the classic T1/T2 halving).
            self.state = DHCPClientState.BOUND
            retry_in = max(1, (expires_at - now) // 2)
            self.sim.trace.emit("dhcp", "renew_retry", client=self.client_id,
                                retry_ms=retry_in / 1_000_000)
            self._cancel_renewal()
            self._renew_event = self.sim.call_later(retry_in, self._renew,
                                                    label="dhcp-renew")
            return
        self._lease_lost()

    def _lease_lost(self) -> None:
        """The lease lapsed (or was NAKed) without a successful renewal."""
        address = self.lease.address if self.lease is not None else None
        self.sim.trace.emit("dhcp", "lease_lost", client=self.client_id,
                            address=str(address) if address else None)
        self._cancel_renewal()
        self.lease = None
        self._lease_expires_at = None
        self.state = DHCPClientState.IDLE
        if self.on_lease_lost is not None:
            self.on_lease_lost()

    def _fail(self) -> None:
        self._cancel_timeout()
        self.state = DHCPClientState.IDLE
        if self._on_failed is not None:
            callback, self._on_failed = self._on_failed, None
            callback()

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _cancel_renewal(self) -> None:
        if self._renew_event is not None:
            self._renew_event.cancel()
            self._renew_event = None
