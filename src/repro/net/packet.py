"""Packet model: IP datagrams and the payloads MosquitoNet moves around.

An IP-in-IP tunnel packet is simply an :class:`IPPacket` whose protocol is
:data:`PROTO_IPIP` and whose payload is the full inner :class:`IPPacket` —
exactly the RFC 2003 encapsulation the paper's VIF performs, including the
20-byte overhead the paper quotes ("encapsulation adds 20 bytes or more to
the packet length").

Sizes matter because link serialization delays derive from them; every
payload type therefore reports ``size_bytes``.

Packets used to be frozen dataclasses; they are now hand-rolled
``__slots__`` value classes because construction is the datapath's hottest
allocation (every hop of every packet builds at least one).  The slotted
layout skips the per-instance ``__dict__`` and the frozen-dataclass
``object.__setattr__`` round-trip, roughly halving construction cost
(``python -m repro.bench`` tracks the ratio against the old dataclasses).
Treat instances as immutable: nothing in the repository mutates a packet
after construction, and sharing below relies on that (``decremented()``
copies, tunnels nest the inner packet by reference).

Two further fast-path refinements (both observationally neutral):

* ``size_bytes`` is computed once at construction and stored in a slot —
  the "cached header encode".  Packets are immutable, so the walk down
  the payload chain never needs repeating; link serialization and TCP
  pacing read a plain attribute.
* Each class is backed by a :mod:`repro.sim.arena` free list.  The
  ``acquire(...)`` classmethods are drop-in pooled constructors used by
  the hot datapath sites (UDP/TCP build, forwarding, tunneling);
  :func:`repro.sim.arena.release` parks provably-dead instances at safe
  points (post-delivery, post-decapsulation).  The reference-count guard
  in ``release`` means a packet that is still traced, queued for
  retransmit, or held by a test simply never recycles.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Protocol, runtime_checkable

from repro.net.addressing import IPAddress
from repro.sim.arena import (  # noqa: F401  (re-exported for profile/tests)
    arena_enabled,
    arena_stats,
    poolable,
    release,
    set_arena_enabled,
)

#: IANA protocol numbers (the subset we implement).
PROTO_ICMP = 1
PROTO_IPIP = 4
PROTO_TCP = 6
PROTO_UDP = 17

PROTOCOL_NAMES = {
    PROTO_ICMP: "ICMP",
    PROTO_IPIP: "IPIP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
}

#: Size of an IPv4 header without options, bytes.
IP_HEADER_BYTES = 20
#: Size of a UDP header, bytes.
UDP_HEADER_BYTES = 8
#: Size of a TCP header without options, bytes.
TCP_HEADER_BYTES = 20
#: Size of an ICMP echo header, bytes.
ICMP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)
_next_packet_id = _packet_ids.__next__


@runtime_checkable
class Sized(Protocol):
    """Anything that can ride inside a packet must know its wire size."""

    @property
    def size_bytes(self) -> int: ...


@poolable(clear=("content",))
class AppData:
    """Opaque application payload: a label plus an explicit wire size.

    Experiments tag datagrams with sequence numbers and timestamps by
    storing them in ``content``; only ``size_bytes`` affects the simulation.
    """

    __slots__ = ("content", "size_bytes")

    def __init__(self, content: Any = None, size_bytes: int = 0) -> None:
        if size_bytes < 0:
            raise ValueError("payload size cannot be negative")
        self.content = content
        self.size_bytes = size_bytes

    @classmethod
    def acquire(cls, content: Any = None, size_bytes: int = 0) -> "AppData":
        """Pooled constructor: identical semantics to ``AppData(...)``."""
        pool = cls._pool
        if pool:
            if size_bytes < 0:
                raise ValueError("payload size cannot be negative")
            self = pool.pop()
            cls._pool_reuses += 1
            self.content = content
            self.size_bytes = size_bytes
            return self
        return cls(content, size_bytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AppData):
            return NotImplemented
        return (self.content == other.content
                and self.size_bytes == other.size_bytes)

    def __hash__(self) -> int:
        return hash((AppData, self.content, self.size_bytes))

    def __repr__(self) -> str:
        return f"AppData(content={self.content!r}, size_bytes={self.size_bytes})"


@poolable(clear=("payload",))
class UDPDatagram:
    """A UDP header plus application payload.

    ``size_bytes`` (UDP header plus payload) is precomputed at
    construction; the payload is immutable so it can never go stale.
    """

    __slots__ = ("src_port", "dst_port", "payload", "size_bytes")

    def __init__(self, src_port: int, dst_port: int,
                 payload: Optional[AppData] = None) -> None:
        if not 0 <= src_port <= 0xFFFF:
            raise ValueError(f"bad UDP port {src_port}")
        if not 0 <= dst_port <= 0xFFFF:
            raise ValueError(f"bad UDP port {dst_port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload if payload is not None else AppData()
        self.size_bytes = UDP_HEADER_BYTES + self.payload.size_bytes

    @classmethod
    def acquire(cls, src_port: int, dst_port: int,
                payload: Optional[AppData] = None) -> "UDPDatagram":
        """Pooled constructor: identical semantics to ``UDPDatagram(...)``."""
        pool = cls._pool
        if pool:
            if not 0 <= src_port <= 0xFFFF:
                raise ValueError(f"bad UDP port {src_port}")
            if not 0 <= dst_port <= 0xFFFF:
                raise ValueError(f"bad UDP port {dst_port}")
            self = pool.pop()
            cls._pool_reuses += 1
            self.src_port = src_port
            self.dst_port = dst_port
            self.payload = payload if payload is not None else AppData()
            self.size_bytes = UDP_HEADER_BYTES + self.payload.size_bytes
            return self
        return cls(src_port, dst_port, payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UDPDatagram):
            return NotImplemented
        return (self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.payload == other.payload)

    def __hash__(self) -> int:
        return hash((UDPDatagram, self.src_port, self.dst_port, self.payload))

    def __repr__(self) -> str:
        return (f"UDPDatagram(src_port={self.src_port}, "
                f"dst_port={self.dst_port}, payload={self.payload!r})")


@poolable(clear=("src", "dst", "payload"))
class IPPacket:
    """An IPv4 datagram.

    ``payload`` is one of :class:`UDPDatagram`, :class:`TCPSegment` (see
    :mod:`repro.net.tcp`), :class:`ICMPMessage` (see :mod:`repro.net.icmp`)
    or, for tunneled packets, another :class:`IPPacket`.
    """

    __slots__ = ("src", "dst", "protocol", "payload", "ttl", "ident",
                 "size_bytes")

    def __init__(self, src: IPAddress, dst: IPAddress, protocol: int,
                 payload: Sized, ttl: int = 64,
                 ident: Optional[int] = None) -> None:
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.ttl = ttl
        self.ident = ident if ident is not None else _next_packet_id()
        self.size_bytes = IP_HEADER_BYTES + payload.size_bytes

    @classmethod
    def acquire(cls, src: IPAddress, dst: IPAddress, protocol: int,
                payload: Sized, ttl: int = 64,
                ident: Optional[int] = None) -> "IPPacket":
        """Pooled constructor: identical semantics to ``IPPacket(...)``."""
        pool = cls._pool
        if pool:
            self = pool.pop()
            cls._pool_reuses += 1
            self.src = src
            self.dst = dst
            self.protocol = protocol
            self.payload = payload
            self.ttl = ttl
            self.ident = ident if ident is not None else _next_packet_id()
            self.size_bytes = IP_HEADER_BYTES + payload.size_bytes
            return self
        return cls(src, dst, protocol, payload, ttl, ident)

    @property
    def is_tunneled(self) -> bool:
        """True if this packet is an IP-in-IP encapsulation."""
        return self.protocol == PROTO_IPIP

    @property
    def inner(self) -> "IPPacket":
        """The encapsulated packet (only valid when :attr:`is_tunneled`)."""
        if not self.is_tunneled or not isinstance(self.payload, IPPacket):
            raise ValueError("not an IP-in-IP packet")
        return self.payload

    def decremented(self) -> "IPPacket":
        """Copy with TTL decremented (used when forwarding)."""
        return IPPacket.acquire(self.src, self.dst, self.protocol,
                                self.payload, self.ttl - 1, self.ident)

    def protocol_name(self) -> str:
        """Human-readable protocol number."""
        return PROTOCOL_NAMES.get(self.protocol, str(self.protocol))

    def describe(self) -> str:
        """One-line human-readable summary, used in traces and examples."""
        base = f"{self.src} -> {self.dst} {self.protocol_name()} {self.size_bytes}B"
        if self.is_tunneled and isinstance(self.payload, IPPacket):
            return f"{base} [{self.payload.describe()}]"
        return base

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPPacket):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.protocol == other.protocol
                and self.payload == other.payload
                and self.ttl == other.ttl and self.ident == other.ident)

    def __hash__(self) -> int:
        return hash((IPPacket, self.src, self.dst, self.protocol,
                     self.payload, self.ttl, self.ident))

    def __repr__(self) -> str:
        return (f"IPPacket(src={self.src!r}, dst={self.dst!r}, "
                f"protocol={self.protocol}, payload={self.payload!r}, "
                f"ttl={self.ttl}, ident={self.ident})")


def encapsulate(inner: IPPacket, outer_src: IPAddress, outer_dst: IPAddress,
                ttl: int = 64) -> IPPacket:
    """Wrap *inner* in an IP-in-IP outer header (RFC 2003 style)."""
    return IPPacket.acquire(outer_src, outer_dst, PROTO_IPIP, inner, ttl)


def decapsulate(outer: IPPacket) -> IPPacket:
    """Strip the outer header of an IP-in-IP packet, returning the inner."""
    return outer.inner


def encapsulation_depth(packet: IPPacket) -> int:
    """Number of nested IP-in-IP layers (0 for a plain packet).

    The paper's VIF design guarantees this never exceeds 1: the outer source
    address is pinned to a physical interface so the policy lookup cannot
    route the encapsulated packet back into the VIF.  Property tests assert
    it.
    """
    depth = 0
    current = packet
    while current.is_tunneled and isinstance(current.payload, IPPacket):
        depth += 1
        current = current.payload
    return depth
