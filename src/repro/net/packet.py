"""Packet model: IP datagrams and the payloads MosquitoNet moves around.

Packets are plain dataclasses.  An IP-in-IP tunnel packet is simply an
:class:`IPPacket` whose protocol is :data:`PROTO_IPIP` and whose payload is
the full inner :class:`IPPacket` — exactly the RFC 2003 encapsulation the
paper's VIF performs, including the 20-byte overhead the paper quotes
("encapsulation adds 20 bytes or more to the packet length").

Sizes matter because link serialization delays derive from them; every
payload type therefore reports ``size_bytes``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Protocol, runtime_checkable

from repro.net.addressing import IPAddress

#: IANA protocol numbers (the subset we implement).
PROTO_ICMP = 1
PROTO_IPIP = 4
PROTO_TCP = 6
PROTO_UDP = 17

PROTOCOL_NAMES = {
    PROTO_ICMP: "ICMP",
    PROTO_IPIP: "IPIP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
}

#: Size of an IPv4 header without options, bytes.
IP_HEADER_BYTES = 20
#: Size of a UDP header, bytes.
UDP_HEADER_BYTES = 8
#: Size of a TCP header without options, bytes.
TCP_HEADER_BYTES = 20
#: Size of an ICMP echo header, bytes.
ICMP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


@runtime_checkable
class Sized(Protocol):
    """Anything that can ride inside a packet must know its wire size."""

    @property
    def size_bytes(self) -> int: ...


@dataclass(frozen=True)
class AppData:
    """Opaque application payload: a label plus an explicit wire size.

    Experiments tag datagrams with sequence numbers and timestamps by
    storing them in ``content``; only ``size_bytes`` affects the simulation.
    """

    content: Any = None
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("payload size cannot be negative")


@dataclass(frozen=True)
class UDPDatagram:
    """A UDP header plus application payload."""

    src_port: int
    dst_port: int
    payload: AppData = field(default_factory=AppData)

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"bad UDP port {port}")

    @property
    def size_bytes(self) -> int:
        """Wire size: UDP header plus payload."""
        return UDP_HEADER_BYTES + self.payload.size_bytes


@dataclass(frozen=True)
class IPPacket:
    """An IPv4 datagram.

    ``payload`` is one of :class:`UDPDatagram`, :class:`TCPSegment` (see
    :mod:`repro.net.tcp`), :class:`ICMPMessage` (see :mod:`repro.net.icmp`)
    or, for tunneled packets, another :class:`IPPacket`.
    """

    src: IPAddress
    dst: IPAddress
    protocol: int
    payload: Sized
    ttl: int = 64
    ident: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bytes(self) -> int:
        """Wire size: IP header plus payload."""
        return IP_HEADER_BYTES + self.payload.size_bytes

    @property
    def is_tunneled(self) -> bool:
        """True if this packet is an IP-in-IP encapsulation."""
        return self.protocol == PROTO_IPIP

    @property
    def inner(self) -> "IPPacket":
        """The encapsulated packet (only valid when :attr:`is_tunneled`)."""
        if not self.is_tunneled or not isinstance(self.payload, IPPacket):
            raise ValueError("not an IP-in-IP packet")
        return self.payload

    def decremented(self) -> "IPPacket":
        """Copy with TTL decremented (used when forwarding)."""
        return replace(self, ttl=self.ttl - 1)

    def protocol_name(self) -> str:
        """Human-readable protocol number."""
        return PROTOCOL_NAMES.get(self.protocol, str(self.protocol))

    def describe(self) -> str:
        """One-line human-readable summary, used in traces and examples."""
        base = f"{self.src} -> {self.dst} {self.protocol_name()} {self.size_bytes}B"
        if self.is_tunneled and isinstance(self.payload, IPPacket):
            return f"{base} [{self.payload.describe()}]"
        return base


def encapsulate(inner: IPPacket, outer_src: IPAddress, outer_dst: IPAddress,
                ttl: int = 64) -> IPPacket:
    """Wrap *inner* in an IP-in-IP outer header (RFC 2003 style)."""
    return IPPacket(src=outer_src, dst=outer_dst, protocol=PROTO_IPIP,
                    payload=inner, ttl=ttl)


def decapsulate(outer: IPPacket) -> IPPacket:
    """Strip the outer header of an IP-in-IP packet, returning the inner."""
    return outer.inner


def encapsulation_depth(packet: IPPacket) -> int:
    """Number of nested IP-in-IP layers (0 for a plain packet).

    The paper's VIF design guarantees this never exceeds 1: the outer source
    address is pinned to a physical interface so the policy lookup cannot
    route the encapsulated packet back into the VIF.  Property tests assert
    it.
    """
    depth = 0
    current = packet
    while current.is_tunneled and isinstance(current.payload, IPPacket):
        depth += 1
        current = current.payload
    return depth
