"""Pluggable congestion control for :mod:`repro.net.tcp`.

The seed reproduction inlined one Van Jacobson loop — slow start,
additive increase, timeout collapse — because that is what every 1996
TCP shipped.  The 2026 question (ROADMAP item 4) is how mobility events
interact with *modern* recovery behaviour, so the sender's window policy
is now a strategy object the connection consults at well-defined points:

* :class:`TahoeCC` — the seed's algorithm, extracted verbatim.  It is
  the default and remains byte-identical to the inlined original: same
  integer arithmetic, same clamp, no fast retransmit (the seed's Tahoe
  never had it; keeping that quirk is what keeps old runs reproducible).
* :class:`RenoCC` — RFC 5681 fast retransmit / fast recovery with the
  RFC 6582 (NewReno) partial-ACK rule, so one lost segment no longer
  costs a full RTO and window collapse.
* :class:`CubicCC` — RFC 8312.  The cubic window function is computed in
  pure integer arithmetic (fixed-point constants, :func:`icbrt`), so two
  runs with the same seed produce bit-identical cwnd trajectories on any
  platform — floats never touch the window.

Strategies are pure window policies: they never touch sequence numbers,
timers, or the wire.  The connection tells them *what happened* (new
cumulative ACK, duplicate ACK, recovery entry/exit, RTO) and reads back
``cwnd``/``ssthresh``.  Selection is by name through
``Config.tcp_congestion_control`` (or per-connection keyword), via
:func:`make_congestion_control`.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

#: Dup-ACK threshold for fast retransmit (RFC 5681 section 3.2).
DUP_ACK_THRESHOLD = 3

#: CUBIC constants (RFC 8312), as integer fractions over 1024.
#: beta_cubic = 0.7 -> 717/1024; C = 0.4 segments/s^3 -> 4/10.
CUBIC_BETA_NUM = 717
CUBIC_BETA_DEN = 1024


def icbrt(value: int) -> int:
    """Floor integer cube root, exact for arbitrary-precision ints.

    Newton's method on integers; deterministic on every platform (no
    floating point), which is what keeps CUBIC runs byte-reproducible.
    """
    if value < 0:
        raise ValueError("icbrt of a negative value")
    if value == 0:
        return 0
    guess = 1 << ((value.bit_length() + 2) // 3)
    while True:
        better = (2 * guess + value // (guess * guess)) // 3
        if better >= guess:
            return guess
        guess = better


class CongestionControl:
    """Strategy base: owns ``cwnd``/``ssthresh``, reacts to ACK events.

    All quantities are bytes; all times are simulator nanoseconds.  The
    connection calls exactly one hook per event and never mutates the
    window itself.
    """

    #: Registry name; subclasses override.
    name = "base"
    #: Whether the connection should run the dup-ACK counting / fast
    #: retransmit machinery for this strategy.  The seed's Tahoe must
    #: not (it predates it *in this codebase*), so the default is off.
    supports_fast_retransmit = False

    def __init__(self, *, mss: int, max_window: int,
                 initial_cwnd: Optional[int] = None,
                 initial_ssthresh: Optional[int] = None) -> None:
        self.mss = mss
        self.max_window = max_window
        self.cwnd = initial_cwnd if initial_cwnd is not None else 2 * mss
        self.ssthresh = (initial_ssthresh if initial_ssthresh is not None
                         else max_window)

    # ------------------------------------------------------------- the window

    def window(self) -> int:
        """Usable send window in bytes (cwnd clamped by the fixed rwnd)."""
        return min(self.max_window, self.cwnd)

    def effective_window(self, peer_rwnd: Optional[int]) -> int:
        """Send window = min(cwnd, peer's advertised window) (RFC 9293).

        ``peer_rwnd`` is None until the peer has advertised (and always,
        when flow control is off) — then the fixed ``max_window`` clamp
        stands in for it, which is exactly the seed's behaviour.
        """
        if peer_rwnd is None:
            return self.window()
        return min(self.cwnd, peer_rwnd)

    # ----------------------------------------------------------------- events

    def on_ack(self, acked: int, now: int, srtt: Optional[int]) -> None:
        """A new cumulative ACK covering *acked* bytes (not in recovery)."""
        raise NotImplementedError

    def on_timeout(self, flight: int, now: int) -> None:
        """The retransmission timer fired with *flight* bytes outstanding."""
        raise NotImplementedError

    def on_enter_recovery(self, flight: int, now: int) -> None:
        """Third duplicate ACK: fast retransmit is about to happen."""

    def on_dup_ack_in_recovery(self, now: int) -> None:
        """A further duplicate ACK while in fast recovery."""

    def on_partial_ack(self, acked: int, now: int) -> None:
        """A cumulative ACK that advances but does not leave recovery."""

    def on_exit_recovery(self, now: int) -> None:
        """A cumulative ACK covered everything sent before recovery."""

    def on_rwnd_limited(self, now: int) -> None:
        """An ACK arrived while the *receiver's* window is the binding
        constraint (RFC 5681 guidance): by default the strategy holds
        cwnd flat instead of growing a burst the peer cannot absorb.
        Strategies may override (e.g. to freeze internal epoch clocks).
        """

    # ------------------------------------------------------------------ misc

    def describe(self) -> str:
        """One-line state summary (traces and reports)."""
        return (f"{self.name} cwnd={self.cwnd} ssthresh={self.ssthresh}")


class TahoeCC(CongestionControl):
    """The seed's inlined algorithm, extracted unchanged.

    Slow start below ``ssthresh`` (one MSS per ACK), additive increase
    above it, timeout collapses to one segment.  No fast retransmit —
    loss always costs an RTO, exactly as the seed behaved.  Every
    expression below is copied from the pre-refactor connection so that
    default-config runs stay byte-identical.
    """

    name = "tahoe"
    supports_fast_retransmit = False

    def on_ack(self, acked: int, now: int, srtt: Optional[int]) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += self.mss
        else:
            self.cwnd += max(self.mss * self.mss // self.cwnd, 1)
        self.cwnd = min(self.cwnd, self.max_window)

    def on_timeout(self, flight: int, now: int) -> None:
        self.ssthresh = max(flight // 2, self.mss)
        self.cwnd = self.mss


class RenoCC(CongestionControl):
    """RFC 5681 Reno with the RFC 6582 NewReno partial-ACK rule.

    Fast retransmit on the third duplicate ACK halves the window instead
    of collapsing it; fast recovery inflates ``cwnd`` by one MSS per
    further dup-ACK (each one means a segment left the network) and
    deflates on partial ACKs so a burst of losses is repaired at one
    retransmission per RTT without leaving recovery.
    """

    name = "reno"
    supports_fast_retransmit = True

    def on_ack(self, acked: int, now: int, srtt: Optional[int]) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += self.mss
        else:
            self.cwnd += max(self.mss * self.mss // self.cwnd, 1)
        self.cwnd = min(self.cwnd, self.max_window)

    def on_timeout(self, flight: int, now: int) -> None:
        # RFC 5681 equation (4): ssthresh = max(FlightSize / 2, 2*SMSS).
        self.ssthresh = max(flight // 2, 2 * self.mss)
        self.cwnd = self.mss

    def on_enter_recovery(self, flight: int, now: int) -> None:
        self.ssthresh = max(flight // 2, 2 * self.mss)
        # cwnd = ssthresh + 3*SMSS: the three dup-ACKs that triggered
        # entry each signalled a departed segment.
        self.cwnd = self.ssthresh + 3 * self.mss

    def on_dup_ack_in_recovery(self, now: int) -> None:
        self.cwnd += self.mss

    def on_partial_ack(self, acked: int, now: int) -> None:
        # RFC 6582: deflate by the amount acked, re-add one MSS.
        self.cwnd = max(self.cwnd - acked + self.mss, self.mss)

    def on_exit_recovery(self, now: int) -> None:
        self.cwnd = self.ssthresh


class CubicCC(CongestionControl):
    """RFC 8312 CUBIC, in deterministic fixed-point integer arithmetic.

    The window grows along ``W(t) = C*(t - K)^3 + W_max`` measured from
    the last congestion event, which makes growth a function of *time*
    rather than RTT — the property that matters for the long-RTT radio
    link.  Constants are the RFC's (``beta = 0.7``, ``C = 0.4``) encoded
    as integer fractions; ``K`` comes from :func:`icbrt`.  A Reno-slope
    estimate (RFC 8312 section 4.2) provides the TCP-friendly floor in
    the small-window region.  Loss reaction (fast retransmit + recovery)
    reuses Reno's machinery with the 0.7 multiplicative decrease.
    """

    name = "cubic"
    supports_fast_retransmit = True

    def __init__(self, *, mss: int, max_window: int,
                 initial_cwnd: Optional[int] = None,
                 initial_ssthresh: Optional[int] = None) -> None:
        super().__init__(mss=mss, max_window=max_window,
                         initial_cwnd=initial_cwnd,
                         initial_ssthresh=initial_ssthresh)
        self.w_max = self.cwnd          # window at the last congestion event
        self._epoch_start: Optional[int] = None
        self._k_ms = 0                  # K in milliseconds

    # -------------------------------------------------------------- the cubic

    def _begin_epoch(self, now: int) -> None:
        self._epoch_start = now
        if self.cwnd < self.w_max:
            # K = cbrt(W_max * (1 - beta) / C), with windows in segments
            # and K in ms:  K_ms^3 = (W_max/mss) * (307/1024) / 0.4 * 1e9.
            w_max_seg_scaled = self.w_max * (CUBIC_BETA_DEN - CUBIC_BETA_NUM)
            self._k_ms = icbrt(w_max_seg_scaled * 10 * 10**9
                               // (self.mss * CUBIC_BETA_DEN * 4))
        else:
            # Already past W_max: start on the convex side immediately.
            self.w_max = self.cwnd
            self._k_ms = 0

    def _target(self, now: int) -> int:
        """W_cubic(t + RTT) in bytes, floor-divided fixed point."""
        assert self._epoch_start is not None
        t_ms = (now - self._epoch_start) // 1_000_000
        # C * (t - K)^3 in bytes: 0.4 * mss * ((t_ms - K_ms)/1000)^3.
        offset = t_ms - self._k_ms
        return self.w_max + 4 * self.mss * offset ** 3 // (10 * 10**9)

    def _reno_floor(self, now: int, srtt: Optional[int]) -> int:
        """RFC 8312 W_est: the window standard Reno would have by now."""
        if self._epoch_start is None or not srtt:
            return 0
        elapsed = now - self._epoch_start
        # W_est = W_max*beta + 3*(1-beta)/(1+beta) * t/RTT segments:
        # 3*(1024-717)/(1024+717) = 921/1741.
        return (self.w_max * CUBIC_BETA_NUM // CUBIC_BETA_DEN
                + 921 * self.mss * elapsed // (1741 * srtt))

    # ----------------------------------------------------------------- events

    def on_ack(self, acked: int, now: int, srtt: Optional[int]) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + self.mss, self.max_window)
            return
        if self._epoch_start is None:
            self._begin_epoch(now)
        target = self._target(now)
        if target > self.cwnd:
            # Spread (target - cwnd) over one window's worth of ACKs.
            self.cwnd += max((target - self.cwnd) * self.mss // self.cwnd, 1)
        else:
            # Plateau region: creep forward so the probe never stalls.
            self.cwnd += max(self.mss * self.mss // (100 * self.cwnd), 1)
        floor = self._reno_floor(now, srtt)
        if floor > self.cwnd:
            self.cwnd = floor
        self.cwnd = min(self.cwnd, self.max_window)

    def _on_congestion(self) -> None:
        """Shared multiplicative-decrease bookkeeping."""
        if self.cwnd < self.w_max:
            # Fast convergence: release bandwidth faster when the loss
            # happened below the previous plateau.
            self.w_max = (self.cwnd * (CUBIC_BETA_DEN + CUBIC_BETA_NUM)
                          // (2 * CUBIC_BETA_DEN))
        else:
            self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * CUBIC_BETA_NUM // CUBIC_BETA_DEN,
                            2 * self.mss)
        self._epoch_start = None

    def on_timeout(self, flight: int, now: int) -> None:
        self._on_congestion()
        self.cwnd = self.mss

    def on_enter_recovery(self, flight: int, now: int) -> None:
        self._on_congestion()
        self.cwnd = self.ssthresh + 3 * self.mss

    def on_dup_ack_in_recovery(self, now: int) -> None:
        self.cwnd += self.mss

    def on_partial_ack(self, acked: int, now: int) -> None:
        self.cwnd = max(self.cwnd - acked + self.mss, self.mss)

    def on_exit_recovery(self, now: int) -> None:
        self.cwnd = self.ssthresh


#: Name -> strategy class.  ``Config.tcp_congestion_control`` indexes this.
CONGESTION_CONTROLS: Dict[str, Type[CongestionControl]] = {
    TahoeCC.name: TahoeCC,
    RenoCC.name: RenoCC,
    CubicCC.name: CubicCC,
}


def make_congestion_control(name: str, *, mss: int, max_window: int,
                            initial_cwnd: Optional[int] = None,
                            initial_ssthresh: Optional[int] = None
                            ) -> CongestionControl:
    """Instantiate a registered strategy by name (case-insensitive)."""
    try:
        strategy = CONGESTION_CONTROLS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; "
            f"known: {', '.join(sorted(CONGESTION_CONTROLS))}") from None
    return strategy(mss=mss, max_window=max_window, initial_cwnd=initial_cwnd,
                    initial_ssthresh=initial_ssthresh)
