"""Links: the physical media of the Figure 5 testbed.

Three media appear in the paper:

* **Ethernet segments** (nets 36.135 and 36.8): shared broadcast media.
  Every attached, powered-up interface hears every frame and filters by
  destination MAC.
* **Point-to-point links**: the campus backbone hop between routers (the
  paper's "cloud"), and the 115.2 kbit/s serial line between the Handbook
  and its Metricom radio.
* **Radio channels** (net 36.134): Metricom Starmode datagram service.
  STRIP does not use ARP; the channel keeps the static IP -> radio mapping
  the driver would hold.  Effective throughput is 30-40 kbit/s with high
  per-packet latency, so the radio RTT through the home agent lands in the
  paper's 200-250 ms band.

Every medium charges ``latency + size / bandwidth`` and can drop packets
with an independent loss probability drawn from a dedicated RNG stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.config import LinkTimings
from repro.net.addressing import IPAddress
from repro.net.packet import IPPacket
from repro.sim.engine import Simulator
from repro.sim.randomness import bernoulli
from repro.sim.units import transmission_delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ethernet import EthernetFrame
    from repro.net.interface import EthernetInterface, RadioInterface


class Link:
    """Common bookkeeping for all media.

    Transmissions serialize: a sender (or a shared medium) can only put one
    frame on the wire at a time, so a burst of back-to-back packets queues
    and arrives spaced by its serialization time, in order.  Without this,
    bursts would arrive effectively simultaneously in arbitrary order —
    both unphysical and fatal to TCP's in-order delivery.
    """

    def __init__(self, sim: Simulator, name: str, timings: LinkTimings) -> None:
        self.sim = sim
        self.name = name
        self.timings = timings
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0
        self._rng = sim.rng(f"link:{name}")
        #: Fault-injection hook, consulted before the link's own loss
        #: model; return True to drop the frame.  None (the default) costs
        #: nothing and consumes no randomness.
        self.fault_hook: Optional[Callable[[], bool]] = None
        #: Per-transmitter busy-until times; key None = the shared medium.
        self._busy_until: Dict[object, int] = {}
        self._tx_frames = sim.metrics.counter("link", "tx_frames", link=name)
        self._tx_bytes = sim.metrics.counter("link", "tx_bytes", link=name)
        self._drop_frames = sim.metrics.counter("link", "dropped_frames",
                                                link=name)

    def _count_tx(self, size_bytes: int) -> None:
        """Account one frame entering the medium (kept in sync with the
        legacy ``frames_sent``/``bytes_sent`` attributes)."""
        self.frames_sent += 1
        self.bytes_sent += size_bytes
        self._tx_frames.value += 1
        self._tx_bytes.value += size_bytes

    def _delivery_time(self, size_bytes: int, key: object = None) -> int:
        """Absolute delivery time, honouring the transmitter's queue."""
        start = max(self.sim.now, self._busy_until.get(key, 0))
        finish = start + transmission_delay(size_bytes,
                                            self.timings.bandwidth_bps)
        self._busy_until[key] = finish
        return finish + self.timings.latency

    def queue_depth_ns(self, key: object = None) -> int:
        """How far the transmitter is backed up (0 = idle)."""
        return max(0, self._busy_until.get(key, 0) - self.sim.now)

    def _drops(self) -> bool:
        hook = self.fault_hook
        if hook is None and self.timings.loss_rate <= 0:
            # Branch-free fast path for the common case: no fault plan and a
            # lossless medium.  ``bernoulli`` consumes no randomness for
            # p <= 0, so skipping it is RNG-stream neutral.
            return False
        if hook is not None and hook():
            self.frames_dropped += 1
            self._drop_frames.value += 1
            self.sim.trace.emit("link", "fault_drop", link=self.name)
            return True
        if bernoulli(self._rng, self.timings.loss_rate):
            self.frames_dropped += 1
            self._drop_frames.value += 1
            self.sim.trace.emit("link", "drop", link=self.name)
            return True
        return False


class EthernetSegment(Link):
    """A shared Ethernet: frames reach every other attached interface."""

    def __init__(self, sim: Simulator, name: str, timings: LinkTimings) -> None:
        super().__init__(sim, name, timings)
        self._ports: List["EthernetInterface"] = []

    def attach(self, interface: "EthernetInterface") -> None:
        """Connect an interface to the shared medium."""
        if interface in self._ports:
            raise ValueError(f"{interface.name} already attached to {self.name}")
        self._ports.append(interface)

    def detach(self, interface: "EthernetInterface") -> None:
        """Disconnect an interface (unplug the cable)."""
        self._ports.remove(interface)

    def transmit(self, frame: "EthernetFrame", sender: "EthernetInterface") -> None:
        """Put *frame* on the wire; deliver to every other port after delay.

        The segment is a single shared medium: concurrent senders
        serialize behind one another (we model the ether as one queue
        rather than simulating CSMA/CD collisions).
        """
        self._count_tx(frame.size_bytes)
        if self._drops():
            return
        deliver_at = self._delivery_time(frame.size_bytes)
        for port in self._ports:
            if port is sender:
                continue
            self.sim.post_at(
                deliver_at,
                lambda port=port: port.deliver_frame(frame),
                label=f"eth:{self.name}",
            )


class PointToPointLink(Link):
    """A two-endpoint pipe carrying IP packets (backbone or serial line).

    Endpoints register with :meth:`connect`; anything with a
    ``deliver_from_link(packet)`` method qualifies (point-to-point
    interfaces, or internal radio plumbing for the serial hop).
    """

    def __init__(self, sim: Simulator, name: str, timings: LinkTimings) -> None:
        super().__init__(sim, name, timings)
        self._endpoints: List[object] = []

    def connect(self, endpoint: object) -> None:
        """Register one of the two endpoints."""
        if len(self._endpoints) >= 2:
            raise ValueError(f"{self.name} already has two endpoints")
        self._endpoints.append(endpoint)

    def transmit(self, packet: IPPacket, sender: object) -> None:
        """Carry *packet* to the far endpoint."""
        if sender not in self._endpoints:
            raise ValueError(f"{sender!r} is not an endpoint of {self.name}")
        self._count_tx(packet.size_bytes)
        if self._drops():
            return
        peers = [endpoint for endpoint in self._endpoints if endpoint is not sender]
        if not peers:
            return
        peer = peers[0]
        # Full duplex: each direction has its own transmitter queue.
        deliver_at = self._delivery_time(packet.size_bytes, key=id(sender))
        self.sim.post_at(
            deliver_at,
            lambda: peer.deliver_from_link(packet),  # type: ignore[attr-defined]
            label=f"p2p:{self.name}",
        )


class RadioChannel(Link):
    """Metricom Starmode-style connectionless datagram radio.

    The channel maintains the static IP -> radio mapping the STRIP driver
    keeps (Starmode has no ARP).  Interfaces (re)publish their address with
    :meth:`publish`; unicast packets for an unpublished address vanish into
    the air, as they would in reality.
    """

    def __init__(self, sim: Simulator, name: str, timings: LinkTimings) -> None:
        super().__init__(sim, name, timings)
        self._radios: List["RadioInterface"] = []
        self._by_address: Dict[IPAddress, "RadioInterface"] = {}

    def attach(self, interface: "RadioInterface") -> None:
        """Register a radio on the channel."""
        if interface in self._radios:
            raise ValueError(f"{interface.name} already attached to {self.name}")
        self._radios.append(interface)

    def detach(self, interface: "RadioInterface") -> None:
        """Remove a radio and withdraw its published addresses."""
        self._radios.remove(interface)
        stale = [addr for addr, iface in self._by_address.items() if iface is interface]
        for addr in stale:
            del self._by_address[addr]

    def publish(self, address: IPAddress, interface: "RadioInterface") -> None:
        """Record that *address* is reachable at *interface*'s radio."""
        self._by_address[address] = interface

    def withdraw(self, address: IPAddress) -> None:
        """Remove one address from the static IP->radio map."""
        self._by_address.pop(address, None)

    def transmit(self, packet: IPPacket, next_hop: IPAddress,
                 sender: "RadioInterface") -> None:
        """Radiate *packet* toward the radio owning *next_hop*."""
        self._count_tx(packet.size_bytes)
        if self._drops():
            return
        # One shared air interface: all radios serialize behind each other.
        deliver_at = self._delivery_time(packet.size_bytes)
        if next_hop.is_limited_broadcast:
            for radio in self._radios:
                if radio is sender:
                    continue
                self.sim.post_at(
                    deliver_at,
                    lambda radio=radio: radio.deliver_from_radio(packet),
                    label=f"radio:{self.name}:bcast",
                )
            return
        target = self._by_address.get(next_hop)
        if target is None or target is sender:
            self.sim.trace.emit("link", "radio_unreachable", link=self.name,
                                next_hop=str(next_hop))
            self.frames_dropped += 1
            self._drop_frames.value += 1
            return
        self.sim.post_at(
            deliver_at,
            lambda: target.deliver_from_radio(packet),
            label=f"radio:{self.name}",
        )
