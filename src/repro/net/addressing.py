"""IPv4 and link-layer addressing.

Addresses are small frozen value types usable as dict keys.  The testbed
reuses the paper's actual numbering: Stanford's class-B net 36, subnetted as
36.135 (home), 36.8 (CS department) and 36.134 (wireless).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Union


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


@total_ordering
@dataclass(frozen=True)
class IPAddress:
    """An IPv4 address stored as a 32-bit unsigned integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise AddressError(f"IPv4 address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse dotted-quad notation, e.g. ``"36.135.0.10"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"bad octet {part!r} in {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def is_unspecified(self) -> bool:
        """True for 0.0.0.0, the "let the stack choose" source address."""
        return self.value == 0

    @property
    def is_limited_broadcast(self) -> bool:
        """True for 255.255.255.255."""
        return self.value == 0xFFFFFFFF

    @property
    def is_loopback(self) -> bool:
        """True for 127.0.0.0/8."""
        return (self.value >> 24) == 127

    @property
    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4."""
        return (self.value >> 28) == 0xE

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"

    def __lt__(self, other: "IPAddress") -> bool:
        if not isinstance(other, IPAddress):
            return NotImplemented
        return self.value < other.value


#: The unspecified ("any" / "let the stack choose") source address.
UNSPECIFIED = IPAddress(0)
#: The limited broadcast destination.
LIMITED_BROADCAST = IPAddress(0xFFFFFFFF)


def ip(text: Union[str, IPAddress]) -> IPAddress:
    """Coerce a dotted quad or :class:`IPAddress` to an :class:`IPAddress`."""
    if isinstance(text, IPAddress):
        return text
    return IPAddress.parse(text)


@dataclass(frozen=True)
class Subnet:
    """An IPv4 prefix (network address + prefix length)."""

    network: IPAddress
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise AddressError(f"bad prefix length {self.prefix_len}")
        if self.network.value & ~self._mask():
            raise AddressError(
                f"{self.network}/{self.prefix_len} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        """Parse CIDR notation, e.g. ``"36.135.0.0/24"``."""
        if "/" not in text:
            raise AddressError(f"missing prefix length: {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        return cls(IPAddress.parse(addr_text), int(len_text))

    def _mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    @property
    def netmask(self) -> IPAddress:
        """The prefix as a dotted-quad mask."""
        return IPAddress(self._mask())

    @property
    def broadcast(self) -> IPAddress:
        """The directed broadcast address of this subnet."""
        return IPAddress(self.network.value | (~self._mask() & 0xFFFFFFFF))

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, IPAddress):
            return False
        return (addr.value & self._mask()) == self.network.value

    def host(self, index: int) -> IPAddress:
        """The *index*-th host address within the subnet (1-based)."""
        candidate = IPAddress(self.network.value + index)
        if candidate not in self or candidate == self.broadcast:
            raise AddressError(f"host index {index} outside {self}")
        return candidate

    def hosts(self) -> Iterator[IPAddress]:
        """Iterate over usable host addresses (network/broadcast excluded)."""
        for value in range(self.network.value + 1, self.broadcast.value):
            yield IPAddress(value)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"Subnet({str(self)!r})"


def subnet(text: Union[str, Subnet]) -> Subnet:
    """Coerce CIDR text or :class:`Subnet` to a :class:`Subnet`."""
    if isinstance(text, Subnet):
        return text
    return Subnet.parse(text)


@dataclass(frozen=True)
class MACAddress:
    """A 48-bit link-layer address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFFFFFF:
            raise AddressError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MACAddress":
        """Parse colon-separated hex, e.g. ``"02:00:00:00:00:01"``."""
        parts = text.strip().split(":")
        if len(parts) != 6:
            raise AddressError(f"not a MAC address: {text!r}")
        value = 0
        for part in parts:
            try:
                byte = int(part, 16)
            except ValueError as exc:
                raise AddressError(f"bad byte in {text!r}") from exc
            if byte > 255:
                raise AddressError(f"bad byte in {text!r}")
            value = (value << 8) | byte
        return cls(value)

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self.value == 0xFFFFFFFFFFFF

    def __str__(self) -> str:
        return ":".join(
            f"{(self.value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0)
        )

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"


#: The Ethernet broadcast address.
BROADCAST_MAC = MACAddress(0xFFFFFFFFFFFF)


class MACAllocator:
    """Hands out locally administered, globally unique-in-sim MACs."""

    def __init__(self) -> None:
        self._next = 1

    def allocate(self) -> MACAddress:
        """Next locally administered, simulation-unique MAC."""
        value = (0x02 << 40) | self._next
        self._next += 1
        return MACAddress(value)
