"""ARP: address resolution, proxy ARP and gratuitous ARP.

ARP is load-bearing in MosquitoNet.  The home agent intercepts packets for
an away-from-home mobile host by becoming its **proxy ARP** entry ("adding
an ARP entry in the home agent's own ARP cache") and broadcasts a
**gratuitous ARP** "to void any stale ARP cache entries on hosts in the same
subnet as the mobile host's home" (Section 3.1).  When the mobile host
returns, the proxy entry is withdrawn and the mobile host re-announces
itself with its own gratuitous ARP.

Each Ethernet interface owns one :class:`ARPService`; the service resolves
next-hop IPs to MACs, queues packets while resolution is in flight, and
answers requests both for the interface's own addresses and for any
published proxy entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.net.addressing import BROADCAST_MAC, IPAddress, MACAddress
from repro.net.packet import IPPacket
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.net.interface import EthernetInterface

#: ARP operation codes.
OP_REQUEST = 1
OP_REPLY = 2

#: Wire size of an ARP message for IPv4-over-Ethernet.
ARP_MESSAGE_BYTES = 28


@dataclass(frozen=True)
class ARPMessage:
    """An ARP request or reply."""

    op: int
    sender_ip: IPAddress
    sender_mac: MACAddress
    target_ip: IPAddress
    target_mac: Optional[MACAddress] = None

    @property
    def size_bytes(self) -> int:
        """Wire size (fixed for IPv4-over-Ethernet ARP)."""
        return ARP_MESSAGE_BYTES

    @property
    def is_gratuitous(self) -> bool:
        """A gratuitous ARP announces ``sender_ip`` by targeting itself."""
        return self.sender_ip == self.target_ip


@dataclass
class _CacheEntry:
    mac: MACAddress
    expires_at: int


@dataclass
class _PendingResolution:
    packets: List[Tuple[IPPacket, Callable[[], None]]]
    attempts: int
    retry_event: Optional[Event]


class ARPService:
    """Per-interface ARP machinery (cache, resolution, proxy, gratuitous)."""

    def __init__(self, interface: "EthernetInterface") -> None:
        self._iface = interface
        self._cache: Dict[IPAddress, _CacheEntry] = {}
        #: Addresses we answer requests for on behalf of someone else.
        self._proxy_for: Set[IPAddress] = set()
        self._pending: Dict[IPAddress, _PendingResolution] = {}
        metrics = interface.sim.metrics
        self._requests_counter = metrics.counter("arp", "requests",
                                                 iface=interface.name)
        self._gratuitous_counter = metrics.counter("arp", "gratuitous",
                                                   iface=interface.name)
        self._evictions_counter = metrics.counter("arp", "cache_evictions",
                                                  iface=interface.name)
        self._failures_counter = metrics.counter("arp", "resolution_failures",
                                                 iface=interface.name)

    # ------------------------------------------------------------ inspection

    @property
    def _sim(self):
        return self._iface.sim

    @property
    def _cfg(self):
        return self._iface.config

    def lookup(self, addr: IPAddress) -> Optional[MACAddress]:
        """Return the cached MAC for *addr* if fresh, else None."""
        entry = self._cache.get(addr)
        if entry is None:
            return None
        if entry.expires_at <= self._sim.now:
            del self._cache[addr]
            self._evictions_counter.value += 1
            return None
        return entry.mac

    def proxy_entries(self) -> Set[IPAddress]:
        """Addresses currently proxied (exposed for tests/monitoring)."""
        return set(self._proxy_for)

    # ----------------------------------------------------------- cache edits

    def learn(self, addr: IPAddress, mac: MACAddress, create: bool = True) -> None:
        """Install or refresh a cache entry.

        ``create=False`` is the gratuitous-ARP rule: only update entries
        that already exist, never create new ones.
        """
        if not create and addr not in self._cache:
            return
        self._cache[addr] = _CacheEntry(mac=mac, expires_at=self._sim.now + self._cfg.arp_timeout)
        self._release_pending(addr, mac)

    def flush(self, addr: Optional[IPAddress] = None) -> None:
        """Drop one entry, or the whole cache when *addr* is None."""
        if addr is None:
            self._cache.clear()
        else:
            self._cache.pop(addr, None)

    # ------------------------------------------------------------- proxy ARP

    def add_proxy(self, addr: IPAddress) -> None:
        """Start answering ARP requests for *addr* (home-agent intercept)."""
        self._proxy_for.add(addr)
        self._sim.trace.emit("arp", "proxy_added", interface=self._iface.name,
                             address=str(addr))

    def remove_proxy(self, addr: IPAddress) -> None:
        """Stop answering for *addr* (mobile host returned home)."""
        self._proxy_for.discard(addr)
        self._sim.trace.emit("arp", "proxy_removed", interface=self._iface.name,
                             address=str(addr))

    # ------------------------------------------------------------ resolution

    def resolve_and_send(self, packet: IPPacket, next_hop: IPAddress,
                         on_drop: Optional[Callable[[], None]] = None) -> None:
        """Send *packet* to *next_hop*, resolving its MAC first if needed.

        Packets queue while a resolution is outstanding; if resolution fails
        after the configured attempts, queued packets are dropped (and
        *on_drop* fires so callers can count the loss).
        """
        mac = self.lookup(next_hop)
        if mac is not None:
            self._iface.transmit_ip_frame(packet, mac)
            return
        drop_cb = on_drop if on_drop is not None else _noop
        pending = self._pending.get(next_hop)
        if pending is not None:
            pending.packets.append((packet, drop_cb))
            return
        pending = _PendingResolution(packets=[(packet, drop_cb)], attempts=0,
                                     retry_event=None)
        self._pending[next_hop] = pending
        self._send_request(next_hop, pending)

    def _send_request(self, target: IPAddress, pending: _PendingResolution) -> None:
        pending.attempts += 1
        sender_ip = self._iface.address if self._iface.address is not None else IPAddress(0)
        request = ARPMessage(op=OP_REQUEST, sender_ip=sender_ip,
                             sender_mac=self._iface.mac, target_ip=target)
        self._requests_counter.value += 1
        self._sim.trace.emit("arp", "request", interface=self._iface.name,
                             target=str(target), attempt=pending.attempts)
        self._iface.transmit_arp(request, BROADCAST_MAC)
        pending.retry_event = self._sim.call_later(
            self._cfg.arp_retry_interval,
            lambda: self._retry(target),
            label=f"arp-retry:{target}",
        )

    def _retry(self, target: IPAddress) -> None:
        pending = self._pending.get(target)
        if pending is None:
            return
        if pending.attempts >= self._cfg.arp_max_attempts:
            del self._pending[target]
            self._failures_counter.value += 1
            self._sim.trace.emit("arp", "failed", interface=self._iface.name,
                                 target=str(target), dropped=len(pending.packets))
            for _packet, drop_cb in pending.packets:
                drop_cb()
            return
        self._send_request(target, pending)

    def _release_pending(self, addr: IPAddress, mac: MACAddress) -> None:
        pending = self._pending.pop(addr, None)
        if pending is None:
            return
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        for packet, _drop_cb in pending.packets:
            self._iface.transmit_ip_frame(packet, mac)

    # ------------------------------------------------------------ gratuitous

    def send_gratuitous(self, addr: IPAddress) -> None:
        """Broadcast a gratuitous ARP announcing *addr* at our MAC."""
        message = ARPMessage(op=OP_REQUEST, sender_ip=addr,
                             sender_mac=self._iface.mac, target_ip=addr)
        self._gratuitous_counter.value += 1
        self._sim.trace.emit("arp", "gratuitous", interface=self._iface.name,
                             address=str(addr))
        self._iface.transmit_arp(message, BROADCAST_MAC)

    def send_probe(self, addr: IPAddress) -> None:
        """Broadcast an address probe (RFC 5227 style): a request for
        *addr* with the unspecified sender, used for duplicate-address
        detection before adopting a DHCP lease.  An owner's reply lands in
        our cache, where the prober checks for it."""
        probe = ARPMessage(op=OP_REQUEST, sender_ip=IPAddress(0),
                           sender_mac=self._iface.mac, target_ip=addr)
        self._sim.trace.emit("arp", "probe", interface=self._iface.name,
                             address=str(addr))
        self._iface.transmit_arp(probe, BROADCAST_MAC)

    # --------------------------------------------------------------- receive

    def handle(self, message: ARPMessage) -> None:
        """Process a received ARP message."""
        if message.is_gratuitous:
            # Gratuitous ARP only voids/updates stale entries; it never
            # creates one (Section 3.1's "void any stale ARP cache entries").
            self.learn(message.sender_ip, message.sender_mac, create=False)
            return
        # Opportunistically learn the sender (standard ARP behaviour).
        if not message.sender_ip.is_unspecified:
            self.learn(message.sender_ip, message.sender_mac)
        if message.op != OP_REQUEST:
            return
        if self._answers_for(message.target_ip):
            reply = ARPMessage(op=OP_REPLY, sender_ip=message.target_ip,
                               sender_mac=self._iface.mac,
                               target_ip=message.sender_ip,
                               target_mac=message.sender_mac)
            self._iface.transmit_arp(reply, message.sender_mac)

    def _answers_for(self, addr: IPAddress) -> bool:
        if addr in self._proxy_for:
            return True
        return self._iface.owns_address(addr)


def _noop() -> None:
    return None
