"""DNS: names for mobile hosts (the paper's final release component).

Section 8: "We also hope to release our code for DHCP and an extended
version of DNS on Linux."  DNS matters to MosquitoNet for one architectural
reason: applications connect to *names*, names resolve to the mobile
host's **home address**, and the home address never changes — so mobility
stays invisible one layer higher still.  The "extended" part is dynamic
updates, which let an operator (or the home agent) maintain records
without editing zone files.

Scope: A records only, UDP transport (port 53), QUERY and UPDATE
operations, authoritative server with per-record TTLs, and a stub
resolver with a TTL-respecting cache and retransmission.  No recursion,
no compression, no zone transfers — the testbed has one zone.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.addressing import IPAddress
from repro.net.packet import AppData
from repro.sim.engine import Event
from repro.sim.units import ms, s

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host
    from repro.net.interface import NetworkInterface

DNS_PORT = 53
#: Approximate wire size of a small DNS message.
DNS_MESSAGE_BYTES = 64


class DNSOp(enum.Enum):
    QUERY = "query"
    RESPONSE = "response"
    UPDATE = "update"
    UPDATE_ACK = "update-ack"


class DNSRcode(enum.Enum):
    NOERROR = 0
    NXDOMAIN = 3
    REFUSED = 5


@dataclass(frozen=True)
class DNSMessage:
    """One DNS message (query, response or dynamic update)."""

    op: DNSOp
    ident: int
    name: str
    address: Optional[IPAddress] = None
    ttl: int = 0
    rcode: DNSRcode = DNSRcode.NOERROR

    def wrap(self) -> AppData:
        """Box the message as a sized UDP payload."""
        return AppData(content=self, size_bytes=DNS_MESSAGE_BYTES)


@dataclass
class DNSRecord:
    """One A record."""

    name: str
    address: IPAddress
    ttl: int
    added_at: int


class DNSServer:
    """An authoritative server for one zone, with dynamic updates.

    Dynamic updates are accepted only from provisioned updater addresses
    (the crude-but-honest 1996 security model: address-based ACLs).
    """

    DEFAULT_TTL = s(300)

    def __init__(self, host: "Host", zone: str) -> None:
        self.host = host
        self.sim = host.sim
        self.zone = zone.lower().rstrip(".")
        self._records: Dict[str, DNSRecord] = {}
        self._updaters: set = set()
        self._socket = host.udp.open(DNS_PORT).on_datagram(self._on_datagram)
        self.queries_answered = 0
        self.updates_applied = 0
        self.updates_refused = 0

    # ----------------------------------------------------------------- zone

    def _canonical(self, name: str) -> str:
        return name.lower().rstrip(".")

    def in_zone(self, name: str) -> bool:
        """True if *name* falls under this server's zone."""
        return self._canonical(name).endswith(self.zone)

    def add_record(self, name: str, address: IPAddress,
                   ttl: int = DEFAULT_TTL) -> DNSRecord:
        """Operator-installed record (zone-file style)."""
        record = DNSRecord(name=self._canonical(name), address=address,
                           ttl=ttl, added_at=self.sim.now)
        self._records[record.name] = record
        return record

    def remove_record(self, name: str) -> None:
        """Delete the record for *name*, if present."""
        self._records.pop(self._canonical(name), None)

    def lookup(self, name: str) -> Optional[DNSRecord]:
        """The record for *name*, or None."""
        return self._records.get(self._canonical(name))

    def allow_updates_from(self, address: IPAddress) -> None:
        """Authorize dynamic updates from *address*."""
        self._updaters.add(address)

    # -------------------------------------------------------------- serving

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        message = data.content
        if not isinstance(message, DNSMessage):
            return
        if message.op == DNSOp.QUERY:
            self._answer_query(message, src, src_port)
        elif message.op == DNSOp.UPDATE:
            self._apply_update(message, src, src_port)

    def _answer_query(self, query: DNSMessage, src: IPAddress,
                      src_port: int) -> None:
        record = self.lookup(query.name)
        if record is None:
            response = DNSMessage(op=DNSOp.RESPONSE, ident=query.ident,
                                  name=query.name, rcode=DNSRcode.NXDOMAIN)
        else:
            self.queries_answered += 1
            response = DNSMessage(op=DNSOp.RESPONSE, ident=query.ident,
                                  name=query.name, address=record.address,
                                  ttl=record.ttl)
        self._socket.sendto(response.wrap(), src, src_port)

    def _apply_update(self, update: DNSMessage, src: IPAddress,
                      src_port: int) -> None:
        if src not in self._updaters or not self.in_zone(update.name):
            self.updates_refused += 1
            ack = DNSMessage(op=DNSOp.UPDATE_ACK, ident=update.ident,
                             name=update.name, rcode=DNSRcode.REFUSED)
        else:
            if update.address is None:
                self.remove_record(update.name)
            else:
                self.add_record(update.name, update.address,
                                ttl=update.ttl or self.DEFAULT_TTL)
            self.updates_applied += 1
            self.sim.trace.emit("dns", "updated", name=update.name,
                                address=str(update.address)
                                if update.address else None)
            ack = DNSMessage(op=DNSOp.UPDATE_ACK, ident=update.ident,
                             name=update.name, rcode=DNSRcode.NOERROR)
        self._socket.sendto(ack.wrap(), src, src_port)


@dataclass
class _CachedAnswer:
    address: IPAddress
    expires_at: int


@dataclass
class _PendingQuery:
    on_answer: Callable[[Optional[IPAddress]], None]
    attempts: int
    retry_event: Optional[Event]
    name: str


class DNSResolver:
    """A stub resolver: one upstream server, TTL cache, retransmission."""

    _idents = itertools.count(1)
    RETRY_INTERVAL = ms(1500)
    MAX_ATTEMPTS = 3

    def __init__(self, host: "Host", server: IPAddress) -> None:
        self.host = host
        self.sim = host.sim
        self.server = server
        self._cache: Dict[str, _CachedAnswer] = {}
        self._pending: Dict[int, _PendingQuery] = {}
        self._socket = host.udp.open(0).on_datagram(self._on_datagram)
        self.cache_hits = 0
        self.queries_sent = 0

    def resolve(self, name: str,
                on_answer: Callable[[Optional[IPAddress]], None]) -> None:
        """Resolve *name*; the callback gets the address or ``None``.

        Fresh cached answers are delivered on the next simulation tick
        (still asynchronously, so callers need only one code path).
        """
        key = name.lower().rstrip(".")
        cached = self._cache.get(key)
        if cached is not None and cached.expires_at > self.sim.now:
            self.cache_hits += 1
            self.sim.call_later(0, lambda: on_answer(cached.address),
                                label="dns-cache-hit")
            return
        ident = next(self._idents)
        pending = _PendingQuery(on_answer=on_answer, attempts=0,
                                retry_event=None, name=key)
        self._pending[ident] = pending
        self._transmit(ident)

    def flush_cache(self, name: Optional[str] = None) -> None:
        """Drop one cached name, or everything."""
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name.lower().rstrip("."), None)

    # ------------------------------------------------------------------ guts

    def _transmit(self, ident: int) -> None:
        pending = self._pending.get(ident)
        if pending is None:
            return
        pending.attempts += 1
        self.queries_sent += 1
        query = DNSMessage(op=DNSOp.QUERY, ident=ident, name=pending.name)
        self._socket.sendto(query.wrap(), self.server, DNS_PORT)
        if pending.attempts >= self.MAX_ATTEMPTS:
            pending.retry_event = self.sim.call_later(
                self.RETRY_INTERVAL, lambda: self._give_up(ident),
                label="dns-giveup")
        else:
            pending.retry_event = self.sim.call_later(
                self.RETRY_INTERVAL, lambda: self._transmit(ident),
                label="dns-retry")

    def _give_up(self, ident: int) -> None:
        pending = self._pending.pop(ident, None)
        if pending is not None:
            pending.on_answer(None)

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        message = data.content
        if not isinstance(message, DNSMessage) or message.op != DNSOp.RESPONSE:
            return
        pending = self._pending.pop(message.ident, None)
        if pending is None:
            return
        if pending.retry_event is not None:
            pending.retry_event.cancel()
        if message.rcode != DNSRcode.NOERROR or message.address is None:
            pending.on_answer(None)
            return
        self._cache[pending.name] = _CachedAnswer(
            address=message.address, expires_at=self.sim.now + message.ttl)
        pending.on_answer(message.address)


def send_dynamic_update(host: "Host", server: IPAddress, name: str,
                        address: Optional[IPAddress],
                        on_ack: Optional[Callable[[bool], None]] = None,
                        ttl: int = DNSServer.DEFAULT_TTL) -> None:
    """Fire one dynamic update at *server* (None address = delete).

    A throwaway socket keeps this usable from any host without port
    bookkeeping; the ack callback reports whether the server accepted.
    """
    socket = host.udp.open(0)
    ident = next(DNSResolver._idents)

    def on_datagram(data: AppData, src: IPAddress, src_port: int,
                    dst: IPAddress) -> None:
        message = data.content
        if (isinstance(message, DNSMessage)
                and message.op == DNSOp.UPDATE_ACK
                and message.ident == ident):
            socket.close()
            if on_ack is not None:
                on_ack(message.rcode == DNSRcode.NOERROR)

    socket.on_datagram(on_datagram)
    update = DNSMessage(op=DNSOp.UPDATE, ident=ident, name=name,
                        address=address, ttl=ttl)
    socket.sendto(update.wrap(), server, DNS_PORT)
