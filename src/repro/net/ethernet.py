"""Ethernet framing.

Frames carry either an IPv4 packet or an ARP message across an
:class:`~repro.net.link.EthernetSegment`.  The 18-byte frame overhead
(header + FCS) is charged against the link's serialization rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.net.addressing import MACAddress
from repro.net.arp import ARPMessage
from repro.net.packet import IPPacket

#: EtherType values.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

#: Header (14) + frame check sequence (4).
FRAME_OVERHEAD_BYTES = 18
#: Minimum Ethernet payload; short payloads are padded on the wire.
MIN_PAYLOAD_BYTES = 46


@dataclass(frozen=True)
class EthernetFrame:
    """One frame on an Ethernet segment."""

    src: MACAddress
    dst: MACAddress
    ethertype: int
    payload: Union[IPPacket, ARPMessage]

    @property
    def size_bytes(self) -> int:
        """Wire size including header, FCS and padding."""
        payload_size = max(self.payload.size_bytes, MIN_PAYLOAD_BYTES)
        return FRAME_OVERHEAD_BYTES + payload_size

    def describe(self) -> str:
        """One-line human-readable summary."""
        kind = "IPv4" if self.ethertype == ETHERTYPE_IPV4 else "ARP"
        return f"[{self.src} -> {self.dst} {kind} {self.size_bytes}B]"
