"""Routing tables and the ``ip_rt_route()`` result type.

The paper's single kernel hook is the route-lookup function: "this function
returns, for any given destination address, both the recommended interface
to use to reach that destination and the recommended source address to use"
(Section 3.3).  :class:`RouteResult` is exactly that triple (interface,
source, gateway); :class:`RoutingTable` is an ordinary longest-prefix-match
table that the mobile-IP layer deliberately leaves untouched, adding its
policy in a separate table instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.net.addressing import IPAddress, Subnet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.interface import NetworkInterface

#: The default route's destination.
DEFAULT_DESTINATION = Subnet(IPAddress(0), 0)


@dataclass
class RouteEntry:
    """One row of a routing table.

    ``gateway`` of ``None`` means the destination is on-link (deliver
    directly).  ``source`` optionally pins the recommended source address,
    which the home agent uses to steer intercepted packets into its VIF.
    """

    destination: Subnet
    interface: "NetworkInterface"
    gateway: Optional[IPAddress] = None
    metric: int = 0
    source: Optional[IPAddress] = None

    def matches(self, addr: IPAddress) -> bool:
        """True if *addr* falls within this entry's destination."""
        return addr in self.destination

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = f" via {self.gateway}" if self.gateway else ""
        return f"<Route {self.destination}{via} dev {self.interface.name} metric {self.metric}>"


@dataclass(frozen=True)
class RouteResult:
    """What ``ip_rt_route()`` hands back to IP/TCP: iface, source, gateway."""

    interface: "NetworkInterface"
    source: IPAddress
    gateway: Optional[IPAddress] = None

    def next_hop(self, dst: IPAddress) -> IPAddress:
        """The link-layer target: the gateway if any, else the destination."""
        return self.gateway if self.gateway is not None else dst


#: Cache slot marker distinguishing "no cached result" from a cached miss.
_UNCACHED = object()


class RoutingTable:
    """Longest-prefix-match IPv4 routing table with metrics.

    Lookups memoize per destination in a small LRU (``cache_size`` entries;
    0 disables).  The cache is cleared on every table mutation, and every
    :class:`~repro.net.interface.NetworkInterface` state change clears its
    host's table via the ``state`` property, so staleness can't outlive the
    event that caused it; as belt and braces a cached entry whose interface
    has gone down is re-scanned anyway.  Hit/miss totals are plain ints
    (:meth:`cache_info`) rather than metrics: they are wall-clock-style
    diagnostics, and keeping them out of the registry keeps same-seed
    snapshots byte-identical whether or not the cache is enabled.
    """

    def __init__(self, cache_size: int = 256) -> None:
        self._entries: List[RouteEntry] = []
        self._cache_size = cache_size
        self._cache: "OrderedDict[IPAddress, Optional[RouteEntry]]" = OrderedDict()
        # One-entry inline cache in front of the LRU: forwarding loops hit
        # the same destination back-to-back, and a single comparison beats
        # an OrderedDict probe + move_to_end.  Same validation rules as the
        # LRU (is_up recheck, cleared on every mutation); a hot hit counts
        # as an ordinary cache hit.
        self._hot_dst: Optional[IPAddress] = None
        self._hot_entry: Optional[RouteEntry] = None
        self._cache_hits = 0
        self._cache_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def invalidate_cache(self) -> None:
        """Drop every memoized lookup result."""
        self._cache.clear()
        self._hot_dst = None
        self._hot_entry = None

    def cache_info(self) -> Dict[str, int]:
        """Lookup-cache diagnostics (perf observability, not simulation
        state)."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._cache),
            "max_size": self._cache_size,
        }

    def add(self, entry: RouteEntry) -> None:
        """Append an entry (order does not affect lookup)."""
        self._entries.append(entry)
        self.invalidate_cache()

    def remove(self, entry: RouteEntry) -> None:
        """Remove exactly this entry object."""
        self._entries.remove(entry)
        self.invalidate_cache()

    def remove_matching(self, destination: Optional[Subnet] = None,
                        interface: Optional["NetworkInterface"] = None) -> int:
        """Remove every entry matching the given criteria; return count."""
        keep: List[RouteEntry] = []
        removed = 0
        for entry in self._entries:
            if destination is not None and entry.destination != destination:
                keep.append(entry)
                continue
            if interface is not None and entry.interface is not interface:
                keep.append(entry)
                continue
            removed += 1
        self._entries = keep
        self.invalidate_cache()
        return removed

    def add_host_route(self, host_addr: IPAddress, interface: "NetworkInterface",
                       gateway: Optional[IPAddress] = None, metric: int = 0,
                       source: Optional[IPAddress] = None) -> RouteEntry:
        """Convenience: install a /32 route for one host."""
        entry = RouteEntry(destination=Subnet(host_addr, 32), interface=interface,
                           gateway=gateway, metric=metric, source=source)
        self.add(entry)
        return entry

    def add_default(self, interface: "NetworkInterface",
                    gateway: Optional[IPAddress] = None, metric: int = 0) -> RouteEntry:
        """Convenience: install a default (0.0.0.0/0) route."""
        entry = RouteEntry(destination=DEFAULT_DESTINATION, interface=interface,
                           gateway=gateway, metric=metric)
        self.add(entry)
        return entry

    def remove_default(self) -> int:
        """Drop every default (0.0.0.0/0) route; returns count."""
        return self.remove_matching(destination=DEFAULT_DESTINATION)

    def lookup(self, dst: IPAddress, require_up: bool = True) -> Optional[RouteEntry]:
        """Best (longest-prefix, then lowest-metric, then first) match.

        Only the common ``require_up=True`` form is cached; the raw form
        bypasses the cache entirely.
        """
        if not require_up:
            return self._scan(dst, False)
        if dst == self._hot_dst:
            hot = self._hot_entry
            if hot is None or hot.interface.is_up:
                self._cache_hits += 1
                return hot
            self._hot_dst = None  # stale: fall through to the LRU recheck
            self._hot_entry = None
        cache = self._cache
        cached = cache.get(dst, _UNCACHED)
        if cached is not _UNCACHED:
            if cached is None or cached.interface.is_up:
                self._cache_hits += 1
                cache.move_to_end(dst)
                self._hot_dst = dst
                self._hot_entry = cached
                return cached
            del cache[dst]  # interface went down under the cached route
        self._cache_misses += 1
        best = self._scan(dst, True)
        if self._cache_size > 0:
            cache[dst] = best
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
            self._hot_dst = dst
            self._hot_entry = best
        return best

    def _scan(self, dst: IPAddress, require_up: bool) -> Optional[RouteEntry]:
        best: Optional[RouteEntry] = None
        for entry in self._entries:
            if not entry.matches(dst):
                continue
            if require_up and not entry.interface.is_up:
                continue
            if best is None:
                best = entry
                continue
            if entry.destination.prefix_len > best.destination.prefix_len:
                best = entry
            elif (entry.destination.prefix_len == best.destination.prefix_len
                  and entry.metric < best.metric):
                best = entry
        return best

    def entries_for(self, interface: "NetworkInterface") -> List[RouteEntry]:
        """Every entry using *interface*."""
        return [entry for entry in self._entries if entry.interface is interface]
