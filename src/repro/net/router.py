"""Routers, including the paper's "security-conscious" transit filter.

A router is a host with forwarding on.  Section 3.2 explains why the plain
triangle route is fragile: "some security-conscious routers ... forbid
transit traffic.  Transit traffic is traffic with a source address not
local to the network" — a mobile host sending with its home address as
source looks exactly like that, so filtering routers drop it.  The
:meth:`Router.enable_transit_filter` switch reproduces that policy; the
Mobile Policy Table's probe-and-fallback behaviour is tested against it.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.config import Config, DEFAULT_CONFIG, HostTimings
from repro.net.addressing import Subnet
from repro.net.host import Host
from repro.net.interface import NetworkInterface
from repro.net.packet import IPPacket


class Router(Host):
    """An IP forwarder with an optional ingress (transit) filter."""

    def __init__(self, sim, name: str, config: Config = DEFAULT_CONFIG,
                 timings: Optional[HostTimings] = None) -> None:
        super().__init__(sim, name, config,
                         timings if timings is not None else config.server_host)
        self.ip.forwarding = True
        self._transit_filter = False
        self._filter_exempt: Set[Subnet] = set()
        self.transit_drops = 0
        self._transit_drop_counter = sim.metrics.counter(
            "router", "transit_drops", host=name)

    # ---------------------------------------------------------------- filter

    def enable_transit_filter(self, exempt: Optional[List[Subnet]] = None) -> None:
        """Drop forwarded packets whose source is not a local subnet.

        ``exempt`` lists additional prefixes treated as local (e.g. an
        upstream provider block).  Outer IP-in-IP headers are checked like
        anything else — which is precisely why the paper's encapsulated
        variant of the triangle route *does* pass such filters: its outer
        source is the mobile host's valid local care-of address.
        """
        self._transit_filter = True
        self._filter_exempt = set(exempt or [])
        self.ip.forward_filter = self._check_transit

    def disable_transit_filter(self) -> None:
        """Stop filtering; forward everything routable."""
        self._transit_filter = False
        self.ip.forward_filter = None

    @property
    def transit_filter_enabled(self) -> bool:
        """Whether ingress filtering is active."""
        return self._transit_filter

    def _local_subnets(self) -> List[Subnet]:
        return [iface.subnet for iface in self.interfaces
                if iface.subnet is not None]

    def _check_transit(self, packet: IPPacket, in_iface: NetworkInterface) -> bool:
        """Transit = neither endpoint is local: the packet is just passing
        through.  A mobile host's triangle-routed packet (home source,
        outside destination) is exactly that; tunneled packets *to* a local
        care-of address are not, which is why the unoptimized route and the
        encapsulated-direct variant both survive the filter."""
        local = self._local_subnets() + list(self._filter_exempt)
        if any(packet.src in net for net in local):
            return True
        if any(packet.dst in net for net in local):
            return True
        self.transit_drops += 1
        self._transit_drop_counter.value += 1
        self.sim.trace.emit("router", "transit_drop", router=self.name,
                            packet=packet.describe())
        return False
