"""Calibrated timing and link constants for the reproduction.

The paper measured real hardware: Gateway Handbook 486 subnotebooks (40 MHz)
as mobile hosts, a Pentium 90 router/home agent, 10 Mbit/s Ethernet via a
Linksys PCMCIA card, and Metricom packet radios behind a 115.2 kbit/s serial
port running the STRIP driver.  We have none of that hardware, so every
device- and host-specific cost lives here, in one place, calibrated so the
reproduction lands near the paper's headline numbers:

* home agent registration processing ............ 1.48 ms   (Figure 7)
* registration request -> reply latency ......... 4.79 ms   (Figure 7)
* total same-subnet address switch .............. 7.39 ms   (Figure 7)
* same-subnet switch loses <=1 packet at 10 ms spacing (16/20 runs lose 0)
* radio round-trip time through the home agent .. 200-250 ms (Section 4)
* cold device switch outage ..................... <= ~1.25 s (Figure 6)
* Metricom effective throughput ................. 30-40 kbit/s (Section 4)

Nothing in the protocol code hard-codes a result; these constants shape the
*inputs* (service times, link speeds) and the measured outputs emerge from
the simulated protocol dynamics.  Experiments may jitter each cost by a
small fraction (``jitter``) through the simulator's seeded RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.units import KBPS, MBPS, ms, us


@dataclass(frozen=True)
class LinkTimings:
    """Physical characteristics of one link technology."""

    #: One-way propagation + medium access latency, nanoseconds.
    latency: int
    #: Serialization rate in bits/second (0 means infinitely fast).
    bandwidth_bps: float
    #: Independent per-packet drop probability (0.0 = lossless).
    loss_rate: float = 0.0


@dataclass(frozen=True)
class DeviceTimings:
    """Cost of operating one network device (interface) type.

    ``up_delay`` dominates Figure 6's cold-switch outage: the paper says the
    longer interval "is due to bringing up the new interface".
    """

    #: Time for ``ifconfig up`` including any hardware interaction, ns.
    up_delay: int
    #: Time for ``ifconfig down``, ns.
    down_delay: int
    #: Time to (re)configure an IP address on an already-up interface, ns.
    #: This is Figure 7's "configure interface" stage.
    configure_delay: int


@dataclass(frozen=True)
class HostTimings:
    """Per-host software costs (CPU-bound, so per machine class)."""

    #: Transport-layer cost to transmit one packet (socket -> wire), ns.
    tx_cost: int
    #: Transport-layer cost to receive one packet (wire -> socket), ns.
    rx_cost: int
    #: Cost to update the kernel routing table (Figure 7 "change route"), ns.
    route_update_cost: int
    #: Cost to encapsulate or decapsulate one IP-in-IP packet, ns.
    tunnel_cost: int
    #: Cost to forward one packet (routers / home agents), ns.
    forward_cost: int


@dataclass(frozen=True)
class RegistrationTimings:
    """Costs specific to the mobile-IP registration exchange (Figure 7)."""

    #: MH cost to build and emit a registration request, ns.
    mh_marshal_cost: int
    #: MH extra socket-layer cost to push the request out, ns.
    mh_send_overhead: int
    #: MH cost to receive and validate the reply, ns.
    mh_receive_overhead: int
    #: HA cost to pull the request off the wire and demux it, ns.
    ha_receive_overhead: int
    #: HA processing: validate, update binding, install proxy ARP and the
    #: host route, emit gratuitous ARP.  The paper measured 1.48 ms.
    ha_processing_cost: int
    #: HA cost to emit the reply, ns.
    ha_send_overhead: int
    #: MH bookkeeping after a successful reply (Figure 7 "post-reg"), ns.
    mh_post_registration_cost: int
    #: Client retransmission interval when a reply is lost, ns.
    retransmit_interval: int
    #: Give up after this many transmissions of one request.
    max_transmissions: int
    #: Default binding lifetime requested by the MH, ns.
    default_lifetime: int
    #: Growth factor applied to the retransmit interval after each
    #: unanswered transmission (RFC 2002-style exponential backoff).
    #: The *first* retransmission always waits exactly
    #: ``retransmit_interval``; 1.0 restores the legacy fixed cadence.
    backoff_multiplier: float = 2.0
    #: Ceiling on the backed-off retransmit interval, ns.
    backoff_cap: int = ms(8000)
    #: Fractional deterministic jitter (uniform +/-) on backed-off
    #: intervals, drawn from a dedicated RNG stream.  0.0 = no jitter and
    #: no RNG consumption, keeping legacy runs byte-identical.
    backoff_jitter: float = 0.0
    #: Fraction of the granted binding lifetime after which the mobile
    #: host proactively re-registers (0.0 disables renewal; 0.5 renews at
    #: half-life like DHCP).
    renewal_fraction: float = 0.0


@dataclass(frozen=True)
class FleetTimings:
    """Statistical parameters of the aggregate fleet model (x7 scale).

    :class:`repro.workloads.aggregate.AggregateHostModel` represents N
    mobile hosts as arrival processes instead of object graphs; these
    constants calibrate those processes against the per-host testbed:

    * a host (re)registers as a Poisson process with mean interval
      ``mean_registration_interval`` (the default matches the per-host
      binding lifetime, i.e. pure lifetime-renewal traffic);
    * ``network_overhead`` is everything in the Figure 7 round trip that
      is *not* home-agent service time (mobile-host marshalling, socket
      overheads, wire time): 4.79 ms total minus the ~1.96 ms the agent
      spends receiving, processing and replying;
    * per-registration home-agent service time itself comes from
      :class:`RegistrationTimings` (receive + processing + send), so the
      aggregate and per-host models share one calibration.
    """

    #: Mean Poisson inter-registration interval per host, ns.
    mean_registration_interval: int = ms(60_000)
    #: Probability that a registration reflects an actual move (binding
    #: churn: new care-of address) rather than a same-address renewal.
    churn_probability: float = 0.3
    #: Non-HA share of the registration round trip, ns (Figure 7).
    network_overhead: int = us(2830)
    #: Fractional deterministic jitter (uniform +/-) on the network share.
    latency_jitter: float = 0.25
    #: Mean per-host tunnel traffic while registered, bytes/second
    #: (~32 kbit/s: a Metricom radio running flat out).
    tunnel_bytes_per_sec: int = 4_000
    #: Cap on modeled per-agent utilization: queueing delay is computed
    #: from an M/D/1 waiting time, which diverges at rho = 1; beyond the
    #: cap the model reports saturation rather than infinities.
    utilization_cap: float = 0.95
    #: Bounded-staleness degraded mode: while an address's provisioned
    #: replicas are unreachable, any reachable plane member may answer
    #: data-plane lookups from the plane's replicated (possibly stale)
    #: binding.  Off by default — lookups simply miss during takeover,
    #: exactly the pre-existing behaviour.
    stale_serve: bool = False
    #: Hard staleness cap, ns: a replicated binding older than this is
    #: never served stale (the consistency bound of the degraded mode).
    stale_serve_cap: int = ms(30_000)
    #: Deadline, ns, within which every binding disturbed by a fault
    #: (crash, partition, membership change) must be re-won at a live
    #: reachable replica.  The :class:`repro.faults.auditor.PlaneAuditor`
    #: raises when a binding misses it.
    convergence_deadline: int = ms(8_000)
    #: Base delay, ns, before a host re-resolves its responsible replica
    #: and re-registers after a terminal registration failure.
    reregister_delay: int = ms(1_500)
    #: Fractional jitter (uniform +/-) on ``reregister_delay``, drawn per
    #: host from a splitmix64 stream keyed by global host index, so a
    #: replica crash never synchronizes a fleet-wide retry storm.
    reregister_jitter: float = 0.5


@dataclass(frozen=True)
class AutoswitchTimings:
    """Probe cadence and hysteresis for automatic network selection."""

    #: Interval between reachability probes of each candidate, ns.
    probe_interval: int
    #: How long to wait for a probe reply before counting a failure, ns.
    probe_timeout: int
    #: Consecutive successes before a candidate becomes eligible.
    up_threshold: int
    #: Consecutive failures before a candidate becomes ineligible.
    down_threshold: int


@dataclass(frozen=True)
class Config:
    """Bundle of every calibrated constant, with paper-faithful defaults."""

    # ---------------------------------------------------------------- links
    #: 10 Mbit/s shared Ethernet (LAN of Figure 5).
    ethernet: LinkTimings = field(
        default_factory=lambda: LinkTimings(latency=us(150), bandwidth_bps=10 * MBPS)
    )
    #: Campus backbone hop between routed subnets ("the cloud" of Figure 5).
    backbone: LinkTimings = field(
        default_factory=lambda: LinkTimings(latency=us(400), bandwidth_bps=45 * MBPS)
    )
    #: Metricom Starmode radio: theoretical 100 kbit/s, effective 30-40.
    radio: LinkTimings = field(
        default_factory=lambda: LinkTimings(
            latency=ms(78), bandwidth_bps=34 * KBPS, loss_rate=0.0015
        )
    )
    #: The 115.2 kbit/s serial port between the Handbook and the radio.
    serial: LinkTimings = field(
        default_factory=lambda: LinkTimings(latency=us(300), bandwidth_bps=115_200)
    )
    #: Loopback: free.
    loopback: LinkTimings = field(
        default_factory=lambda: LinkTimings(latency=0, bandwidth_bps=0)
    )

    # -------------------------------------------------------------- devices
    #: Linksys PCMCIA Ethernet card.
    ethernet_device: DeviceTimings = field(
        default_factory=lambda: DeviceTimings(
            up_delay=ms(340), down_delay=ms(90), configure_delay=ms(1.31)
        )
    )
    #: Metricom radio behind the serial port (STRIP): slow to come up.
    radio_device: DeviceTimings = field(
        default_factory=lambda: DeviceTimings(
            up_delay=ms(820), down_delay=ms(130), configure_delay=ms(2.1)
        )
    )
    #: Virtual interfaces are software-only.
    virtual_device: DeviceTimings = field(
        default_factory=lambda: DeviceTimings(
            up_delay=us(60), down_delay=us(40), configure_delay=us(50)
        )
    )

    # ---------------------------------------------------------------- hosts
    #: Gateway Handbook 486/40: the mobile host.
    mobile_host: HostTimings = field(
        default_factory=lambda: HostTimings(
            tx_cost=us(160),
            rx_cost=us(160),
            route_update_cost=us(610),
            tunnel_cost=us(120),
            forward_cost=us(140),
        )
    )
    #: Pentium 90: router and home agent.
    server_host: HostTimings = field(
        default_factory=lambda: HostTimings(
            tx_cost=us(60),
            rx_cost=us(60),
            route_update_cost=us(180),
            tunnel_cost=us(45),
            forward_cost=us(50),
        )
    )
    #: Generic correspondent host / infrastructure box.
    generic_host: HostTimings = field(
        default_factory=lambda: HostTimings(
            tx_cost=us(50),
            rx_cost=us(50),
            route_update_cost=us(150),
            tunnel_cost=us(45),
            forward_cost=us(50),
        )
    )

    # --------------------------------------------------------- registration
    registration: RegistrationTimings = field(
        default_factory=lambda: RegistrationTimings(
            mh_marshal_cost=us(210),
            mh_send_overhead=us(1050),
            mh_receive_overhead=us(1160),
            ha_receive_overhead=us(250),
            ha_processing_cost=us(1000),
            ha_send_overhead=us(230),
            mh_post_registration_cost=us(680),
            retransmit_interval=ms(1000),
            max_transmissions=4,
            default_lifetime=ms(60_000),
        )
    )

    # ---------------------------------------------------------------- fleet
    fleet: FleetTimings = field(default_factory=FleetTimings)

    # ----------------------------------------------------------- autoswitch
    autoswitch: AutoswitchTimings = field(
        default_factory=lambda: AutoswitchTimings(
            probe_interval=ms(500),
            probe_timeout=ms(400),
            up_threshold=2,
            down_threshold=2,
        )
    )

    # ----------------------------------------------------------------- misc
    #: Fractional jitter applied to software costs (uniform +/- jitter).
    jitter: float = 0.06
    #: ARP cache entry lifetime, ns (Linux default is ~60 s).
    arp_timeout: int = ms(60_000)
    #: ARP request retransmit interval / attempts before failure.
    arp_retry_interval: int = ms(1000)
    arp_max_attempts: int = 3
    #: DHCP server response latency (DISCOVER->OFFER, REQUEST->ACK), ns.
    dhcp_server_delay: int = ms(2.4)
    #: Default DHCP lease duration, ns.
    dhcp_lease_time: int = ms(120_000)
    #: Default TTL stamped on locally originated packets.
    default_ttl: int = 64

    # ------------------------------------------------------------ transport
    #: TCP congestion-control strategy for new connections: "tahoe" (the
    #: seed's slow-start/AIMD with timeout collapse — byte-identical
    #: default), "reno" (RFC 5681 fast retransmit/fast recovery), or
    #: "cubic" (RFC 8312, deterministic fixed-point).  See
    #: ``repro.net.congestion.CONGESTION_CONTROLS``.
    tcp_congestion_control: str = "tahoe"
    #: Enable selective acknowledgments (RFC 2018): the receiver buffers
    #: out-of-order segments and advertises up to three SACK blocks; the
    #: sender retransmits holes from a scoreboard.  Off by default (the
    #: seed's go-back-N behaviour).
    tcp_sack: bool = False
    #: RFC 6298 retransmission-timeout bounds, nanoseconds.
    tcp_min_rto: int = ms(400)
    tcp_max_rto: int = ms(16_000)
    #: RFC 9293 receiver flow control: every segment advertises the free
    #: space left in the receive buffer (``wnd``), the sender limits its
    #: flight to ``min(cwnd, peer rwnd)``, and a closed window is probed
    #: by an exponentially backed-off persist timer instead of being
    #: hammered by the retransmission timer.  Off by default: the seed's
    #: fixed ``DEFAULT_WINDOW_BYTES`` behaviour, byte-identical.
    tcp_flow_control: bool = False
    #: Receive-buffer capacity per connection, bytes (the ceiling on the
    #: advertised window).  The default matches the seed's fixed window so
    #: a fast-draining application behaves like the legacy stack.  Only
    #: meaningful with ``tcp_flow_control``.
    tcp_recv_buffer: int = 4096
    #: RFC 9293 3.8.6.3 delayed ACKs: pure data ACKs are held until a
    #: second segment arrives or the timeout below fires.  Out-of-order
    #: segments, FIN, and window updates still ACK immediately.  Off by
    #: default (the seed ACKed every segment).
    tcp_delayed_ack: bool = False
    #: Delayed-ACK flush timeout, nanoseconds (RFC caps it at 500 ms).
    tcp_delayed_ack_timeout: int = ms(200)
    #: Nagle's algorithm (RFC 9293 3.7.4): at most one sub-MSS segment of
    #: fresh data in flight at a time.  Off by default — the seed streams
    #: small writes immediately, and the legacy reports depend on it.
    tcp_nagle: bool = False

    # ------------------------------------------------------------ fast path
    #: Event-queue implementation for Scenario-built simulators: "heap"
    #: (binary heap, default) or "wheel" (hierarchical timer wheel).  Both
    #: order events identically; the choice affects wall time only.
    engine_scheduler: str = "heap"
    #: Zero-allocation fast path: free-list arenas for events and packets
    #: plus the batched in-engine dispatch loop.  Observationally neutral —
    #: same-seed runs are byte-identical with it on or off (the bench guard
    #: asserts this) — so it defaults on; turn it off to get plain
    #: allocate-per-event behaviour when debugging object lifetimes.
    engine_pooling: bool = True
    #: Entries in the Mobile Policy Table's per-destination lookup cache
    #: (0 disables caching).
    policy_cache_size: int = 128
    #: Entries in each routing table's per-destination LPM cache
    #: (0 disables caching).
    route_cache_size: int = 256

    def with_overrides(self, **kwargs: object) -> "Config":
        """Return a copy with some fields replaced (experiments use this)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The calibrated defaults used by the testbed and all experiments.
DEFAULT_CONFIG = Config()
