"""Aggregate mobile-host models: N hosts as one statistical object.

The x4 fleet sweep tops out around 10^3 hosts because every
:class:`~repro.core.mobile_host.MobileHost` is a full object graph —
interfaces, sockets, timers, per-packet events.  To reach 10^5-10^6
hosts, :class:`AggregateHostModel` replaces the object graph with the
*processes* it generates, the way MIPv6 scaling studies model
registration load as an arrival process rather than simulating each
host:

* **registration arrivals** — each host (re)registers as an independent
  Poisson process (mean interval from
  :class:`~repro.config.FleetTimings`), the superposition of which is
  the home-agent plane's offered load;
* **binding churn** — each arrival is a genuine move (new care-of
  address) with probability ``churn_probability``, otherwise a renewal;
* **binding latency** — the Figure 7 round trip decomposed into a
  jittered network share, the home agent's deterministic service time,
  and an M/D/1 queueing delay at the replica that owns the host on the
  :class:`~repro.core.binding_shard.HashRing` (so ring imbalance and
  failed-replica takeover load are visible in the tail);
* **tunnel traffic volume** — per-host expected bytes while registered.

Determinism: the model draws from its own named simulator stream
(``aggregate:<name>``) exactly once, to derive a base seed; every
per-host draw then comes from a splitmix64 generator keyed by
``(base seed, global host index)``.  Host *h*'s samples therefore do not
depend on how the fleet is partitioned into models, which is what makes
an aggregate shard's :class:`~repro.stats.Stats`/histogram partials
merge **losslessly**: one model over N hosts and k models over the same
hosts produce the same sample multiset, and the Welford/bucket merges
are exact over it.

Nothing here posts per-registration simulator events — 10^6 hosts in a
discrete-event loop is exactly the scaling wall this model removes.  The
model reads the simulator for seed/metrics/trace context and publishes
lazy summary counters when run.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Tuple

from repro.config import Config, DEFAULT_CONFIG, FleetTimings
from repro.parallel.seeds import spawn_seed
from repro.stats import LatencyHistogram, Stats, Welford

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.binding_shard import HashRing
    from repro.sim.engine import Simulator

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_INV_2_53 = 1.0 / (1 << 53)


class _SplitMix:
    """A tiny, fast, platform-stable PRNG for per-host draws.

    ``random.Random`` hashes its string seed through SHA-512 on every
    construction — microseconds that matter when a fleet constructs one
    generator per host.  splitmix64 is a handful of integer ops, passes
    BigCrush, and produces identical streams on every CPython.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def random(self) -> float:
        """Uniform in [0, 1) with 53 bits of precision."""
        state = (self._state + _GOLDEN) & _MASK64
        self._state = state
        value = ((state ^ (state >> 30)) * _MIX1) & _MASK64
        value = ((value ^ (value >> 27)) * _MIX2) & _MASK64
        value = value ^ (value >> 31)
        return (value >> 11) * _INV_2_53

    def expovariate(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        return -mean * math.log(1.0 - self.random())

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.random()


def registration_service_ns(config: Config) -> int:
    """Home-agent service time per registration (receive+process+send)."""
    registration = config.registration
    return (registration.ha_receive_overhead
            + registration.ha_processing_cost
            + registration.ha_send_overhead)


def agent_mean_waits(config: Config, service_ns: int, fleet_hosts: int,
                     ring: Optional["HashRing"] = None,
                     failed: FrozenSet[str] = frozenset()
                     ) -> Tuple[Dict[Optional[str], float], int]:
    """M/D/1 mean queueing delay (ns) at each live replica.

    The shared closed form behind :meth:`AggregateHostModel.
    mean_wait_by_agent` and the x8 cross-validation: utilization of a
    replica is (hosts it effectively owns) x (service time / mean
    registration interval); the waiting time of an M/D/1 queue is
    ``rho * S / (2 (1 - rho))``.  Utilization is capped
    (:attr:`~repro.config.FleetTimings.utilization_cap`) so an overloaded
    plane reports a deep-but-finite tail.  Returns ``(waits,
    saturated_agent_count)``.
    """
    fleet = config.fleet
    interval = float(fleet.mean_registration_interval)
    service = float(service_ns)
    waits: Dict[Optional[str], float] = {}
    if ring is None:
        shares: Dict[Optional[str], float] = {None: 1.0}
    else:
        shares = dict(ring.effective_ownership(failed))
    saturated = 0
    for agent, share in shares.items():
        if ring is not None and agent in failed:
            continue
        rho = fleet_hosts * share * service / interval
        if rho >= fleet.utilization_cap:
            rho = fleet.utilization_cap
            saturated += 1
        waits[agent] = rho * service / (2.0 * (1.0 - rho))
    return waits, saturated


def predicted_latency_ms(config: Config, fleet_hosts: int,
                         ring: Optional["HashRing"] = None,
                         failed: FrozenSet[str] = frozenset()) -> float:
    """Model-predicted mean registration latency, milliseconds.

    Figure 7's decomposition under the fleet calibration: the non-HA
    network share plus deterministic service time plus the
    ownership-weighted M/D/1 wait across live replicas.  This is what x8
    cross-validates against *measured* per-registration round trips from
    real :class:`~repro.core.registration.RegistrationClient` traffic.
    """
    service_ns = registration_service_ns(config)
    waits, _ = agent_mean_waits(config, service_ns, fleet_hosts, ring, failed)
    if ring is None:
        shares: Dict[Optional[str], float] = {None: 1.0}
    else:
        shares = ring.effective_ownership(frozenset(failed))
    weight = sum(shares[agent] for agent in waits)
    wait = (sum(shares[agent] * waits[agent] for agent in waits) / weight
            if weight > 0.0 else 0.0)
    return (float(config.fleet.network_overhead) + service_ns + wait) / 1e6


def calibrated_fleet_timings(fleet: FleetTimings, *, registrations: int,
                             handoffs: int, hosts: int,
                             horizon_ns: int) -> FleetTimings:
    """Fit the aggregate model's arrival/churn knobs to measured traffic.

    The churn-calibration hook: given counts measured from a real-traffic
    run (x8's per-host clients, or production telemetry), return a
    :class:`~repro.config.FleetTimings` whose Poisson arrival interval
    and churn probability reproduce the observed rates — closing the loop
    between the event-level simulation and the 10^6-host aggregate model.
    Degenerate inputs (no traffic, no hosts) return *fleet* unchanged.
    """
    if registrations <= 0 or hosts <= 0 or horizon_ns <= 0:
        return fleet
    interval = max(1, int(hosts * horizon_ns / registrations))
    return replace(fleet, mean_registration_interval=interval,
                   churn_probability=handoffs / registrations)


class AggregateHostModel:
    """One object statistically representing ``n_hosts`` mobile hosts.

    Parameters
    ----------
    sim:
        Simulator supplying the named RNG stream, metrics and trace.
    name:
        Stream name: the model draws its base seed from
        ``sim.rng("aggregate:<name>")``, so distinct models in one
        simulation get independent streams.
    n_hosts:
        How many hosts this model represents (its slice of the fleet).
    horizon:
        Modeled duration, ns: arrivals land in ``[0, horizon)``.
    fleet_hosts:
        Total fleet size driving per-agent load.  Defaults to
        ``n_hosts``; a model representing one *shard* of a larger fleet
        must pass the fleet-wide count so utilization reflects every
        shard's load on the shared home-agent plane.
    host_offset:
        Global index of this model's first host.  Draws are keyed by
        global index, so partitioning a fleet into models at different
        offsets reproduces exactly the per-host samples of one big model
        (the lossless-merge property the x7 cross-check test asserts).
    ring:
        Optional :class:`~repro.core.binding_shard.HashRing` of
        home-agent replica names.  With a ring, each host's registrations
        queue at the replica owning ``host<index>``; without one, a
        single agent serves everything.
    failed_agents:
        Ring members currently crashed: their hosts and hash-space fail
        over to ring successors (inflating those queues), modeling the
        plane's takeover path under a
        :class:`~repro.faults.plan.HomeAgentRestart`.
    """

    def __init__(self, sim: "Simulator", name: str, n_hosts: int, *,
                 horizon: int,
                 fleet_hosts: Optional[int] = None,
                 host_offset: int = 0,
                 ring: Optional["HashRing"] = None,
                 failed_agents: FrozenSet[str] = frozenset(),
                 config: Config = DEFAULT_CONFIG) -> None:
        if n_hosts < 0:
            raise ValueError(f"n_hosts must be >= 0, got {n_hosts}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.sim = sim
        self.name = name
        self.n_hosts = n_hosts
        self.horizon = horizon
        self.fleet_hosts = fleet_hosts if fleet_hosts is not None else n_hosts
        self.host_offset = host_offset
        self.ring = ring
        self.failed_agents = frozenset(failed_agents)
        self.config = config
        #: The model's own named stream; consumed once, for the base seed.
        self._base_seed = sim.rng(f"aggregate:{name}").getrandbits(63)
        #: Home-agent service time per registration, ns (shared
        #: calibration with the per-host simulation).
        self.service_ns = registration_service_ns(config)
        # Results (filled by run()).
        self.registrations = 0
        self.handoffs = 0
        self.tunnel_bytes = 0
        self.saturated_agents = 0
        self.latency = Welford()
        self.latency_hist = LatencyHistogram()
        self._ran = False

    # ------------------------------------------------------------------ load

    def mean_wait_by_agent(self) -> Dict[Optional[str], float]:
        """M/D/1 mean queueing delay (ns) at each live replica.

        Utilization of a replica is (hosts it effectively owns) x
        (service time / mean registration interval); the waiting time of
        an M/D/1 queue is ``rho * S / (2 (1 - rho))``.  Utilization is
        capped (:attr:`~repro.config.FleetTimings.utilization_cap`) so an
        overloaded plane reports a deep-but-finite tail; capped replicas
        are counted in :attr:`saturated_agents`.
        """
        fleet = self.config.fleet
        interval = float(fleet.mean_registration_interval)
        service = float(self.service_ns)
        waits: Dict[Optional[str], float] = {}
        if self.ring is None:
            shares: Dict[Optional[str], float] = {None: 1.0}
        else:
            shares = dict(self.ring.effective_ownership(self.failed_agents))
        self.saturated_agents = 0
        for agent, share in shares.items():
            if self.ring is not None and agent in self.failed_agents:
                continue
            rho = self.fleet_hosts * share * service / interval
            if rho >= fleet.utilization_cap:
                rho = fleet.utilization_cap
                self.saturated_agents += 1
            waits[agent] = rho * service / (2.0 * (1.0 - rho))
        return waits

    # ------------------------------------------------------------------- run

    def run(self) -> None:
        """Generate every host's processes and accumulate the partials.

        Idempotence guard: running twice would double-count, so a second
        call raises.
        """
        if self._ran:
            raise RuntimeError("AggregateHostModel.run() already ran")
        self._ran = True
        fleet = self.config.fleet
        horizon = self.horizon
        interval = float(fleet.mean_registration_interval)
        service = float(self.service_ns)
        churn = fleet.churn_probability
        overhead = float(fleet.network_overhead)
        jitter = fleet.latency_jitter
        low, high = 1.0 - jitter, 1.0 + jitter
        bytes_per_ns = fleet.tunnel_bytes_per_sec / 1e9
        waits = self.mean_wait_by_agent()
        ring = self.ring
        failed = self.failed_agents
        avoid = failed.__contains__ if failed else None
        base_seed = self._base_seed
        latency = self.latency
        hist = self.latency_hist
        registrations = 0
        handoffs = 0
        tunnel_bytes = 0

        for index in range(self.host_offset, self.host_offset + self.n_hosts):
            rng = _SplitMix(spawn_seed(base_seed, index))
            first_arrival = rng.expovariate(interval)
            if first_arrival >= horizon:
                continue
            if ring is None:
                mean_wait = waits[None]
            else:
                owner = ring.lookup(f"host{index}", avoid=avoid)
                mean_wait = waits[owner]
            arrival = first_arrival
            while arrival < horizon:
                registrations += 1
                if churn > 0.0 and rng.random() < churn:
                    handoffs += 1
                wait = rng.expovariate(mean_wait) if mean_wait > 0.0 else 0.0
                sample_ns = overhead * rng.uniform(low, high) + service + wait
                sample_ms = sample_ns / 1e6
                latency.add(sample_ms)
                hist.add(sample_ms)
                arrival += rng.expovariate(interval)
            # Tunnel volume: expected rate over the registered span (first
            # registration through the horizon; renewals keep it bound).
            tunnel_bytes += int((horizon - first_arrival) * bytes_per_ns)

        self.registrations = registrations
        self.handoffs = handoffs
        self.tunnel_bytes = tunnel_bytes
        self._publish()

    def _publish(self) -> None:
        """Lazy summary counters (created only when a model actually ran)."""
        metrics = self.sim.metrics
        metrics.counter("aggregate", "hosts",
                        model=self.name).value += self.n_hosts
        metrics.counter("aggregate", "registrations",
                        model=self.name).value += self.registrations
        metrics.counter("aggregate", "handoffs",
                        model=self.name).value += self.handoffs
        metrics.counter("aggregate", "tunnel_bytes",
                        model=self.name).value += self.tunnel_bytes
        self.sim.trace.emit("aggregate", "ran", model=self.name,
                            hosts=self.n_hosts,
                            registrations=self.registrations)

    # -------------------------------------------------------------- partials

    def partials(self) -> dict:
        """Plain-data shard result: mergeable summaries, no raw samples.

        The ``latency`` entry is a :class:`~repro.stats.Stats` dict the
        experiment merge step folds with
        :func:`~repro.stats.merge_stats`; ``latency_hist`` is the sparse
        bucket map for exact p99 merging.
        """
        stats = self.latency.finalize()
        return {
            "hosts": self.n_hosts,
            "registrations": self.registrations,
            "handoffs": self.handoffs,
            "tunnel_bytes": self.tunnel_bytes,
            "saturated_agents": self.saturated_agents,
            "latency": {"count": stats.count, "mean": stats.mean,
                        "std": stats.std, "minimum": stats.minimum,
                        "maximum": stats.maximum},
            "latency_hist": self.latency_hist.to_counts(),
        }

    @staticmethod
    def stats_from_partial(partial: dict) -> Stats:
        """Rebuild the :class:`Stats` shipped in a :meth:`partials` dict."""
        return Stats(**partial["latency"])
