"""Measurement workloads: the traffic the paper's experiments generate.

:mod:`repro.workloads.aggregate` scales past per-host simulation: an
:class:`AggregateHostModel` statistically represents N mobile hosts
(Poisson registration arrivals, binding churn, tunnel volume) for the
10^5-10^6-host fleet experiments.
"""

from repro.workloads.aggregate import AggregateHostModel
from repro.workloads.udp_echo import UdpEchoResponder, UdpEchoStream
from repro.workloads.tcp_session import TcpBulkReceiver, TcpBulkSender

__all__ = [
    "AggregateHostModel",
    "UdpEchoResponder",
    "UdpEchoStream",
    "TcpBulkSender",
    "TcpBulkReceiver",
]
