"""Measurement workloads: the traffic the paper's experiments generate."""

from repro.workloads.udp_echo import UdpEchoResponder, UdpEchoStream
from repro.workloads.tcp_session import TcpBulkReceiver, TcpBulkSender

__all__ = [
    "UdpEchoResponder",
    "UdpEchoStream",
    "TcpBulkSender",
    "TcpBulkReceiver",
]
