"""A long-lived TCP session: the paper's "remote login" scenario.

The introduction motivates seamless switching with applications that "run
for extended periods of time and build up nontrivial state, such as remote
logins with active processes."  This workload models that: a correspondent
streams numbered chunks over one TCP connection to the mobile host, which
acknowledges them at the application layer.  Handoffs in the middle must
not break the connection — segments lost during the outage are recovered
by TCP retransmission, and the connection's endpoints never change because
the mobile host's end is the home address.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.addressing import IPAddress
from repro.net.host import Host
from repro.net.packet import AppData
from repro.net.tcp import TCPConnection
from repro.sim.engine import Event

#: A telnet-ish service port.
SESSION_PORT = 23
#: Application payload per chunk.
CHUNK_BYTES = 256


class TcpBulkReceiver:
    """Mobile-host side: accepts one session and records what arrives."""

    def __init__(self, host: Host, port: int = SESSION_PORT) -> None:
        self.host = host
        self.port = port
        self.received_chunks: List[int] = []
        self.connection: Optional[TCPConnection] = None
        self.closed = False
        self._listener = host.tcp.listen(port, self._on_connection)

    def _on_connection(self, conn: TCPConnection) -> None:
        self.connection = conn
        conn.on_data = self._on_data
        conn.on_close = self._on_close

    def _on_data(self, data: AppData) -> None:
        content = data.content
        if isinstance(content, tuple) and content[0] == "chunk":
            self.received_chunks.append(content[1])

    def _on_close(self) -> None:
        self.closed = True

    @property
    def in_order(self) -> bool:
        """True if chunks arrived exactly in sequence (TCP's promise)."""
        return self.received_chunks == sorted(set(self.received_chunks))


class TcpDrainReceiver(TcpBulkReceiver):
    """A receiver whose application drains its buffer at a fixed rate.

    With ``Config.tcp_flow_control`` on, this models the slow reader the
    advertised window exists for: delivered bytes sit in the connection's
    receive buffer (``auto_consume`` off) until the drain tick consumes
    them.  A sender outrunning ``drain_bytes / drain_interval`` fills the
    buffer, the advertised window closes, and the transfer proceeds at
    the application's pace — through zero-window stalls and persist
    probes rather than loss.
    """

    def __init__(self, host: Host, drain_bytes: int, drain_interval: int,
                 port: int = SESSION_PORT) -> None:
        super().__init__(host, port)
        self.drain_bytes = drain_bytes
        self.drain_interval = drain_interval
        self.drained_bytes = 0
        self._drain_event: Optional[Event] = None

    def _on_connection(self, conn: TCPConnection) -> None:
        super()._on_connection(conn)
        conn.auto_consume = False
        self._drain_event = self.host.sim.call_later(
            self.drain_interval, self._drain, label="tcp-drain")

    def _drain(self) -> None:
        conn = self.connection
        if conn is not None and conn.rcv_buffered > 0:
            take = min(self.drain_bytes, conn.rcv_buffered)
            conn.consume(take)
            self.drained_bytes += take
        if not self.closed:
            self._drain_event = self.host.sim.call_later(
                self.drain_interval, self._drain, label="tcp-drain")

    def stop_draining(self) -> None:
        if self._drain_event is not None:
            self._drain_event.cancel()
            self._drain_event = None


class TcpBulkSender:
    """Correspondent side: opens the session and streams numbered chunks."""

    def __init__(self, host: Host, target: IPAddress, interval: int,
                 port: int = SESSION_PORT, chunk_bytes: int = CHUNK_BYTES) -> None:
        self.host = host
        self.sim = host.sim
        self.target = target
        self.interval = interval
        self.chunk_bytes = chunk_bytes
        self.sent_chunks = 0
        self.established = False
        self.reset = False
        self._running = False
        self._tick_event: Optional[Event] = None
        self.connection = host.tcp.connect(target, port)
        self.connection.on_established = self._on_established
        self.connection.on_reset = self._on_reset

    def _on_established(self) -> None:
        self.established = True
        if self._running:
            self._tick()

    def _on_reset(self) -> None:
        self.reset = True
        self.stop()

    def start(self) -> None:
        """Start streaming (waits for the handshake if needed)."""
        self._running = True
        if self.established:
            self._tick()

    def stop(self) -> None:
        """Pause the chunk stream (connection stays open)."""
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def finish(self) -> None:
        """Stop streaming and close the connection cleanly."""
        self.stop()
        if not self.reset:
            self.connection.close()

    def _tick(self) -> None:
        if not self._running or self.reset:
            return
        chunk = AppData(content=("chunk", self.sent_chunks),
                        size_bytes=self.chunk_bytes)
        self.connection.send(chunk)
        self.sent_chunks += 1
        self._tick_event = self.sim.call_later(self.interval, self._tick,
                                               label="tcp-chunk")
