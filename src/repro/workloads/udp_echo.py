"""The paper's measurement workload: a fixed-interval UDP echo stream.

"A correspondent host continuously sends a UDP packet to the mobile host
every 10 milliseconds, and the mobile host echoes the packet back.  We then
measure the number of packets that were lost during the interval in which
the mobile host switches addresses." (Section 4.)  The device-switching
experiment uses the same structure at a 250 ms interval, chosen because the
radio round-trip time is 200-250 ms.

:class:`UdpEchoStream` (correspondent side) tags each datagram with a
sequence number and send timestamp; :class:`UdpEchoResponder` (mobile
side) echoes whatever arrives.  Loss is counted end-to-end: a sequence
number whose echo never returns is a lost packet — which is how the paper
counts, since a reply can be lost on the return path too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.addressing import IPAddress
from repro.net.host import Host
from repro.net.packet import AppData
from repro.sim.engine import Event

#: The UDP echo port (RFC 862).
ECHO_PORT = 7
#: Payload bytes per probe (a small measurement packet).
PROBE_BYTES = 12


class UdpEchoResponder:
    """Echoes every received datagram back to its sender."""

    def __init__(self, host: Host, port: int = ECHO_PORT) -> None:
        self.host = host
        self.port = port
        self.echoed = 0
        self._socket = host.udp.open(port).on_datagram(self._on_datagram)

    def _on_datagram(self, data: AppData, src: IPAddress, src_port: int,
                     dst: IPAddress) -> None:
        self.echoed += 1
        self._socket.sendto(data, src, src_port)

    def close(self) -> None:
        """Release the echo port."""
        self._socket.close()


@dataclass
class EchoRecord:
    """Fate of one probe."""

    seq: int
    sent_at: int
    replied_at: Optional[int] = None

    @property
    def lost(self) -> bool:
        """True if the echo never came back."""
        return self.replied_at is None

    @property
    def rtt(self) -> Optional[int]:
        """Round-trip time, or None when lost."""
        if self.replied_at is None:
            return None
        return self.replied_at - self.sent_at


class UdpEchoStream:
    """Sends sequence-numbered probes at a fixed interval and counts echoes."""

    def __init__(self, host: Host, target: IPAddress, interval: int,
                 port: int = ECHO_PORT, payload_bytes: int = PROBE_BYTES) -> None:
        self.host = host
        self.sim = host.sim
        self.target = target
        self.interval = interval
        self.port = port
        self.payload_bytes = payload_bytes
        self._socket = host.udp.open(0).on_datagram(self._on_reply)
        self._records: Dict[int, EchoRecord] = {}
        self._next_seq = 0
        self._running = False
        self._tick_event: Optional[Event] = None

    # ---------------------------------------------------------------- control

    def start(self) -> None:
        """Begin probing (first probe goes out immediately)."""
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop sending; already-sent probes may still be answered."""
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _tick(self) -> None:
        if not self._running:
            return
        seq = self._next_seq
        self._next_seq += 1
        self._records[seq] = EchoRecord(seq=seq, sent_at=self.sim.now)
        probe = AppData(content=("echo-probe", seq), size_bytes=self.payload_bytes)
        self._socket.sendto(probe, self.target, self.port)
        self._tick_event = self.sim.call_later(self.interval, self._tick,
                                               label="echo-tick")

    def _on_reply(self, data: AppData, src: IPAddress, src_port: int,
                  dst: IPAddress) -> None:
        content = data.content
        if not (isinstance(content, tuple) and len(content) == 2
                and content[0] == "echo-probe"):
            return
        record = self._records.get(content[1])
        if record is not None and record.replied_at is None:
            record.replied_at = self.sim.now

    # ------------------------------------------------------------------ stats

    @property
    def sent(self) -> int:
        """Probes sent so far."""
        return len(self._records)

    @property
    def received(self) -> int:
        """Probes whose echo returned."""
        return sum(1 for record in self._records.values() if not record.lost)

    def lost_count(self, since: Optional[int] = None,
                   until: Optional[int] = None) -> int:
        """Probes sent in [since, until) whose echo never came back.

        Call only after the stream has stopped and the simulation has run
        long enough for stragglers to arrive, or in-flight probes will be
        miscounted as lost.
        """
        return len(self.lost_sequences(since=since, until=until))

    def lost_sequences(self, since: Optional[int] = None,
                       until: Optional[int] = None) -> List[int]:
        """Sorted sequence numbers of lost probes in the window."""
        out = []
        for record in self._records.values():
            if since is not None and record.sent_at < since:
                continue
            if until is not None and record.sent_at >= until:
                continue
            if record.lost:
                out.append(record.seq)
        return sorted(out)

    def received_count(self, since: Optional[int] = None,
                       until: Optional[int] = None) -> int:
        """Probes sent in [since, until) whose echo returned."""
        count = 0
        for record in self._records.values():
            if since is not None and record.sent_at < since:
                continue
            if until is not None and record.sent_at >= until:
                continue
            if not record.lost:
                count += 1
        return count

    def rtts(self) -> List[int]:
        """Round-trip times of all answered probes, in send order."""
        return [record.rtt for record in sorted(self._records.values(),
                                                key=lambda r: r.seq)
                if record.rtt is not None]

    def longest_outage(self) -> int:
        """Longest run of consecutive lost probes (packets)."""
        longest = 0
        current = 0
        for record in sorted(self._records.values(), key=lambda r: r.seq):
            if record.lost:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        return longest

    def close(self) -> None:
        """Stop and release the socket."""
        self.stop()
        self._socket.close()
