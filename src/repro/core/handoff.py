"""Handoff engines: the measured switch procedures of Section 4.

Three procedures, matching the paper's three experiments:

* :class:`AddressSwitcher` — switch to a different care-of address on the
  *same* subnet.  "Not something we usually do in practice, but ... a
  measurement of the minimal essential software overhead of our system."
  Its instrumented stages are exactly Figure 7's time-line: configure the
  interface, change the route table, the registration request/reply, and
  post-registration processing.
* :meth:`DeviceSwitcher.cold_switch` — "the mobile host deletes the route
  to the first interface, brings the interface down, brings the new
  interface up, adds its route, and finally registers the new IP address
  with its home agent."
* :meth:`DeviceSwitcher.hot_switch` — both interfaces stay up; "the mobile
  host merely changes its route and registers the new address."

Every stage is timestamped into a :class:`SwitchTimeline` so the
experiment harnesses can reproduce Figure 7's per-stage breakdown and
Figure 6's packet-loss histograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.mobile_host import MobileHost
from repro.core.registration import RegistrationOutcome
from repro.net.addressing import IPAddress, Subnet
from repro.net.dhcp import BoundLease, DHCPClient
from repro.net.interface import NetworkInterface
from repro.sim.randomness import jittered

#: Stage names (shared with the experiment harnesses).
STAGE_CONFIGURE = "configure_interface"
STAGE_ROUTE_UPDATE = "update_routes"
STAGE_DELETE_ROUTE = "delete_route"
STAGE_IF_DOWN = "interface_down"
STAGE_IF_UP = "interface_up"
STAGE_ACQUIRE = "acquire_address"
STAGE_ADD_ROUTE = "add_route"
STAGE_REGISTRATION = "registration"
STAGE_POST = "post_registration"


@dataclass
class Stage:
    """One timed step of a switch."""

    name: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Stage length in nanoseconds."""
        return self.end - self.start


@dataclass
class SwitchTimeline:
    """The full record of one handoff."""

    kind: str
    started_at: int
    finished_at: int = 0
    stages: List[Stage] = field(default_factory=list)
    success: bool = False
    registration: Optional[RegistrationOutcome] = None

    @property
    def total(self) -> int:
        """End-to-end switch time (Figure 7's 7.39 ms headline)."""
        return self.finished_at - self.started_at

    def stage(self, name: str) -> Optional[Stage]:
        """The named stage, or None if it did not occur."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def duration_of(self, name: str) -> int:
        """The named stage's duration (0 if absent)."""
        stage = self.stage(name)
        return stage.duration if stage is not None else 0

    @property
    def registration_round_trip(self) -> int:
        """Request -> reply latency (Figure 7's 4.79 ms line)."""
        if self.registration is None:
            return 0
        return self.registration.round_trip


class _TimelineBuilder:
    """Shared stage bookkeeping for the switchers."""

    def __init__(self, mobile: MobileHost, kind: str) -> None:
        self.mobile = mobile
        self.sim = mobile.sim
        self.timeline = SwitchTimeline(kind=kind, started_at=mobile.sim.now)
        self._stage_start = mobile.sim.now
        self.sim.metrics.counter("handoff", "attempts", host=mobile.name,
                                 kind=kind).value += 1
        self.sim.trace.emit("handoff", "start", host=mobile.name, kind=kind)

    def begin_stage(self) -> None:
        self._stage_start = self.sim.now

    def end_stage(self, name: str) -> None:
        stage = Stage(name=name, start=self._stage_start, end=self.sim.now)
        self.timeline.stages.append(stage)
        self.sim.trace.emit("handoff", "stage", host=self.mobile.name,
                            kind=self.timeline.kind, stage=name,
                            duration_ms=stage.duration / 1_000_000)
        self._stage_start = self.sim.now

    def finish(self, success: bool,
               on_done: Callable[[SwitchTimeline], None]) -> None:
        self.timeline.success = success
        self.timeline.finished_at = self.sim.now
        metrics = self.sim.metrics
        if success:
            metrics.histogram("handoff", "latency_ms",
                              host=self.mobile.name,
                              kind=self.timeline.kind
                              ).observe(self.timeline.total / 1e6)
        else:
            metrics.counter("handoff", "failures", host=self.mobile.name,
                            kind=self.timeline.kind).value += 1
        self.sim.trace.emit("handoff", "done", host=self.mobile.name,
                            kind=self.timeline.kind, success=success,
                            total_ms=self.timeline.total / 1_000_000)
        on_done(self.timeline)


class AddressSwitcher:
    """Same-subnet care-of address switch (experiment E1 / Figure 7)."""

    def __init__(self, mobile: MobileHost) -> None:
        self.mobile = mobile
        self.sim = mobile.sim

    def switch_address(self, new_care_of: IPAddress,
                       on_done: Callable[[SwitchTimeline], None]) -> None:
        """Replace the current care-of with *new_care_of* (same subnet).

        The new address is configured as an alias first; the old one is
        withdrawn when the route table is updated.  The loss window is
        therefore *not* the whole 7.39 ms switch but only the tail from the
        route change until the home agent's binding points at the new
        address — which is why the paper sees at most one lost packet at
        10 ms spacing.
        """
        mobile = self.mobile
        iface = mobile.active_interface
        if iface is None or mobile.care_of is None or iface.subnet is None:
            raise ValueError(f"{mobile.name} is not visiting a foreign subnet")
        old_care_of = mobile.care_of
        build = _TimelineBuilder(mobile, kind="same-subnet")
        timings = mobile.config.registration
        rng = self.sim.rng(f"handoff:{mobile.name}")

        def configure_done() -> None:
            build.end_stage(STAGE_CONFIGURE)
            delay = jittered(rng, mobile.timings.route_update_cost,
                             mobile.config.jitter)
            self.sim.call_later(delay, routes_updated, label="switch-routes")

        def routes_updated() -> None:
            # The atomic cutover: the old address dies here, the preferred
            # source flips to the new one.
            iface.remove_address(old_care_of)
            mobile.care_of = new_care_of
            build.end_stage(STAGE_ROUTE_UPDATE)
            mobile.registration.register(new_care_of, on_done=registered,
                                         on_fail=failed, via=iface)

        def registered(outcome: RegistrationOutcome) -> None:
            build.timeline.registration = outcome
            build.end_stage(STAGE_REGISTRATION)
            delay = jittered(rng, timings.mh_post_registration_cost,
                             mobile.config.jitter)
            self.sim.call_later(delay, post_done, label="switch-post")

        def post_done() -> None:
            build.end_stage(STAGE_POST)
            build.finish(success=True, on_done=on_done)

        def failed() -> None:
            build.end_stage(STAGE_REGISTRATION)
            build.finish(success=False, on_done=on_done)

        build.begin_stage()
        iface.configure(new_care_of, iface.subnet, on_done=configure_done,
                        make_primary=True)


class DeviceSwitcher:
    """Switching between network devices (experiment F6, Figure 6)."""

    def __init__(self, mobile: MobileHost) -> None:
        self.mobile = mobile
        self.sim = mobile.sim

    # -------------------------------------------------------------- cold switch

    def cold_switch(self, old_iface: NetworkInterface,
                    new_iface: NetworkInterface,
                    care_of: IPAddress, net: Subnet, gateway: IPAddress,
                    on_done: Callable[[SwitchTimeline], None],
                    dhcp: Optional[DHCPClient] = None) -> None:
        """Tear the old device down before bringing the new one up.

        With ``dhcp`` given, the care-of address is acquired dynamically
        once the new interface is up (and *care_of* is ignored).
        """
        mobile = self.mobile
        build = _TimelineBuilder(mobile, kind="cold-switch")
        rng = self.sim.rng(f"handoff:{mobile.name}")
        timings = mobile.config.registration
        chosen = {"care_of": care_of, "net": net, "gateway": gateway}

        def delete_route() -> None:
            mobile.ip.routes.remove_matching(interface=old_iface)
            build.end_stage(STAGE_DELETE_ROUTE)
            build.begin_stage()
            old_iface.bring_down(on_done=old_down)

        def old_down() -> None:
            build.end_stage(STAGE_IF_DOWN)
            build.begin_stage()
            new_iface.bring_up(on_done=new_up)

        def new_up() -> None:
            build.end_stage(STAGE_IF_UP)
            build.begin_stage()
            if dhcp is not None:
                dhcp.acquire(on_bound=acquired, on_failed=failed)
            elif not new_iface.owns_address(care_of):
                new_iface.configure(care_of, net, on_done=configured)
            else:
                configured()

        def acquired(lease: BoundLease) -> None:
            chosen["care_of"] = lease.address
            chosen["net"] = lease.subnet
            if lease.gateway is not None:
                chosen["gateway"] = lease.gateway
            build.end_stage(STAGE_ACQUIRE)
            build.begin_stage()
            new_iface.configure(lease.address, lease.subnet, on_done=configured)

        def configured() -> None:
            build.end_stage(STAGE_CONFIGURE)
            delay = jittered(rng, mobile.timings.route_update_cost,
                             mobile.config.jitter)
            self.sim.call_later(delay, routes_added, label="cold-add-route")

        def routes_added() -> None:
            mobile.start_visiting(new_iface, chosen["care_of"], chosen["net"],
                                  chosen["gateway"], register=False)
            build.end_stage(STAGE_ADD_ROUTE)
            mobile.register_current(on_registered=registered, on_failed=failed)

        def registered(outcome: RegistrationOutcome) -> None:
            build.timeline.registration = outcome
            build.end_stage(STAGE_REGISTRATION)
            delay = jittered(rng, timings.mh_post_registration_cost,
                             mobile.config.jitter)
            self.sim.call_later(delay, post_done, label="cold-post")

        def post_done() -> None:
            build.end_stage(STAGE_POST)
            build.finish(success=True, on_done=on_done)

        def failed() -> None:
            build.finish(success=False, on_done=on_done)

        build.begin_stage()
        delay = jittered(rng, mobile.timings.route_update_cost,
                         mobile.config.jitter)
        self.sim.call_later(delay, delete_route, label="cold-del-route")

    # --------------------------------------------------------------- hot switch

    def hot_switch(self, new_iface: NetworkInterface,
                   care_of: IPAddress, net: Subnet, gateway: IPAddress,
                   on_done: Callable[[SwitchTimeline], None]) -> None:
        """Switch to an already-up, already-configured interface.

        "The mobile host merely changes its route and registers the new
        address with its home agent."  The old interface keeps receiving
        until the home agent's binding flips, which is why hot switches
        normally lose nothing.
        """
        mobile = self.mobile
        if not new_iface.is_up:
            raise ValueError(f"hot switch requires {new_iface.name} to be up")
        build = _TimelineBuilder(mobile, kind="hot-switch")
        rng = self.sim.rng(f"handoff:{mobile.name}")
        timings = mobile.config.registration

        def routes_changed() -> None:
            mobile.start_visiting(new_iface, care_of, net, gateway,
                                  register=False)
            build.end_stage(STAGE_ROUTE_UPDATE)
            mobile.register_current(on_registered=registered, on_failed=failed)

        def registered(outcome: RegistrationOutcome) -> None:
            build.timeline.registration = outcome
            build.end_stage(STAGE_REGISTRATION)
            delay = jittered(rng, timings.mh_post_registration_cost,
                             mobile.config.jitter)
            self.sim.call_later(delay, post_done, label="hot-post")

        def post_done() -> None:
            build.end_stage(STAGE_POST)
            build.finish(success=True, on_done=on_done)

        def failed() -> None:
            build.finish(success=False, on_done=on_done)

        build.begin_stage()
        delay = jittered(rng, mobile.timings.route_update_cost,
                         mobile.config.jitter)
        self.sim.call_later(delay, routes_changed, label="hot-routes")
