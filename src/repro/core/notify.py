"""Network-change notification: the API Section 6 calls for (extension).

"We believe it may be advantageous to inform upper-layer network protocols
and some applications of these changes so they can adjust their behaviors
accordingly.  Part of our future work is to investigate ... what
application programming interface best enables applications to specify
their interests and receive notification of any relevant network changes.
Developing a clean interface for this is a major goal of our further
work."

This module is that interface, built on the facts the mobile host already
knows:

* applications **subscribe** with an interest specification: which event
  kinds they care about, and how large a bandwidth change is "relevant"
  to them;
* the mobile host **publishes** events when its attachment changes
  (device switch, new care-of address, coming home) and when connectivity
  is lost or restored;
* each event carries before/after :class:`LinkProfile` snapshots, so an
  application can adapt (e.g. a video stream dropping its rate when the
  10 Mbit/s Ethernet gives way to a 34 kbit/s radio).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.interface import NetworkInterface
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class LinkProfile:
    """What an application can know about one attachment."""

    interface_name: str
    technology: str            # "ethernet", "radio", "p2p", "loopback", ...
    bandwidth_bps: float       # 0.0 = unconstrained
    latency_ns: int
    is_up: bool
    #: The attachment's primary (care-of or home) address, as text.  The
    #: same NIC plugged into a different network is a *new attachment*.
    address: Optional[str] = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        rate = ("unconstrained" if self.bandwidth_bps <= 0
                else f"{self.bandwidth_bps / 1000:.0f} kbit/s")
        where = f" as {self.address}" if self.address else ""
        return (f"{self.interface_name}{where} ({self.technology}, {rate}, "
                f"{self.latency_ns / 1_000_000:.1f} ms)")


class EventKind(enum.Enum):
    """The notification vocabulary."""

    ATTACHMENT_CHANGED = "attachment-changed"   # new device or care-of
    QUALITY_CHANGED = "quality-changed"         # same device, new numbers
    CONNECTIVITY_LOST = "connectivity-lost"
    CONNECTIVITY_RESTORED = "connectivity-restored"


@dataclass(frozen=True)
class NetworkEvent:
    """One published change."""

    kind: EventKind
    time: int
    old: Optional[LinkProfile]
    new: Optional[LinkProfile]

    @property
    def bandwidth_ratio(self) -> float:
        """new/old bandwidth; 1.0 when either side is unknown/unbounded."""
        if (self.old is None or self.new is None
                or self.old.bandwidth_bps <= 0 or self.new.bandwidth_bps <= 0):
            return 1.0
        return self.new.bandwidth_bps / self.old.bandwidth_bps


@dataclass
class Subscription:
    """One application's registered interest."""

    ident: int
    callback: Callable[[NetworkEvent], None]
    kinds: Optional[frozenset]           # None = everything
    min_bandwidth_change: float          # fraction; 0.0 = any
    active: bool = True
    delivered: int = 0

    def cancel(self) -> None:
        """Stop delivering events to this subscription."""
        self.active = False

    def wants(self, event: NetworkEvent) -> bool:
        """True if *event* passes this subscription's filters."""
        if not self.active:
            return False
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if (self.min_bandwidth_change > 0.0
                and event.kind in (EventKind.ATTACHMENT_CHANGED,
                                   EventKind.QUALITY_CHANGED)):
            ratio = event.bandwidth_ratio
            change = abs(ratio - 1.0)
            if change < self.min_bandwidth_change:
                return False
        return True


class NetworkChangeNotifier:
    """Publish/subscribe hub for one mobile host."""

    _idents = itertools.count(1)

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._subscriptions: List[Subscription] = []
        self.events_published = 0
        self._last_profile: Optional[LinkProfile] = None

    # ------------------------------------------------------------- subscribe

    def subscribe(self, callback: Callable[[NetworkEvent], None],
                  kinds: Optional[List[EventKind]] = None,
                  min_bandwidth_change: float = 0.0) -> Subscription:
        """Register interest; returns a cancellable subscription."""
        subscription = Subscription(
            ident=next(self._idents), callback=callback,
            kinds=frozenset(kinds) if kinds is not None else None,
            min_bandwidth_change=min_bandwidth_change,
        )
        self._subscriptions.append(subscription)
        return subscription

    # --------------------------------------------------------------- publish

    def publish(self, kind: EventKind, old: Optional[LinkProfile],
                new: Optional[LinkProfile]) -> NetworkEvent:
        """Deliver an event to every matching subscription."""
        event = NetworkEvent(kind=kind, time=self.sim.now, old=old, new=new)
        self.events_published += 1
        self.sim.trace.emit("notify", kind.value,
                            old=old.describe() if old else None,
                            new=new.describe() if new else None)
        for subscription in list(self._subscriptions):
            if subscription.wants(event):
                subscription.delivered += 1
                subscription.callback(event)
        return event

    def attachment_changed(self, new_profile: LinkProfile) -> None:
        """Convenience used by the mobile host on every (re)attachment."""
        old = self._last_profile
        self._last_profile = new_profile
        if (old is not None
                and old.interface_name == new_profile.interface_name
                and old.address == new_profile.address):
            # Same device on the same network: only the numbers moved.
            if old != new_profile:
                self.publish(EventKind.QUALITY_CHANGED, old, new_profile)
            return
        self.publish(EventKind.ATTACHMENT_CHANGED, old, new_profile)

    def connectivity_lost(self) -> None:
        """Publish a CONNECTIVITY_LOST event for the last profile."""
        old = self._last_profile
        self.publish(EventKind.CONNECTIVITY_LOST, old, None)

    def connectivity_restored(self, profile: LinkProfile) -> None:
        """Publish CONNECTIVITY_RESTORED with the new profile."""
        self._last_profile = profile
        self.publish(EventKind.CONNECTIVITY_RESTORED, None, profile)


def profile_of(iface: "NetworkInterface") -> LinkProfile:
    """Build a :class:`LinkProfile` from an interface's physical truth."""
    from repro.net.interface import (
        EthernetInterface,
        LoopbackInterface,
        PointToPointInterface,
        RadioInterface,
    )

    technology = "unknown"
    bandwidth = 0.0
    latency = 0
    if isinstance(iface, EthernetInterface):
        technology = "ethernet"
        if iface.segment is not None:
            bandwidth = iface.segment.timings.bandwidth_bps
            latency = iface.segment.timings.latency
    elif isinstance(iface, RadioInterface):
        technology = "radio"
        if iface.channel is not None:
            # The serial hop is the bottleneck's partner; report the air
            # link, which dominates both rate and latency.
            bandwidth = iface.channel.timings.bandwidth_bps
            latency = iface.channel.timings.latency
    elif isinstance(iface, PointToPointInterface):
        technology = "p2p"
        if iface.link is not None:
            bandwidth = iface.link.timings.bandwidth_bps
            latency = iface.link.timings.latency
    elif isinstance(iface, LoopbackInterface):
        technology = "loopback"
    return LinkProfile(interface_name=iface.name, technology=technology,
                       bandwidth_bps=bandwidth, latency_ns=latency,
                       is_up=iface.is_up,
                       address=str(iface.address) if iface.address else None)
